//! A blocking client for the serve protocol, used by `rde call`, the
//! test suites, and the serve benchmark.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rde_core::retry::RetryPolicy;
use rde_hom::HomConfig;

use crate::protocol::{read_reply, Reply, Request};

/// How a client call failed — kept apart from the server's own
/// `SHED`/`UNKNOWN` replies (those arrive as [`Reply`] variants; these
/// never reached a reply at all).
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, or read).
    Io(std::io::Error),
    /// The client-side deadline elapsed while waiting for a reply.
    /// Distinct from `Io` so callers can exit with the same status a
    /// locally-cancelled command uses.
    Deadline,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Deadline => f.write_str("deadline elapsed waiting for a reply"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A read timeout surfaces as WouldBlock (unix) or TimedOut;
        // both mean "the deadline elapsed", not "the socket broke".
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Deadline,
            _ => ClientError::Io(e),
        }
    }
}

/// A persistent connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7643`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        let writer = stream.try_clone().map_err(ClientError::Io)?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Cap every subsequent reply wait at `deadline`; an elapsed wait
    /// returns [`ClientError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(deadline).map_err(ClientError::Io)
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        request.write_to(&mut self.writer)?;
        Ok(read_reply(&mut self.reader)?)
    }

    /// [`request`](Client::request) with retries: a `SHED` reply is
    /// retried after the server's own `retry-after-ms` hint (falling
    /// back to exponential backoff when the server sent none), and an
    /// `UNKNOWN` reply is retried with the request's budget headers
    /// escalated by [`RetryPolicy::growth`] — the same escalation
    /// `rde_core::retry` applies to local checks. An `UNKNOWN` on a
    /// request carrying *no* budget headers returns immediately:
    /// retrying an unbudgeted unknown would repeat the identical
    /// attempt. `OK` and `ERR` always return at once; socket errors
    /// are not retried (the connection state is unknown).
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> Result<Reply, ClientError> {
        // Backoff base/cap: gentle enough that a `--retries 3` call
        // resolves in human time, capped so a hostile retry-after
        // hint cannot park the client for minutes.
        const BASE: Duration = Duration::from_millis(25);
        const CAP: Duration = Duration::from_secs(2);
        let mut request = request.clone();
        let mut backoff = BASE;
        let mut reply = self.request(&request)?;
        let attempts = policy.max_attempts.max(1);
        for _ in 1..attempts {
            let wait = match &reply {
                Reply::Shed { retry_after_ms, .. } => {
                    retry_after_ms.map(Duration::from_millis).unwrap_or(backoff)
                }
                Reply::Unknown(_) => {
                    if !escalate_budget_headers(&mut request, policy.growth) {
                        return Ok(reply);
                    }
                    backoff
                }
                _ => return Ok(reply),
            };
            rde_obs::counter!("serve.client.retries").inc();
            std::thread::sleep(wait.min(CAP));
            backoff = backoff.saturating_mul(2).min(CAP);
            reply = self.request(&request)?;
        }
        Ok(reply)
    }
}

/// Multiply the request's `node-budget` / `time-budget-ms` headers by
/// `growth` via [`rde_core::retry::escalate`], in place. False when
/// the request carries no budget headers at all.
fn escalate_budget_headers(request: &mut Request, growth: u32) -> bool {
    let node = request.get_header("node-budget").and_then(|v| v.parse::<u64>().ok());
    let time = request.get_header("time-budget-ms").and_then(|v| v.parse::<u64>().ok());
    if node.is_none() && time.is_none() {
        return false;
    }
    let config = HomConfig {
        node_budget: node,
        time_budget: time.map(Duration::from_millis),
        ..HomConfig::default()
    };
    let bigger = rde_core::retry::escalate(&config, growth);
    if let Some(n) = bigger.node_budget {
        request.set_header("node-budget", n);
    }
    if let Some(t) = bigger.time_budget {
        request.set_header("time-budget-ms", t.as_millis());
    }
    true
}
