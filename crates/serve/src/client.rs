//! A blocking client for the serve protocol, used by `rde call`, the
//! test suites, and the serve benchmark.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_reply, Reply, Request};

/// How a client call failed — kept apart from the server's own
/// `SHED`/`UNKNOWN` replies (those arrive as [`Reply`] variants; these
/// never reached a reply at all).
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, or read).
    Io(std::io::Error),
    /// The client-side deadline elapsed while waiting for a reply.
    /// Distinct from `Io` so callers can exit with the same status a
    /// locally-cancelled command uses.
    Deadline,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Deadline => f.write_str("deadline elapsed waiting for a reply"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // A read timeout surfaces as WouldBlock (unix) or TimedOut;
        // both mean "the deadline elapsed", not "the socket broke".
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Deadline,
            _ => ClientError::Io(e),
        }
    }
}

/// A persistent connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7643`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        let writer = stream.try_clone().map_err(ClientError::Io)?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Cap every subsequent reply wait at `deadline`; an elapsed wait
    /// returns [`ClientError::Deadline`].
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(deadline).map_err(ClientError::Io)
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        request.write_to(&mut self.writer)?;
        Ok(read_reply(&mut self.reader)?)
    }
}
