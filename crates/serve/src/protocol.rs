//! The `rde serve` wire protocol: newline-delimited text over TCP.
//!
//! Chosen for the same reason the checkpoint format is line-oriented —
//! `nc` is a complete client, every request and reply can be eyeballed,
//! and framing mistakes surface as readable garbage instead of silent
//! corruption.
//!
//! ## Request
//!
//! ```text
//! OP [mapping]
//! key=value            # zero or more header lines
//!                      # blank line starts the body (optional)
//! P(a, b)              # body lines, verbatim
//! .
//! ```
//!
//! Every request ends with a line holding a single `.`. Headers carry
//! the per-request budgets (`deadline-ms`, `node-budget`,
//! `time-budget-ms`) and op arguments (`query=` for `CERTAIN`); the
//! body carries instance text for the ops that take one (`CHASE`,
//! `CERTAIN`, and `ARROW`, whose two instances are separated by a `--`
//! line). Connections are persistent: a client may send any number of
//! requests before closing.
//!
//! Two introspection ops take neither mapping nor body: `STATS`
//! returns a human-oriented `key value` summary, and `METRICS` returns
//! the full labeled metrics registry in Prometheus text exposition
//! format (one exposition line per payload line), which is what
//! `rde top` polls.
//!
//! ## Reply
//!
//! ```text
//! OK <n>        followed by exactly n payload lines
//! ERR <message>
//! SHED <reason>
//! UNKNOWN <reason>
//! ```
//!
//! The three non-`OK` forms are deliberately distinct: `ERR` is a bad
//! request, `SHED` is the server protecting itself (overload, elapsed
//! request deadline), and `UNKNOWN` is an honest three-valued verdict
//! (a budget ran out before the answer settled). Clients map them to
//! different exit codes; none of them drop the connection.

use std::io::{self, BufRead, Write};

/// A parsed request: op, optional mapping name, headers, body lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    /// The operation, uppercased by convention (`PING`, `LIST`,
    /// `CHASE`, `INVERTIBLE`, `ARROW`, `CERTAIN`, `STATS`, `METRICS`).
    pub op: String,
    /// The catalog mapping the op addresses, when it needs one.
    pub mapping: Option<String>,
    /// `key=value` header lines, in order.
    pub headers: Vec<(String, String)>,
    /// Body lines, verbatim (no terminator line).
    pub body: Vec<String>,
}

impl Request {
    /// A bodyless, headerless request (`PING`, `LIST`, `STATS`,
    /// `METRICS`).
    pub fn bare(op: &str) -> Request {
        Request { op: op.to_owned(), ..Request::default() }
    }

    /// A request addressing `mapping`.
    pub fn on(op: &str, mapping: &str) -> Request {
        Request { op: op.to_owned(), mapping: Some(mapping.to_owned()), ..Request::default() }
    }

    /// Add a header (builder style).
    pub fn header(mut self, key: &str, value: impl ToString) -> Request {
        self.headers.push((key.to_owned(), value.to_string()));
        self
    }

    /// Set the body from a text blob, split into lines.
    pub fn body_text(mut self, text: &str) -> Request {
        self.body = text.lines().map(str::to_owned).collect();
        self
    }

    /// First value of header `key`, if present.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Parse a numeric header; a malformed value is a protocol error
    /// (silently ignoring it would turn a client typo into an
    /// unbudgeted request).
    pub fn u64_header(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get_header(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<u64>().map(Some).map_err(|_| format!("header {key}={v}: not a number"))
            }
        }
    }

    /// The body joined back into one text blob (newline-terminated).
    pub fn body_blob(&self) -> String {
        let mut s = self.body.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Serialize onto `w` in wire form.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(&self.op);
        if let Some(m) = &self.mapping {
            out.push(' ');
            out.push_str(m);
        }
        out.push('\n');
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        if !self.body.is_empty() {
            out.push('\n');
            for line in &self.body {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(".\n");
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Read one request off `r`. `Ok(None)` is a clean end-of-stream
/// (the client closed between requests); a stream that ends mid-request
/// is an error.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let op_line = loop {
        let Some(line) = read_line(r)? else { return Ok(None) };
        // Tolerate stray blank lines between requests (`nc` users).
        if !line.is_empty() {
            break line;
        }
    };
    let mut words = op_line.split_whitespace();
    let op = words.next().unwrap_or_default().to_ascii_uppercase();
    let mapping = words.next().map(str::to_owned);
    if words.next().is_some() {
        return Err(bad(format!("request line has trailing words: {op_line}")));
    }
    let mut req = Request { op, mapping, ..Request::default() };
    let mut in_body = false;
    loop {
        let Some(line) = read_line(r)? else {
            return Err(bad("stream ended mid-request (missing `.` terminator)"));
        };
        if line == "." {
            return Ok(Some(req));
        }
        if !in_body && line.is_empty() {
            in_body = true;
            continue;
        }
        if in_body {
            req.body.push(line);
        } else {
            let Some((k, v)) = line.split_once('=') else {
                return Err(bad(format!("malformed header line (no `=`): {line}")));
            };
            req.headers.push((k.trim().to_owned(), v.trim().to_owned()));
        }
    }
}

/// One reply per request; see the module docs for the framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The op succeeded; the payload lines are the answer.
    Ok(Vec<String>),
    /// The request was malformed or named something that doesn't exist.
    Err(String),
    /// The server refused to do the work: overload, or the request's
    /// own deadline elapsed. Retry later (possibly elsewhere).
    Shed(String),
    /// A three-valued verdict's third value: a budget ran out before
    /// the answer settled. Retry with larger budgets.
    Unknown(String),
}

impl Reply {
    /// Serialize onto `w`. Status-line messages are flattened to one
    /// line (the framing has nowhere to put embedded newlines).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        match self {
            Reply::Ok(lines) => {
                out.push_str(&format!("OK {}\n", lines.len()));
                for line in lines {
                    out.push_str(&oneline(line));
                    out.push('\n');
                }
            }
            Reply::Err(m) => out.push_str(&format!("ERR {}\n", oneline(m))),
            Reply::Shed(m) => out.push_str(&format!("SHED {}\n", oneline(m))),
            Reply::Unknown(m) => out.push_str(&format!("UNKNOWN {}\n", oneline(m))),
        }
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Read one reply off `r`.
pub fn read_reply(r: &mut impl BufRead) -> io::Result<Reply> {
    let Some(status) = read_line(r)? else {
        return Err(bad("connection closed before a reply arrived"));
    };
    let (word, rest) = status.split_once(' ').unwrap_or((status.as_str(), ""));
    match word {
        "OK" => {
            let n: usize =
                rest.trim().parse().map_err(|_| bad(format!("bad OK count: {status}")))?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                let Some(line) = read_line(r)? else {
                    return Err(bad("connection closed mid-payload"));
                };
                lines.push(line);
            }
            Ok(Reply::Ok(lines))
        }
        "ERR" => Ok(Reply::Err(rest.to_owned())),
        "SHED" => Ok(Reply::Shed(rest.to_owned())),
        "UNKNOWN" => Ok(Reply::Unknown(rest.to_owned())),
        _ => Err(bad(format!("unrecognized reply status: {status}"))),
    }
}

fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn oneline(s: &str) -> String {
    if s.contains('\n') {
        s.replace('\n', "; ")
    } else {
        s.to_owned()
    }
}

fn bad(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(req: &Request) -> Request {
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        read_request(&mut BufReader::new(&wire[..])).unwrap().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let bare = Request::bare("PING");
        assert_eq!(roundtrip(&bare), bare);
        let full = Request::on("CHASE", "flights")
            .header("deadline-ms", 250)
            .header("node-budget", 10_000)
            .body_text("P(a, b)\nP(b, c)\n");
        assert_eq!(roundtrip(&full), full);
        assert_eq!(full.u64_header("deadline-ms").unwrap(), Some(250));
        assert_eq!(full.u64_header("missing").unwrap(), None);
        assert_eq!(full.body_blob(), "P(a, b)\nP(b, c)\n");
    }

    #[test]
    fn multiple_requests_share_a_stream_and_eof_is_clean() {
        let mut wire = Vec::new();
        Request::bare("PING").write_to(&mut wire).unwrap();
        Request::on("ARROW", "m").body_text("P(a)\n--\nP(b)\n").write_to(&mut wire).unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_request(&mut r).unwrap().unwrap().op, "PING");
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.body, vec!["P(a)", "--", "P(b)"]);
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF between requests");
    }

    #[test]
    fn malformed_requests_are_errors_not_hangs() {
        let cases: &[&str] = &[
            "CHASE m extra words\n.\n",
            "CHASE m\nno-equals-sign\n.\n",
            "CHASE m\nheader=ok\n", // stream ends mid-request
        ];
        for wire in cases {
            assert!(
                read_request(&mut BufReader::new(wire.as_bytes())).is_err(),
                "must reject: {wire:?}"
            );
        }
        assert!(Request::bare("PING").u64_header("x").is_ok(), "missing numeric headers are fine");
        let req = Request::bare("PING").header("deadline-ms", "soon");
        assert!(req.u64_header("deadline-ms").is_err(), "malformed numbers are not");
    }

    #[test]
    fn replies_round_trip_and_flatten_newlines() {
        for reply in [
            Reply::Ok(vec!["a".into(), "b".into()]),
            Reply::Ok(Vec::new()),
            Reply::Err("no such mapping".into()),
            Reply::Shed("overloaded".into()),
            Reply::Unknown("node budget of 5 exhausted".into()),
        ] {
            let mut wire = Vec::new();
            reply.write_to(&mut wire).unwrap();
            assert_eq!(read_reply(&mut BufReader::new(&wire[..])).unwrap(), reply);
        }
        let mut wire = Vec::new();
        Reply::Err("two\nlines".into()).write_to(&mut wire).unwrap();
        assert_eq!(
            read_reply(&mut BufReader::new(&wire[..])).unwrap(),
            Reply::Err("two; lines".into())
        );
    }
}
