//! The `rde serve` wire protocol: newline-delimited text over TCP.
//!
//! Chosen for the same reason the checkpoint format is line-oriented —
//! `nc` is a complete client, every request and reply can be eyeballed,
//! and framing mistakes surface as readable garbage instead of silent
//! corruption.
//!
//! ## Request
//!
//! ```text
//! OP [mapping]
//! key=value            # zero or more header lines
//!                      # blank line starts the body (optional)
//! P(a, b)              # body lines, verbatim
//! .
//! ```
//!
//! Every request ends with a line holding a single `.`. Headers carry
//! the per-request budgets (`deadline-ms`, `node-budget`,
//! `time-budget-ms`), the tenant identity (`tenant=`), and op
//! arguments (`query=` for `CERTAIN`); the body carries instance text
//! for the ops that take one (`CHASE`, `CERTAIN`, and `ARROW`, whose
//! two instances are separated by a `--` line). Connections are
//! persistent: a client may send any number of requests before
//! closing.
//!
//! Two introspection ops take neither mapping nor body: `STATS`
//! returns a human-oriented `key value` summary, and `METRICS` returns
//! the full labeled metrics registry in Prometheus text exposition
//! format (one exposition line per payload line), which is what
//! `rde top` polls. `RELOAD` asks the daemon to re-scan its catalog
//! directory and swap in a new generation (SIGHUP does the same).
//!
//! ## Hostile-input limits
//!
//! A daemon cannot trust its peers to frame requests honestly, so
//! [`read_request_limited`] enforces [`ProtocolLimits`]: a cap on line
//! length, header count, and total body bytes, plus rejection of NUL
//! bytes and invalid UTF-8. A violated limit is *not* an unbounded
//! buffer — the reader stops accumulating, drains the offending
//! request up to its `.` terminator (within a bounded drain budget),
//! and reports a [`FrameError::Violation`] the server answers with a
//! typed `ERR`. Only when the stream position cannot be trusted again
//! (EOF mid-request, I/O error, drain budget exhausted) is the
//! violation unrecoverable and the connection closed.
//!
//! ## Reply
//!
//! ```text
//! OK <n>        followed by exactly n payload lines
//! ERR <message>
//! SHED [retry-after-ms=N] <reason>
//! UNKNOWN <reason>
//! ```
//!
//! The three non-`OK` forms are deliberately distinct: `ERR` is a bad
//! request, `SHED` is the server protecting itself (overload, quota,
//! elapsed request deadline), and `UNKNOWN` is an honest three-valued
//! verdict (a budget ran out before the answer settled). A `SHED` may
//! carry a `retry-after-ms=` hint — the admission controller's own
//! estimate of when capacity returns — which
//! [`Client::call_with_retry`](crate::Client::call_with_retry) honors.
//! Clients map the forms to different exit codes; none of them drop
//! the connection.

use std::io::{self, BufRead, Write};

/// A parsed request: op, optional mapping name, headers, body lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    /// The operation, uppercased by convention (`PING`, `LIST`,
    /// `CHASE`, `INVERTIBLE`, `ARROW`, `CERTAIN`, `STATS`, `METRICS`,
    /// `RELOAD`).
    pub op: String,
    /// The catalog mapping the op addresses, when it needs one.
    pub mapping: Option<String>,
    /// `key=value` header lines, in order.
    pub headers: Vec<(String, String)>,
    /// Body lines, verbatim (no terminator line).
    pub body: Vec<String>,
}

impl Request {
    /// A bodyless, headerless request (`PING`, `LIST`, `STATS`,
    /// `METRICS`, `RELOAD`).
    pub fn bare(op: &str) -> Request {
        Request { op: op.to_owned(), ..Request::default() }
    }

    /// A request addressing `mapping`.
    pub fn on(op: &str, mapping: &str) -> Request {
        Request { op: op.to_owned(), mapping: Some(mapping.to_owned()), ..Request::default() }
    }

    /// Add a header (builder style).
    pub fn header(mut self, key: &str, value: impl ToString) -> Request {
        self.headers.push((key.to_owned(), value.to_string()));
        self
    }

    /// Set the body from a text blob, split into lines.
    pub fn body_text(mut self, text: &str) -> Request {
        self.body = text.lines().map(str::to_owned).collect();
        self
    }

    /// First value of header `key`, if present.
    pub fn get_header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Replace the value of header `key`, appending it if absent.
    pub fn set_header(&mut self, key: &str, value: impl ToString) {
        match self.headers.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.to_string(),
            None => self.headers.push((key.to_owned(), value.to_string())),
        }
    }

    /// Parse a numeric header; a malformed value is a protocol error
    /// (silently ignoring it would turn a client typo into an
    /// unbudgeted request).
    pub fn u64_header(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get_header(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<u64>().map(Some).map_err(|_| format!("header {key}={v}: not a number"))
            }
        }
    }

    /// The body joined back into one text blob (newline-terminated).
    pub fn body_blob(&self) -> String {
        let mut s = self.body.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    }

    /// Serialize onto `w` in wire form.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(&self.op);
        if let Some(m) = &self.mapping {
            out.push(' ');
            out.push_str(m);
        }
        out.push('\n');
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        if !self.body.is_empty() {
            out.push('\n');
            for line in &self.body {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(".\n");
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Hard caps a server imposes on request framing. Every limit is a
/// defense against a hostile or broken client buffering the server
/// into the ground; none of them constrains an honest workload (the
/// defaults are orders of magnitude above what the ops need).
#[derive(Debug, Clone, Copy)]
pub struct ProtocolLimits {
    /// Longest accepted line, in bytes (op line, header, or body).
    pub max_line_bytes: usize,
    /// Most header lines per request.
    pub max_headers: usize,
    /// Most body bytes per request (line bytes + one per newline).
    pub max_body_bytes: usize,
}

impl Default for ProtocolLimits {
    fn default() -> Self {
        ProtocolLimits { max_line_bytes: 64 * 1024, max_headers: 64, max_body_bytes: 1 << 20 }
    }
}

impl ProtocolLimits {
    /// How many bytes of an offending request the reader is willing to
    /// throw away looking for its `.` terminator before giving up on
    /// the connection.
    pub fn drain_budget(&self) -> usize {
        self.max_body_bytes.saturating_add(64 * 1024)
    }
}

/// How reading one request off the wire failed.
#[derive(Debug)]
pub enum FrameError {
    /// The socket itself failed (including read timeouts, which
    /// surface as `WouldBlock`/`TimedOut`). `partial` is true when
    /// bytes of the current request had already been consumed — a
    /// mid-request stall rather than an idle connection.
    Io {
        /// The underlying socket error.
        error: io::Error,
        /// Whether the failure interrupted a partially-read request.
        partial: bool,
    },
    /// The peer violated the framing rules or a [`ProtocolLimits`]
    /// cap. When `recoverable`, the offending request was drained
    /// through its `.` terminator and the stream position is
    /// trustworthy again: the server can answer `ERR` and keep the
    /// connection. Otherwise the connection must close.
    Violation {
        /// What the peer did wrong.
        message: String,
        /// Whether the stream was drained back to a request boundary.
        recoverable: bool,
    },
}

impl FrameError {
    /// True when the underlying cause is an elapsed read timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io { error, .. }
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }

    /// True when the server may keep reading requests off this
    /// connection after answering `ERR`.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::Violation { recoverable: true, .. })
    }

    /// True when the failure cut a request mid-frame (as opposed to an
    /// idle connection timing out between requests).
    pub fn partial(&self) -> bool {
        match self {
            FrameError::Io { partial, .. } => *partial,
            FrameError::Violation { .. } => true,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io { error, .. } => write!(f, "{error}"),
            FrameError::Violation { message, .. } => f.write_str(message),
        }
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        match e {
            FrameError::Io { error, .. } => error,
            FrameError::Violation { message, .. } => {
                io::Error::new(io::ErrorKind::InvalidData, message)
            }
        }
    }
}

/// One raw line off the wire, read under a byte cap.
enum RawLine {
    /// A complete line (terminator stripped), within the cap.
    Line(Vec<u8>),
    /// Clean EOF before any byte of a line.
    Eof,
    /// EOF after some bytes of an unterminated line.
    EofMidLine,
    /// The line exceeded the cap. `terminated` says whether its
    /// newline was consumed (false: the tail is still on the wire).
    TooLong {
        /// Whether the over-long line's newline was reached.
        terminated: bool,
    },
}

/// Read one `\n`-terminated line, accumulating at most `cap` bytes.
/// Consumed byte counts (including terminators and over-cap spill
/// within the currently buffered chunk) are added to `*consumed`.
fn raw_line(r: &mut impl BufRead, cap: usize, consumed: &mut usize) -> Result<RawLine, FrameError> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => {
                return Err(FrameError::Io { partial: *consumed > 0 || !buf.is_empty(), error })
            }
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() && !overflowed {
                RawLine::Eof
            } else {
                RawLine::EofMidLine
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            let over = overflowed || buf.len() + pos > cap;
            if !over {
                buf.extend_from_slice(&available[..pos]);
            }
            r.consume(pos + 1);
            *consumed += pos + 1;
            if over {
                return Ok(RawLine::TooLong { terminated: true });
            }
            while buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(RawLine::Line(buf));
        }
        let n = available.len();
        if !overflowed && buf.len() + n > cap {
            overflowed = true;
            buf.clear();
        }
        if !overflowed {
            buf.extend_from_slice(available);
        }
        r.consume(n);
        *consumed += n;
        if overflowed {
            return Ok(RawLine::TooLong { terminated: false });
        }
    }
}

/// After a framing violation, consume the rest of the offending
/// request — through the unterminated current line when `mid_line`,
/// then whole lines until the `.` terminator — within the drain
/// budget. Returns whether the terminator was found (the stream is
/// back at a request boundary).
fn drain_to_terminator(
    r: &mut impl BufRead,
    limits: &ProtocolLimits,
    consumed: &mut usize,
    mut mid_line: bool,
) -> Result<bool, FrameError> {
    let budget = limits.drain_budget();
    loop {
        if *consumed > budget {
            return Ok(false);
        }
        match raw_line(r, limits.max_line_bytes, consumed)? {
            RawLine::Eof | RawLine::EofMidLine => return Ok(false),
            RawLine::TooLong { terminated } => mid_line = !terminated,
            RawLine::Line(bytes) => {
                if !mid_line && bytes == b"." {
                    return Ok(true);
                }
                mid_line = false;
            }
        }
    }
}

/// Build the [`FrameError::Violation`] for `message`, draining the
/// offending request first to decide recoverability.
fn violation(
    r: &mut impl BufRead,
    limits: &ProtocolLimits,
    consumed: &mut usize,
    mid_line: bool,
    message: impl Into<String>,
) -> FrameError {
    let recoverable = drain_to_terminator(r, limits, consumed, mid_line).unwrap_or(false);
    FrameError::Violation { message: message.into(), recoverable }
}

/// Decode one accepted line: NUL bytes and invalid UTF-8 are framing
/// violations (the engines downstream assume text).
fn decode_line(bytes: Vec<u8>) -> Result<String, &'static str> {
    if bytes.contains(&0) {
        return Err("NUL byte in request line");
    }
    String::from_utf8(bytes).map_err(|_| "request line is not valid UTF-8")
}

/// Read one request off `r` under `limits`. `Ok(None)` is a clean
/// end-of-stream (the client closed between requests); every limit
/// violation reports whether the connection is still usable (see
/// [`FrameError`]).
pub fn read_request_limited(
    r: &mut impl BufRead,
    limits: &ProtocolLimits,
) -> Result<Option<Request>, FrameError> {
    let mut consumed = 0usize;
    let eof_mid_request = || FrameError::Violation {
        message: "stream ended mid-request (missing `.` terminator)".to_owned(),
        recoverable: false,
    };
    // Op line, tolerating stray blank lines between requests (`nc`
    // users).
    let op_line = loop {
        match raw_line(r, limits.max_line_bytes, &mut consumed)? {
            RawLine::Eof => return Ok(None),
            RawLine::EofMidLine => return Err(eof_mid_request()),
            RawLine::TooLong { terminated } => {
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    !terminated,
                    format!("request line exceeds {} bytes", limits.max_line_bytes),
                ));
            }
            RawLine::Line(bytes) => match decode_line(bytes) {
                Ok(line) if line.is_empty() => continue,
                Ok(line) => break line,
                Err(why) => return Err(violation(r, limits, &mut consumed, false, why)),
            },
        }
    };
    let mut words = op_line.split_whitespace();
    let op = words.next().unwrap_or_default().to_ascii_uppercase();
    let mapping = words.next().map(str::to_owned);
    if words.next().is_some() {
        return Err(violation(
            r,
            limits,
            &mut consumed,
            false,
            format!("request line has trailing words: {op_line}"),
        ));
    }
    let mut req = Request { op, mapping, ..Request::default() };
    let mut in_body = false;
    let mut body_bytes = 0usize;
    loop {
        let line = match raw_line(r, limits.max_line_bytes, &mut consumed)? {
            RawLine::Eof | RawLine::EofMidLine => return Err(eof_mid_request()),
            RawLine::TooLong { terminated } => {
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    !terminated,
                    format!("request line exceeds {} bytes", limits.max_line_bytes),
                ));
            }
            RawLine::Line(bytes) => match decode_line(bytes) {
                Ok(line) => line,
                Err(why) => return Err(violation(r, limits, &mut consumed, false, why)),
            },
        };
        if line == "." {
            return Ok(Some(req));
        }
        if !in_body && line.is_empty() {
            in_body = true;
            continue;
        }
        if in_body {
            body_bytes += line.len() + 1;
            if body_bytes > limits.max_body_bytes {
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    false,
                    format!("request body exceeds {} bytes", limits.max_body_bytes),
                ));
            }
            req.body.push(line);
        } else {
            let Some((k, v)) = line.split_once('=') else {
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    false,
                    format!("malformed header line (no `=`): {line}"),
                ));
            };
            let key = k.trim().to_owned();
            if req.headers.iter().any(|(existing, _)| *existing == key) {
                // Duplicate keys are how header smuggling works: two
                // layers disagreeing on which value wins. Reject.
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    false,
                    format!("duplicate header `{key}`"),
                ));
            }
            if req.headers.len() >= limits.max_headers {
                return Err(violation(
                    r,
                    limits,
                    &mut consumed,
                    false,
                    format!("more than {} header lines", limits.max_headers),
                ));
            }
            req.headers.push((key, v.trim().to_owned()));
        }
    }
}

/// Read one request off `r` under the default [`ProtocolLimits`],
/// flattening [`FrameError`] into `io::Error` — the pre-hardening
/// interface, kept for tests and tooling that just want "parse or
/// fail".
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    read_request_limited(r, &ProtocolLimits::default()).map_err(io::Error::from)
}

/// One reply per request; see the module docs for the framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The op succeeded; the payload lines are the answer.
    Ok(Vec<String>),
    /// The request was malformed or named something that doesn't exist.
    Err(String),
    /// The server refused to do the work: overload, an exhausted
    /// tenant quota, or the request's own deadline elapsed. Retry
    /// later — after `retry_after_ms` when the server computed one.
    Shed {
        /// Why the work was refused.
        reason: String,
        /// The server's estimate of when to retry, when it has one
        /// (token-bucket refill time for quota sheds).
        retry_after_ms: Option<u64>,
    },
    /// A three-valued verdict's third value: a budget ran out before
    /// the answer settled. Retry with larger budgets.
    Unknown(String),
}

impl Reply {
    /// A `SHED` without a retry hint.
    pub fn shed(reason: impl Into<String>) -> Reply {
        Reply::Shed { reason: reason.into(), retry_after_ms: None }
    }

    /// A `SHED` carrying the admission controller's retry estimate.
    pub fn shed_after(reason: impl Into<String>, retry_after_ms: u64) -> Reply {
        Reply::Shed { reason: reason.into(), retry_after_ms: Some(retry_after_ms) }
    }

    /// Serialize onto `w`. Status-line messages are flattened to one
    /// line (the framing has nowhere to put embedded newlines).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        match self {
            Reply::Ok(lines) => {
                out.push_str(&format!("OK {}\n", lines.len()));
                for line in lines {
                    out.push_str(&oneline(line));
                    out.push('\n');
                }
            }
            Reply::Err(m) => out.push_str(&format!("ERR {}\n", oneline(m))),
            Reply::Shed { reason, retry_after_ms } => {
                out.push_str("SHED ");
                if let Some(ms) = retry_after_ms {
                    out.push_str(&format!("retry-after-ms={ms} "));
                }
                out.push_str(&format!("{}\n", oneline(reason)));
            }
            Reply::Unknown(m) => out.push_str(&format!("UNKNOWN {}\n", oneline(m))),
        }
        w.write_all(out.as_bytes())?;
        w.flush()
    }
}

/// Read one reply off `r`.
pub fn read_reply(r: &mut impl BufRead) -> io::Result<Reply> {
    let Some(status) = read_line(r)? else {
        return Err(bad("connection closed before a reply arrived"));
    };
    let (word, rest) = status.split_once(' ').unwrap_or((status.as_str(), ""));
    match word {
        "OK" => {
            let n: usize =
                rest.trim().parse().map_err(|_| bad(format!("bad OK count: {status}")))?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                let Some(line) = read_line(r)? else {
                    return Err(bad("connection closed mid-payload"));
                };
                lines.push(line);
            }
            Ok(Reply::Ok(lines))
        }
        "ERR" => Ok(Reply::Err(rest.to_owned())),
        "SHED" => {
            let (retry_after_ms, reason) = match rest.split_once(' ').unwrap_or((rest, "")) {
                (first, tail) if first.starts_with("retry-after-ms=") => {
                    let value = &first["retry-after-ms=".len()..];
                    let ms = value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("bad retry-after-ms: {status}")))?;
                    (Some(ms), tail.to_owned())
                }
                _ => (None, rest.to_owned()),
            };
            Ok(Reply::Shed { reason, retry_after_ms })
        }
        "UNKNOWN" => Ok(Reply::Unknown(rest.to_owned())),
        _ => Err(bad(format!("unrecognized reply status: {status}"))),
    }
}

fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn oneline(s: &str) -> String {
    if s.contains('\n') {
        s.replace('\n', "; ")
    } else {
        s.to_owned()
    }
}

fn bad(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(req: &Request) -> Request {
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        read_request(&mut BufReader::new(&wire[..])).unwrap().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let bare = Request::bare("PING");
        assert_eq!(roundtrip(&bare), bare);
        let full = Request::on("CHASE", "flights")
            .header("deadline-ms", 250)
            .header("node-budget", 10_000)
            .body_text("P(a, b)\nP(b, c)\n");
        assert_eq!(roundtrip(&full), full);
        assert_eq!(full.u64_header("deadline-ms").unwrap(), Some(250));
        assert_eq!(full.u64_header("missing").unwrap(), None);
        assert_eq!(full.body_blob(), "P(a, b)\nP(b, c)\n");
    }

    #[test]
    fn set_header_replaces_in_place() {
        let mut req = Request::bare("PING").header("node-budget", 10);
        req.set_header("node-budget", 80);
        req.set_header("time-budget-ms", 5);
        assert_eq!(req.get_header("node-budget"), Some("80"));
        assert_eq!(req.get_header("time-budget-ms"), Some("5"));
        assert_eq!(req.headers.len(), 2, "replacement does not duplicate");
    }

    #[test]
    fn multiple_requests_share_a_stream_and_eof_is_clean() {
        let mut wire = Vec::new();
        Request::bare("PING").write_to(&mut wire).unwrap();
        Request::on("ARROW", "m").body_text("P(a)\n--\nP(b)\n").write_to(&mut wire).unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_request(&mut r).unwrap().unwrap().op, "PING");
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.body, vec!["P(a)", "--", "P(b)"]);
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF between requests");
    }

    #[test]
    fn malformed_requests_are_errors_not_hangs() {
        let cases: &[&str] = &[
            "CHASE m extra words\n.\n",
            "CHASE m\nno-equals-sign\n.\n",
            "CHASE m\nheader=ok\n", // stream ends mid-request
        ];
        for wire in cases {
            assert!(
                read_request(&mut BufReader::new(wire.as_bytes())).is_err(),
                "must reject: {wire:?}"
            );
        }
        assert!(Request::bare("PING").u64_header("x").is_ok(), "missing numeric headers are fine");
        let req = Request::bare("PING").header("deadline-ms", "soon");
        assert!(req.u64_header("deadline-ms").is_err(), "malformed numbers are not");
    }

    #[test]
    fn violations_with_intact_terminators_are_recoverable() {
        let limits = ProtocolLimits::default();
        // Trailing words, bad header, duplicate header: all are framed
        // through their `.`, so the stream stays usable — the next
        // request parses.
        let wire = b"CHASE m extra words\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable(), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");

        let wire = b"CHASE m\ntenant=a\ntenant=b\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable() && err.to_string().contains("duplicate header"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");
    }

    #[test]
    fn oversized_lines_are_capped_not_buffered() {
        let limits = ProtocolLimits { max_line_bytes: 16, ..ProtocolLimits::default() };
        let mut wire = Vec::new();
        wire.extend_from_slice(b"CHASE m\nheader=");
        wire.extend_from_slice(&vec![b'x'; 1024]);
        wire.extend_from_slice(b"\n.\nPING\n.\n");
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable(), "drains through the terminator: {err}");
        assert!(err.to_string().contains("exceeds 16 bytes"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");
    }

    #[test]
    fn header_count_and_body_bytes_are_capped() {
        let limits =
            ProtocolLimits { max_headers: 2, max_body_bytes: 8, ..ProtocolLimits::default() };
        let wire = b"CHASE m\na=1\nb=2\nc=3\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable() && err.to_string().contains("header lines"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");

        let wire = b"CHASE m\n\nP(a, b, c)\nP(d, e, f)\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable() && err.to_string().contains("body exceeds"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");
    }

    #[test]
    fn nul_bytes_and_bad_utf8_are_rejected() {
        let limits = ProtocolLimits::default();
        let wire = b"PING\0\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable() && err.to_string().contains("NUL"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");

        let wire = b"PING \xff\xfe\n.\nPING\n.\n";
        let mut r = BufReader::new(&wire[..]);
        let err = read_request_limited(&mut r, &limits).unwrap_err();
        assert!(err.recoverable() && err.to_string().contains("UTF-8"), "{err}");
        assert_eq!(read_request_limited(&mut r, &limits).unwrap().unwrap().op, "PING");
    }

    #[test]
    fn truncated_requests_are_unrecoverable() {
        let limits = ProtocolLimits::default();
        for wire in [&b"CHASE m\nheader=ok\n"[..], &b"CHASE"[..]] {
            let mut r = BufReader::new(wire);
            let err = read_request_limited(&mut r, &limits).unwrap_err();
            assert!(!err.recoverable(), "truncation must close: {err}");
        }
    }

    #[test]
    fn replies_round_trip_and_flatten_newlines() {
        for reply in [
            Reply::Ok(vec!["a".into(), "b".into()]),
            Reply::Ok(Vec::new()),
            Reply::Err("no such mapping".into()),
            Reply::shed("overloaded"),
            Reply::shed_after("tenant quota", 125),
            Reply::Unknown("node budget of 5 exhausted".into()),
        ] {
            let mut wire = Vec::new();
            reply.write_to(&mut wire).unwrap();
            assert_eq!(read_reply(&mut BufReader::new(&wire[..])).unwrap(), reply);
        }
        let mut wire = Vec::new();
        Reply::Err("two\nlines".into()).write_to(&mut wire).unwrap();
        assert_eq!(
            read_reply(&mut BufReader::new(&wire[..])).unwrap(),
            Reply::Err("two; lines".into())
        );
    }

    #[test]
    fn shed_retry_hint_is_wire_visible_and_optional() {
        let mut wire = Vec::new();
        Reply::shed_after("tenant `noisy` over quota", 250).write_to(&mut wire).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert_eq!(text, "SHED retry-after-ms=250 tenant `noisy` over quota\n");
        // A reason that merely *mentions* the key is not a hint.
        let reply = read_reply(&mut BufReader::new(&b"SHED plain overload\n"[..])).unwrap();
        assert_eq!(reply, Reply::shed("plain overload"));
        assert!(read_reply(&mut BufReader::new(&b"SHED retry-after-ms=soon x\n"[..])).is_err());
    }
}
