//! The mapping catalog: a directory of named mappings the daemon
//! serves, each with an optional reverse mapping and a warm arrow
//! cache.
//!
//! A catalog directory holds one `NAME.map` file per mapping (the
//! format `rde_deps::parse_mapping` reads) and, optionally, a
//! `NAME.rev` reverse mapping in the same format — `CERTAIN` requests
//! need one. Everything else about an entry is derived at load time:
//!
//! * **`base_vocab`** — the vocabulary right after parsing the mapping
//!   (and reverse). Every `CHASE`/`CERTAIN` request clones it and
//!   replays exactly what a cold `rde chase` run does, which is what
//!   makes daemon answers bit-identical to single-shot CLI runs.
//! * **warm state** — a bounded-universe instance family, the
//!   [`ArrowMCache`] chased over it, and the vocabulary those two
//!   evolved (behind a mutex: `ARROW` interning parses request
//!   constants into it so class fingerprints agree across requests).
//!   Warm state is best-effort: a mapping whose source schema the
//!   enumerator cannot handle still serves `CHASE`/`CERTAIN`, and the
//!   ops that need the cache explain what failed instead.
//!
//! ## Reload
//!
//! A running daemon re-scans its directory on SIGHUP or a `RELOAD`
//! request ([`Catalog::reload`]). Entries are `Arc`-shared and carry a
//! content **fingerprint** (a hash of the `.map` + `.rev` text):
//! an unchanged entry is carried into the new catalog by `Arc` clone,
//! warm cache and all, while a changed or new one is re-parsed with its
//! warm state **deferred** — rebuilt lazily by the first request that
//! needs it ([`WarmCell`]), so a reload never stalls the accept loop on
//! universe enumeration. Any parse failure fails the whole reload,
//! leaving the previous catalog generation serving.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use rde_core::arrow::{ArrowMCache, CachePolicy};
use rde_core::Universe;
use rde_deps::{parse_mapping, SchemaMapping};
use rde_hom::HomConfig;
use rde_model::{Instance, Vocabulary};

use crate::ServeError;

/// Warm per-mapping state: the family scan and interning side.
pub struct WarmState {
    /// The bounded-universe family the cache was built over.
    pub family: Vec<Instance>,
    /// The shared chase-once/core/memo cache.
    pub cache: ArrowMCache,
    /// The vocabulary the universe and cache construction evolved.
    /// `ARROW` requests lock it to parse and intern request instances,
    /// so constants named by different requests resolve to the same
    /// ids (fingerprint equality across requests depends on it).
    pub vocab: Mutex<Vocabulary>,
}

/// What a deferred warm build needs: the post-parse vocabulary and the
/// build knobs, captured at load time so the lazy build replays exactly
/// what an eager one would have done.
struct WarmSeed {
    vocab: Vocabulary,
    dims: UniverseDims,
    policy: CachePolicy,
}

/// A warm cache built at most once, eagerly (initial load) or lazily
/// (reload): the first request that needs it pays the build, everyone
/// after shares the result. Failures are memoized too — a source
/// schema the enumerator cannot handle fails the same way every time,
/// and retrying per request would turn one broken mapping into a
/// denial-of-service amplifier.
pub struct WarmCell {
    built: OnceLock<Result<WarmState, String>>,
    seed: Mutex<Option<WarmSeed>>,
}

impl WarmCell {
    fn deferred(vocab: Vocabulary, dims: UniverseDims, policy: CachePolicy) -> WarmCell {
        WarmCell {
            built: OnceLock::new(),
            seed: Mutex::new(Some(WarmSeed { vocab, dims, policy })),
        }
    }

    /// The warm state, building it now if this is the first need.
    pub fn force(&self, mapping: &SchemaMapping) -> Result<&WarmState, &String> {
        self.built
            .get_or_init(|| {
                let seed =
                    self.seed.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
                match seed {
                    Some(WarmSeed { mut vocab, dims, policy }) => {
                        build_warm(mapping, &mut vocab, dims, policy)
                    }
                    // Unreachable in practice: the seed is consumed
                    // exactly once, under the OnceLock init.
                    None => Err("warm seed already consumed".to_owned()),
                }
            })
            .as_ref()
    }

    /// The warm state if it has already been built — never triggers a
    /// build. Introspection ops (`LIST`, `STATS`, metric scrapes) use
    /// this so observing a freshly reloaded catalog stays cheap.
    pub fn peek(&self) -> Option<Result<&WarmState, &String>> {
        self.built.get().map(Result::as_ref)
    }
}

/// One catalog entry: a named mapping plus derived state.
pub struct MappingEntry {
    /// The mapping name (the `.map` file stem).
    pub name: String,
    /// Parsed forward mapping.
    pub mapping: SchemaMapping,
    /// Parsed reverse mapping, when `NAME.rev` exists.
    pub reverse: Option<SchemaMapping>,
    /// Vocabulary snapshot right after parsing; cloned per request.
    pub base_vocab: Vocabulary,
    /// Content hash of the `.map` (+ `.rev`) text. Reloads carry an
    /// entry over — warm cache included — exactly when this matches.
    pub fingerprint: u64,
    /// Warm cache state (eager on initial load, lazy after a reload).
    pub warm: WarmCell,
}

impl MappingEntry {
    /// The entry's warm state, built on demand (ops that need the
    /// cache: `INVERTIBLE`, `ARROW`).
    pub fn warm_state(&self) -> Result<&WarmState, &String> {
        self.warm.force(&self.mapping)
    }
}

/// The loaded catalog, keyed by mapping name (sorted for stable LIST
/// output). Entries are `Arc`-shared so a reloaded catalog can carry
/// unchanged ones over without copying their warm caches.
pub struct Catalog {
    /// All entries, keyed by name.
    pub entries: BTreeMap<String, Arc<MappingEntry>>,
}

/// Universe dimensions for the warm family, mirroring the CLI's
/// `--consts/--nulls/--facts` knobs.
#[derive(Debug, Clone, Copy)]
pub struct UniverseDims {
    /// Constant-pool size.
    pub consts: usize,
    /// Null-pool size.
    pub nulls: usize,
    /// Per-instance fact budget.
    pub facts: usize,
}

impl Default for UniverseDims {
    fn default() -> Self {
        UniverseDims { consts: 2, nulls: 1, facts: 2 }
    }
}

impl Catalog {
    /// Load every `*.map` file under `dir`. An unreadable or
    /// unparsable mapping fails the whole load (a daemon silently
    /// serving half its catalog is worse than one that refuses to
    /// start); a mapping whose *warm cache* cannot be built loads
    /// anyway with the failure recorded. Warm caches are built eagerly
    /// here — the daemon is not serving yet, so the build stalls
    /// nobody.
    pub fn load(
        dir: &Path,
        dims: UniverseDims,
        policy: CachePolicy,
    ) -> Result<Catalog, ServeError> {
        let (catalog, _) = Catalog::scan(dir, dims, policy, None)?;
        for entry in catalog.entries.values() {
            let _ = entry.warm_state();
        }
        Ok(catalog)
    }

    /// Re-scan `dir` against `previous`: entries whose fingerprint is
    /// unchanged are carried over by `Arc` clone (warm cache and all);
    /// changed or new entries are re-parsed with their warm build
    /// deferred to first use. Returns the new catalog and how many
    /// entries were carried. Any failure leaves `previous` untouched —
    /// the caller keeps serving it.
    pub fn reload(
        dir: &Path,
        dims: UniverseDims,
        policy: CachePolicy,
        previous: &Catalog,
    ) -> Result<(Catalog, usize), ServeError> {
        Catalog::scan(dir, dims, policy, Some(previous))
    }

    fn scan(
        dir: &Path,
        dims: UniverseDims,
        policy: CachePolicy,
        previous: Option<&Catalog>,
    ) -> Result<(Catalog, usize), ServeError> {
        let mut entries = BTreeMap::new();
        let mut carried = 0usize;
        let listing = std::fs::read_dir(dir).map_err(|e| {
            ServeError::Catalog(format!("cannot read catalog `{}`: {e}", dir.display()))
        })?;
        for item in listing {
            let item = item.map_err(|e| {
                ServeError::Catalog(format!("cannot list `{}`: {e}", dir.display()))
            })?;
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("map") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            let (text, rev_text) = read_entry_text(&path)?;
            let fingerprint = fingerprint(&text, rev_text.as_deref());
            if let Some(prev) = previous.and_then(|c| c.entries.get(&name)) {
                if prev.fingerprint == fingerprint {
                    entries.insert(name, Arc::clone(prev));
                    carried += 1;
                    continue;
                }
            }
            let entry = parse_entry(&name, &path, &text, rev_text.as_deref(), dims, policy)?;
            entries.insert(name, Arc::new(entry));
        }
        if entries.is_empty() {
            return Err(ServeError::Catalog(format!(
                "catalog `{}` has no .map files",
                dir.display()
            )));
        }
        Ok((Catalog { entries }, carried))
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&Arc<MappingEntry>> {
        self.entries.get(name)
    }
}

/// Read a mapping's `.map` text and, when present, its `.rev` text.
fn read_entry_text(path: &Path) -> Result<(String, Option<String>), ServeError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServeError::Catalog(format!("cannot read `{}`: {e}", path.display())))?;
    let rev_path = path.with_extension("rev");
    let rev_text = match std::fs::read_to_string(&rev_path) {
        Ok(rev_text) => Some(rev_text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            return Err(ServeError::Catalog(format!("cannot read `{}`: {e}", rev_path.display())))
        }
    };
    Ok((text, rev_text))
}

/// FNV-1a over the entry's source text. Not cryptographic — this
/// detects *edits*, not adversaries (an operator who can write the
/// catalog directory already owns the daemon).
fn fingerprint(text: &str, rev_text: Option<&str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(text.as_bytes());
    // A separator byte that cannot occur in UTF-8 keeps
    // (map="a", rev="b") distinct from (map="ab", rev absent).
    eat(&[0xff]);
    if let Some(rev) = rev_text {
        eat(rev.as_bytes());
    }
    h
}

fn parse_entry(
    name: &str,
    path: &Path,
    text: &str,
    rev_text: Option<&str>,
    dims: UniverseDims,
    policy: CachePolicy,
) -> Result<MappingEntry, ServeError> {
    let mut vocab = Vocabulary::new();
    let mapping = parse_mapping(&mut vocab, text)
        .map_err(|e| ServeError::Catalog(format!("{}: {e}", path.display())))?;
    let reverse = match rev_text {
        Some(rev_text) => Some(parse_mapping(&mut vocab, rev_text).map_err(|e| {
            ServeError::Catalog(format!("{}: {e}", path.with_extension("rev").display()))
        })?),
        None => None,
    };
    let base_vocab = vocab.clone();
    let fingerprint = fingerprint(text, rev_text);
    Ok(MappingEntry {
        name: name.to_owned(),
        mapping,
        reverse,
        base_vocab,
        fingerprint,
        warm: WarmCell::deferred(vocab, dims, policy),
    })
}

/// Chase the bounded-universe family once so the first request hits a
/// warm memo, not a cold one. Failures are reported, not fatal: the
/// chase/certain side of the entry works regardless.
fn build_warm(
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
    dims: UniverseDims,
    policy: CachePolicy,
) -> Result<WarmState, String> {
    let universe = Universe::new(vocab, dims.consts, dims.nulls, dims.facts);
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|e| format!("cannot enumerate the source universe: {e}"))?;
    let cache = ArrowMCache::with_policy(mapping, &family, vocab, &HomConfig::default(), policy)
        .map_err(|e| format!("cannot build the arrow cache: {e}"))?;
    Ok(WarmState { family, cache, vocab: Mutex::new(vocab.clone()) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rde-catalog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn loads_mappings_with_and_without_reverses() {
        let d = dir("load");
        std::fs::write(d.join("copy.map"), "source: P/1\ntarget: Q/1\nP(x) -> Q(x)\n").unwrap();
        std::fs::write(d.join("copy.rev"), "source: Q/1\ntarget: P/1\nQ(x) -> P(x)\n").unwrap();
        std::fs::write(
            d.join("merge.map"),
            "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\n",
        )
        .unwrap();
        std::fs::write(d.join("notes.txt"), "not a mapping").unwrap();
        let dims = UniverseDims { consts: 1, nulls: 1, facts: 1 };
        let catalog = Catalog::load(&d, dims, CachePolicy::default()).unwrap();
        assert_eq!(
            catalog.entries.keys().collect::<Vec<_>>(),
            vec!["copy", "merge"],
            "sorted names, non-.map files ignored"
        );
        let copy = catalog.get("copy").unwrap();
        assert!(copy.reverse.is_some());
        assert!(copy.warm.peek().is_some(), "initial load builds warm state eagerly");
        let warm = copy.warm_state().expect("warm cache builds for an enumerable source");
        assert!(!warm.family.is_empty());
        assert!(catalog.get("merge").unwrap().reverse.is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn unparsable_mappings_fail_the_load() {
        let d = dir("badmap");
        std::fs::write(d.join("bad.map"), "this is not a mapping\n").unwrap();
        let err = Catalog::load(&d, UniverseDims::default(), CachePolicy::default())
            .err()
            .expect("unparsable mapping must fail the load");
        assert!(err.to_string().contains("bad.map"));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_catalogs_are_refused() {
        let d = dir("empty");
        assert!(Catalog::load(&d, UniverseDims::default(), CachePolicy::default()).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reload_carries_unchanged_entries_and_rebuilds_changed_ones() {
        let d = dir("reload");
        std::fs::write(d.join("copy.map"), "source: P/1\ntarget: Q/1\nP(x) -> Q(x)\n").unwrap();
        std::fs::write(
            d.join("merge.map"),
            "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\n",
        )
        .unwrap();
        let dims = UniverseDims { consts: 1, nulls: 1, facts: 1 };
        let policy = CachePolicy::default();
        let first = Catalog::load(&d, dims, policy).unwrap();

        // Touch `copy` (semantically equivalent but different text —
        // variable renamed), leave `merge` alone, add `extra`.
        std::fs::write(d.join("copy.map"), "source: P/1\ntarget: Q/1\nP(v) -> Q(v)\n").unwrap();
        std::fs::write(d.join("extra.map"), "source: S/1\ntarget: T/1\nS(x) -> T(x)\n").unwrap();
        let (second, carried) = Catalog::reload(&d, dims, policy, &first).unwrap();
        assert_eq!(carried, 1, "only `merge` is unchanged");
        assert!(
            Arc::ptr_eq(first.get("merge").unwrap(), second.get("merge").unwrap()),
            "unchanged entries are the same allocation, warm cache included"
        );
        assert!(
            !Arc::ptr_eq(first.get("copy").unwrap(), second.get("copy").unwrap()),
            "changed text means a fresh entry"
        );
        let copy = second.get("copy").unwrap();
        assert!(copy.warm.peek().is_none(), "reloaded entries defer the warm build");
        assert!(copy.warm_state().is_ok(), "…until the first op that needs it");
        assert!(copy.warm.peek().is_some());
        assert!(second.get("extra").is_some(), "new mappings join the catalog");

        // A corrupted mapping rejects the whole reload.
        std::fs::write(d.join("extra.map"), "garbage that cannot parse\n").unwrap();
        let err = Catalog::reload(&d, dims, policy, &second).err().expect("corrupt reload fails");
        assert!(err.to_string().contains("extra.map"), "{err}");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn fingerprints_separate_map_and_rev_content() {
        assert_ne!(fingerprint("ab", None), fingerprint("a", Some("b")));
        assert_ne!(fingerprint("a", Some("b")), fingerprint("a", None));
        assert_eq!(fingerprint("a", Some("b")), fingerprint("a", Some("b")));
    }
}
