//! The mapping catalog: a directory of named mappings the daemon
//! serves, each with an optional reverse mapping and a warm arrow
//! cache.
//!
//! A catalog directory holds one `NAME.map` file per mapping (the
//! format `rde_deps::parse_mapping` reads) and, optionally, a
//! `NAME.rev` reverse mapping in the same format — `CERTAIN` requests
//! need one. Everything else about an entry is derived at load time:
//!
//! * **`base_vocab`** — the vocabulary right after parsing the mapping
//!   (and reverse). Every `CHASE`/`CERTAIN` request clones it and
//!   replays exactly what a cold `rde chase` run does, which is what
//!   makes daemon answers bit-identical to single-shot CLI runs.
//! * **warm state** — a bounded-universe instance family, the
//!   [`ArrowMCache`] chased over it, and the vocabulary those two
//!   evolved (behind a mutex: `ARROW` interning parses request
//!   constants into it so class fingerprints agree across requests).
//!   Warm state is best-effort: a mapping whose source schema the
//!   enumerator cannot handle still serves `CHASE`/`CERTAIN`, and the
//!   ops that need the cache explain what failed instead.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use rde_core::arrow::{ArrowMCache, CachePolicy};
use rde_core::Universe;
use rde_deps::{parse_mapping, SchemaMapping};
use rde_hom::HomConfig;
use rde_model::{Instance, Vocabulary};

use crate::ServeError;

/// Warm per-mapping state: the family scan and interning side.
pub struct WarmState {
    /// The bounded-universe family the cache was built over.
    pub family: Vec<Instance>,
    /// The shared chase-once/core/memo cache.
    pub cache: ArrowMCache,
    /// The vocabulary the universe and cache construction evolved.
    /// `ARROW` requests lock it to parse and intern request instances,
    /// so constants named by different requests resolve to the same
    /// ids (fingerprint equality across requests depends on it).
    pub vocab: Mutex<Vocabulary>,
}

/// One catalog entry: a named mapping plus derived state.
pub struct MappingEntry {
    /// The mapping name (the `.map` file stem).
    pub name: String,
    /// Parsed forward mapping.
    pub mapping: SchemaMapping,
    /// Parsed reverse mapping, when `NAME.rev` exists.
    pub reverse: Option<SchemaMapping>,
    /// Vocabulary snapshot right after parsing; cloned per request.
    pub base_vocab: Vocabulary,
    /// Warm cache state, or the reason it could not be built.
    pub warm: Result<WarmState, String>,
}

/// The loaded catalog, keyed by mapping name (sorted for stable LIST
/// output).
pub struct Catalog {
    /// All entries, keyed by name.
    pub entries: BTreeMap<String, MappingEntry>,
}

/// Universe dimensions for the warm family, mirroring the CLI's
/// `--consts/--nulls/--facts` knobs.
#[derive(Debug, Clone, Copy)]
pub struct UniverseDims {
    /// Constant-pool size.
    pub consts: usize,
    /// Null-pool size.
    pub nulls: usize,
    /// Per-instance fact budget.
    pub facts: usize,
}

impl Default for UniverseDims {
    fn default() -> Self {
        UniverseDims { consts: 2, nulls: 1, facts: 2 }
    }
}

impl Catalog {
    /// Load every `*.map` file under `dir`. An unreadable or
    /// unparsable mapping fails the whole load (a daemon silently
    /// serving half its catalog is worse than one that refuses to
    /// start); a mapping whose *warm cache* cannot be built loads
    /// anyway with the failure recorded.
    pub fn load(
        dir: &Path,
        dims: UniverseDims,
        policy: CachePolicy,
    ) -> Result<Catalog, ServeError> {
        let mut entries = BTreeMap::new();
        let listing = std::fs::read_dir(dir).map_err(|e| {
            ServeError::Catalog(format!("cannot read catalog `{}`: {e}", dir.display()))
        })?;
        for item in listing {
            let item = item.map_err(|e| {
                ServeError::Catalog(format!("cannot list `{}`: {e}", dir.display()))
            })?;
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("map") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            let entry = load_entry(&name, &path, dims, policy)?;
            entries.insert(name, entry);
        }
        if entries.is_empty() {
            return Err(ServeError::Catalog(format!(
                "catalog `{}` has no .map files",
                dir.display()
            )));
        }
        Ok(Catalog { entries })
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MappingEntry> {
        self.entries.get(name)
    }
}

fn load_entry(
    name: &str,
    path: &Path,
    dims: UniverseDims,
    policy: CachePolicy,
) -> Result<MappingEntry, ServeError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServeError::Catalog(format!("cannot read `{}`: {e}", path.display())))?;
    let mut vocab = Vocabulary::new();
    let mapping = parse_mapping(&mut vocab, &text)
        .map_err(|e| ServeError::Catalog(format!("{}: {e}", path.display())))?;
    let rev_path = path.with_extension("rev");
    let reverse = match std::fs::read_to_string(&rev_path) {
        Ok(rev_text) => Some(
            parse_mapping(&mut vocab, &rev_text)
                .map_err(|e| ServeError::Catalog(format!("{}: {e}", rev_path.display())))?,
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            return Err(ServeError::Catalog(format!("cannot read `{}`: {e}", rev_path.display())))
        }
    };
    let base_vocab = vocab.clone();
    let warm = build_warm(&mapping, &mut vocab, dims, policy);
    Ok(MappingEntry { name: name.to_owned(), mapping, reverse, base_vocab, warm })
}

/// Chase the bounded-universe family once so the first request hits a
/// warm memo, not a cold one. Failures are reported, not fatal: the
/// chase/certain side of the entry works regardless.
fn build_warm(
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
    dims: UniverseDims,
    policy: CachePolicy,
) -> Result<WarmState, String> {
    let universe = Universe::new(vocab, dims.consts, dims.nulls, dims.facts);
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|e| format!("cannot enumerate the source universe: {e}"))?;
    let cache = ArrowMCache::with_policy(mapping, &family, vocab, &HomConfig::default(), policy)
        .map_err(|e| format!("cannot build the arrow cache: {e}"))?;
    Ok(WarmState { family, cache, vocab: Mutex::new(vocab.clone()) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rde-catalog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn loads_mappings_with_and_without_reverses() {
        let d = dir("load");
        std::fs::write(d.join("copy.map"), "source: P/1\ntarget: Q/1\nP(x) -> Q(x)\n").unwrap();
        std::fs::write(d.join("copy.rev"), "source: Q/1\ntarget: P/1\nQ(x) -> P(x)\n").unwrap();
        std::fs::write(
            d.join("merge.map"),
            "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\n",
        )
        .unwrap();
        std::fs::write(d.join("notes.txt"), "not a mapping").unwrap();
        let dims = UniverseDims { consts: 1, nulls: 1, facts: 1 };
        let catalog = Catalog::load(&d, dims, CachePolicy::default()).unwrap();
        assert_eq!(
            catalog.entries.keys().collect::<Vec<_>>(),
            vec!["copy", "merge"],
            "sorted names, non-.map files ignored"
        );
        let copy = catalog.get("copy").unwrap();
        assert!(copy.reverse.is_some());
        let warm = copy.warm.as_ref().expect("warm cache builds for an enumerable source");
        assert!(!warm.family.is_empty());
        assert!(catalog.get("merge").unwrap().reverse.is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn unparsable_mappings_fail_the_load() {
        let d = dir("badmap");
        std::fs::write(d.join("bad.map"), "this is not a mapping\n").unwrap();
        let err = Catalog::load(&d, UniverseDims::default(), CachePolicy::default())
            .err()
            .expect("unparsable mapping must fail the load");
        assert!(err.to_string().contains("bad.map"));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_catalogs_are_refused() {
        let d = dir("empty");
        assert!(Catalog::load(&d, UniverseDims::default(), CachePolicy::default()).is_err());
        std::fs::remove_dir_all(&d).ok();
    }
}
