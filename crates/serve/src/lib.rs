//! # rde-serve
//!
//! The multi-tenant mapping daemon behind `rde serve`: load a catalog
//! of named schema mappings, keep a warm [`ArrowMCache`] per mapping,
//! and answer concurrent chase / invertibility / arrow /
//! certain-answer requests over a line protocol on TCP.
//!
//! The crate splits along the obvious seams:
//!
//! * [`protocol`] — the wire format (requests, replies, framing);
//! * [`catalog`] — directory loading and warm-state construction;
//! * [`server`] — the accept loop, admission control, per-request
//!   execution contexts, op handlers, graceful shutdown;
//! * [`client`] — a blocking client for `rde call`, tests, benches.
//!
//! Design constraints it inherits from the rest of the workspace: no
//! external dependencies (std TCP, thread-per-connection), typed
//! errors instead of panics, per-request [`ExecContext`] scoping so
//! deadlines and budgets never leak across tenants, and answers that
//! are bit-identical to single-shot CLI runs.
//!
//! [`ArrowMCache`]: rde_core::arrow::ArrowMCache
//! [`ExecContext`]: rde_faults::ExecContext

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod client;
pub mod protocol;
pub mod server;

pub use catalog::{Catalog, UniverseDims};
pub use client::{Client, ClientError};
pub use protocol::{FrameError, ProtocolLimits, Reply, Request};
pub use server::{spawn, ServeOptions, Server, TenantQuota};

/// How the daemon failed to start or stopped abnormally.
#[derive(Debug)]
pub enum ServeError {
    /// The catalog directory could not be loaded.
    Catalog(String),
    /// The listen socket could not be bound or polled.
    Bind(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Catalog(m) | ServeError::Bind(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for ServeError {}
