//! The daemon: a thread-per-connection TCP server over the catalog.
//!
//! Std-only by necessity (the build environment is offline) and by
//! sufficiency: every request is CPU-bound chase/search work, so an
//! async reactor would buy nothing — the concurrency story is one OS
//! thread per connection, a shared [`Catalog`] behind `Arc`, and the
//! existing per-request [`ExecContext`] machinery for deadlines and
//! budgets.
//!
//! ## Isolation and shedding
//!
//! Each request gets its **own** `ExecContext`: a fresh cancel token
//! (armed with the request's `deadline-ms` header, watching the
//! process interrupt flag) and the budgets from its headers. The
//! shared [`ArrowMCache`] never sees another request's token, so one
//! cancelled request cannot bleed into a neighbour — the cache only
//! memoizes definite verdicts.
//!
//! Load shedding is a reply, never a dropped connection: past
//! [`ServeOptions::max_inflight`] concurrently executing requests the
//! server answers `SHED overloaded` without doing the work, and a
//! request whose deadline fires mid-flight gets `SHED` too. Budget
//! exhaustion inside an engine surfaces as `UNKNOWN`, matching the
//! three-valued verdicts the CLI prints.
//!
//! ## Telemetry
//!
//! Every request gets a monotonic id (starting at 1; 0 means "no
//! request") installed as the thread's ambient request id, so every
//! span and journal event the request produces — including on engine
//! worker threads, which re-install the id from the `ExecContext` —
//! carries a `req` field. Admission control keeps per-`{op, mapping}`
//! labeled request counters, latency and queue-wait histograms,
//! per-mapping inflight gauges, and per-outcome counters; `METRICS`
//! exposes the lot in Prometheus text format. Each request also leaves
//! one `serve.access` journal event (op, mapping, backend, outcome,
//! elapsed µs, arrow-cache hit/miss) — point a rotating journal sink
//! at a file and that is the access log. With
//! [`ServeOptions::trace_slow_ms`] set, the request thread's span tree
//! is buffered and replayed into the journal only for requests at
//! least that slow, behind a `serve.slow_trace` marker.
//!
//! ## Shutdown
//!
//! `serve` polls its shutdown token between accepts (the listener is
//! non-blocking). On cancellation it stops accepting, half-closes the
//! **read** side of every live connection — workers blocked in
//! `read_request` wake with a clean EOF while a worker mid-request can
//! still write its reply — and joins every worker before returning.

use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rde_chase::{ChaseOptions, DisjunctiveChaseOptions};
use rde_core::arrow::CachePolicy;
use rde_core::invertibility::{check_homomorphism_property_cached, BoundedVerdict};
use rde_core::CoreError;
use rde_faults::{CancelToken, ExecContext};
use rde_hom::{Exhausted, HomConfig, HomStats, Verdict};
use rde_model::parse::parse_instance;
use rde_model::{display, BackendKind};
use rde_obs::metrics::HistogramSnapshot;
use rde_obs::{counter, gauge, histogram};
use rde_query::ConjunctiveQuery;

use crate::catalog::{Catalog, MappingEntry, UniverseDims, WarmState};
use crate::protocol::{read_request, Reply, Request};
use crate::ServeError;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Catalog directory of `NAME.map` (+ optional `NAME.rev`) files.
    pub catalog: PathBuf,
    /// Instance storage layout for request instances.
    pub backend: BackendKind,
    /// Bounded-universe dimensions for each mapping's warm family.
    pub dims: UniverseDims,
    /// Size caps for each mapping's arrow cache.
    pub policy: CachePolicy,
    /// Concurrent-request ceiling; past it requests get `SHED
    /// overloaded` instead of a thread's worth of work.
    pub max_inflight: usize,
    /// Slow-request trace sampling threshold, in milliseconds. When
    /// set, every request's span tree is buffered in capture mode and
    /// replayed into the journal only if the request took at least
    /// this long (`0` keeps every request's tree). `None` streams
    /// spans live, interleaved but request-stamped.
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            catalog: PathBuf::from("."),
            backend: BackendKind::default(),
            dims: UniverseDims::default(),
            // Defaults sized for a long-lived process: large enough
            // that a working set never thrashes, small enough that a
            // hostile request stream cannot grow the maps without
            // bound.
            policy: CachePolicy::bounded(1 << 16, 1024),
            max_inflight: 256,
            trace_slow_ms: None,
        }
    }
}

/// Shared server state: catalog + admission control + live-connection
/// registry (for shutdown's read-half close).
struct ServerState {
    catalog: Catalog,
    options: ServeOptions,
    inflight: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Monotonic request-id source; id 0 is reserved for "no request".
    next_request: AtomicU64,
    /// Process uptime epoch (`STATS`/`METRICS` report against it).
    started: Instant,
}

/// A bound daemon, ready to [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Load the catalog and bind the listen socket. Warm caches are
    /// built here, before the first connection, so the first request
    /// pays no cold-start penalty.
    pub fn bind(options: ServeOptions) -> Result<Server, ServeError> {
        let catalog = Catalog::load(&options.catalog, options.dims, options.policy)?;
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| ServeError::Bind(format!("cannot bind `{}`: {e}", options.addr)))?;
        let state = Arc::new(ServerState {
            catalog,
            options,
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Names of the mappings this server answers for.
    pub fn mapping_names(&self) -> Vec<String> {
        self.state.catalog.entries.keys().cloned().collect()
    }

    /// Accept and serve connections until `shutdown` cancels, then
    /// drain: no new accepts, read-half close on live connections,
    /// join every worker. In-flight requests run to completion and
    /// their replies are delivered.
    pub fn serve(self, shutdown: &CancelToken) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(format!("cannot poll listener: {e}")))?;
        let mut workers = Vec::new();
        let mut next_id: u64 = 0;
        while !shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    counter!("serve.connections").inc();
                    // Workers use blocking reads; only the accept loop
                    // polls.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        lock(&self.state.conns).insert(id, clone);
                    }
                    let state = Arc::clone(&self.state);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, &state);
                        lock(&state.conns).remove(&id);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(ServeError::Bind(format!("accept failed: {e}"))),
            }
        }
        for (_, conn) in lock(&self.state.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One connection: read requests until EOF, answering each. Framing
/// errors get a best-effort `ERR` and close the connection (the stream
/// position is no longer trustworthy).
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                let _ = Reply::Err(format!("protocol: {e}")).write_to(&mut write_half);
                return;
            }
        };
        let received = Instant::now();
        let reply = admit(state, &request, received);
        if reply.write_to(&mut write_half).is_err() {
            return;
        }
    }
}

/// What a finished request reports into the access log beyond what
/// admission control already knows. Ops fill it in as they learn
/// things (today: the arrow cache's exact memo hit/miss).
#[derive(Default)]
struct AccessInfo {
    /// `Some(true)` when the op was answered from the arrow memo.
    cache: Option<bool>,
}

/// The access-log outcome word for a reply, mirroring the wire tag.
fn outcome_of(reply: &Reply) -> &'static str {
    match reply {
        Reply::Ok(_) => "ok",
        Reply::Err(_) => "err",
        Reply::Shed(_) => "shed",
        Reply::Unknown(_) => "unknown",
    }
}

/// Admission control around [`handle_request`]: assign the request id,
/// count the request in-flight (globally and per `{op, mapping}`),
/// shed past the ceiling, time everything, and leave one `serve.access`
/// journal line behind. With [`ServeOptions::trace_slow_ms`] set the
/// request-thread span tree is buffered and replayed into the journal
/// only when the request was slow.
fn admit(state: &ServerState, request: &Request, received: Instant) -> Reply {
    // Ids start at 1: id 0 means "no request" throughout rde-obs.
    let id = state.next_request.fetch_add(1, Ordering::Relaxed) + 1;
    let _scope = rde_obs::request::enter(id);
    let op = request.op.as_str();
    let mapping = request.mapping.as_deref().unwrap_or("-");
    let op_mapping: [(&str, &str); 2] = [("op", op), ("mapping", mapping)];
    counter!("serve.requests").inc();
    rde_obs::labeled_counter("serve.requests", &op_mapping).inc();
    // Queue wait: time between framing the request off the socket and
    // starting the work (scheduling + admission overhead).
    rde_obs::labeled_histogram("serve.queue.us", &op_mapping)
        .record(received.elapsed().as_micros() as u64);
    let started = Instant::now();
    let inflight = state.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    gauge!("serve.inflight").set(inflight as u64);
    rde_obs::labeled_gauge("serve.inflight", &[("mapping", mapping)]).add(1);
    // Capture only when a journal sink is attached: buffering a span
    // tree there is no sink to replay into would tax every request for
    // nothing. (`enabled()` reflects the sink here — this thread is
    // not yet capturing.)
    let sampling = state.options.trace_slow_ms.is_some() && rde_obs::journal::enabled();
    if sampling {
        rde_obs::journal::capture_begin();
    }
    let mut access = AccessInfo::default();
    let reply = if inflight > state.options.max_inflight {
        Reply::Shed(format!("overloaded ({inflight} requests in flight)"))
    } else {
        handle_request(state, request, id, &mut access)
    };
    let now = state.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
    gauge!("serve.inflight").set(now as u64);
    rde_obs::labeled_gauge("serve.inflight", &[("mapping", mapping)]).sub(1);
    let us = started.elapsed().as_micros() as u64;
    histogram!("serve.request.us").record(us);
    rde_obs::labeled_histogram("serve.request.us", &op_mapping).record(us);
    let outcome = outcome_of(&reply);
    rde_obs::labeled_counter(
        "serve.outcome",
        &[("op", op), ("mapping", mapping), ("outcome", outcome)],
    )
    .inc();
    if matches!(reply, Reply::Shed(_)) {
        counter!("serve.shed").inc();
    }
    if matches!(reply, Reply::Unknown(_)) {
        counter!("serve.unknown").inc();
    }
    if sampling {
        let records = rde_obs::journal::capture_take();
        let threshold_us = state.options.trace_slow_ms.unwrap_or(0).saturating_mul(1000);
        if us >= threshold_us {
            counter!("serve.slow_traces").inc();
            // Bracket the replayed tree so consumers can tell a
            // retroactive dump from live streaming. The event is
            // stamped with this request's id like everything else.
            rde_obs::event(
                "serve.slow_trace",
                &[("elapsed_us", us.into()), ("records", records.len().into())],
            );
            for record in records {
                rde_obs::journal::append(record);
            }
        }
    }
    // The access log: one structured line per request, emitted through
    // the journal so rotation, capacity bounds, and the JSONL format
    // come for free. (During capture this was diverted; by now capture
    // is off, so it always reaches the sink.)
    let mut fields: Vec<(&str, rde_obs::Field)> = vec![
        ("op", op.into()),
        ("mapping", mapping.into()),
        ("backend", rde_obs::Field::Str(backend_name(state.options.backend))),
        ("outcome", outcome.into()),
        ("us", us.into()),
    ];
    if let Some(hit) = access.cache {
        fields.push(("cache", if hit { "hit" } else { "miss" }.into()));
    }
    rde_obs::event("serve.access", &fields);
    reply
}

/// Static name for the backend label (access log + metrics want
/// `&'static str`, `Display` allocates).
fn backend_name(backend: BackendKind) -> &'static str {
    match backend {
        BackendKind::Row => "row",
        BackendKind::Columnar => "columnar",
    }
}

/// Per-request execution context: fresh cancel token (armed with the
/// `deadline-ms` header, watching the process interrupt flag) — never
/// shared with any other request. The request id rides on the context
/// so engines re-install it on their worker threads.
fn request_config(request: &Request, id: u64) -> Result<HomConfig, String> {
    let token = match request.u64_header("deadline-ms")? {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    Ok(HomConfig {
        node_budget: request.u64_header("node-budget")?,
        time_budget: request.u64_header("time-budget-ms")?.map(Duration::from_millis),
        ctx: ExecContext::default().with_cancel(token.watching_interrupt()).with_request_id(id),
        ..HomConfig::default()
    })
}

fn handle_request(
    state: &ServerState,
    request: &Request,
    id: u64,
    access: &mut AccessInfo,
) -> Reply {
    let _span = rde_obs::span(
        "serve.request",
        &[
            ("op", request.op.as_str().into()),
            ("mapping", request.mapping.as_deref().unwrap_or("-").into()),
        ],
    );
    let config = match request_config(request, id) {
        Ok(config) => config,
        Err(e) => return Reply::Err(e),
    };
    match request.op.as_str() {
        "PING" => Reply::Ok(vec!["pong".to_owned()]),
        "LIST" => op_list(state),
        "STATS" => op_stats(state),
        "METRICS" => op_metrics(state),
        "CHASE" => with_mapping(state, request, |e| op_chase(state, e, request, &config)),
        "INVERTIBLE" => with_mapping(state, request, |e| op_invertible(e, &config)),
        "ARROW" => with_mapping(state, request, |e| op_arrow(state, e, request, &config, access)),
        "CERTAIN" => with_mapping(state, request, |e| op_certain(state, e, request, &config)),
        other => Reply::Err(format!("unknown op `{other}`")),
    }
}

fn with_mapping(
    state: &ServerState,
    request: &Request,
    f: impl FnOnce(&MappingEntry) -> Reply,
) -> Reply {
    let Some(name) = request.mapping.as_deref() else {
        return Reply::Err(format!("{} needs a mapping name", request.op));
    };
    match state.catalog.get(name) {
        Some(entry) => f(entry),
        None => Reply::Err(format!("no such mapping `{name}` (try LIST)")),
    }
}

fn warm_of(entry: &MappingEntry) -> Result<&WarmState, Reply> {
    entry.warm.as_ref().map_err(|reason| {
        Reply::Err(format!("mapping `{}` has no warm cache: {reason}", entry.name))
    })
}

fn op_list(state: &ServerState) -> Reply {
    let lines = state
        .catalog
        .entries
        .values()
        .map(|e| {
            let classes = match &e.warm {
                Ok(w) => w.cache.stats().classes.to_string(),
                Err(_) => "-".to_owned(),
            };
            format!(
                "{} reverse={} classes={classes}",
                e.name,
                if e.reverse.is_some() { "yes" } else { "no" }
            )
        })
        .collect();
    Reply::Ok(lines)
}

/// Refresh the point-in-time gauges that only make sense at scrape
/// time: process uptime and per-mapping cache occupancy. Called by
/// both `STATS` and `METRICS` so the two views agree.
fn refresh_scrape_gauges(state: &ServerState) {
    gauge!("serve.uptime.ms").set(state.started.elapsed().as_millis() as u64);
    for entry in state.catalog.entries.values() {
        if let Ok(warm) = &entry.warm {
            let s = warm.cache.stats();
            let labels = [("mapping", entry.name.as_str())];
            rde_obs::labeled_gauge("serve.cache.memo", &labels).set(s.memo_entries as u64);
            rde_obs::labeled_gauge("serve.cache.classes", &labels).set(s.classes as u64);
        }
    }
}

/// Aggregate the labeled `serve.request.us` histograms down to one
/// latency distribution per op (summed across mappings), for the
/// human-oriented `STATS` reply.
fn per_op_latency(snap: &rde_obs::Snapshot) -> BTreeMap<String, HistogramSnapshot> {
    let empty =
        HistogramSnapshot { buckets: [0; rde_obs::metrics::BUCKETS], count: 0, sum: 0, max: 0 };
    let mut per_op: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for (name, labels, h) in &snap.labeled_histograms {
        if name != "serve.request.us" {
            continue;
        }
        let Some(parsed) = rde_obs::metrics::parse_labels(labels) else { continue };
        let Some((_, op)) = parsed.iter().find(|(k, _)| k == "op") else { continue };
        let agg = per_op.entry(op.clone()).or_insert_with(|| empty.clone());
        agg.count += h.count;
        agg.sum += h.sum;
        agg.max = agg.max.max(h.max);
        for (slot, v) in agg.buckets.iter_mut().zip(&h.buckets) {
            *slot += v;
        }
    }
    per_op
}

fn op_stats(state: &ServerState) -> Reply {
    refresh_scrape_gauges(state);
    let snap = rde_obs::snapshot();
    let mut lines = vec![format!("uptime-ms {}", state.started.elapsed().as_millis())];
    for (name, v) in &snap.counters {
        lines.push(format!("counter {name} {v}"));
    }
    for (name, v) in &snap.gauges {
        lines.push(format!("gauge {name} {v}"));
    }
    for (name, h) in &snap.histograms {
        lines.push(format!(
            "histogram {name} count={} p50<={} p99<={} max={}",
            h.count,
            h.quantile_bound(0.50),
            h.quantile_bound(0.99),
            h.max
        ));
    }
    // Per-op latency, aggregated across mappings from the labeled
    // request histograms.
    for (op, h) in per_op_latency(&snap) {
        lines.push(format!(
            "op {op} count={} p50<={} p99<={} max={}",
            h.count,
            h.quantile_bound(0.50),
            h.quantile_bound(0.99),
            h.max
        ));
    }
    // Per-mapping cache occupancy: the process-wide gauges above are
    // last-writer-wins across caches, so the authoritative per-tenant
    // numbers come straight from each cache.
    for entry in state.catalog.entries.values() {
        if let Ok(warm) = &entry.warm {
            let s = warm.cache.stats();
            lines.push(format!(
                "cache {} classes={} interned={} memo={} hits={} intern_hits={} \
                 memo_evictions={} class_evictions={}",
                entry.name,
                s.classes,
                s.interned,
                s.memo_entries,
                s.hits,
                s.intern_hits,
                s.memo_evictions,
                s.class_evictions
            ));
        }
    }
    Reply::Ok(lines)
}

/// `METRICS` — the full metrics registry (unlabeled and labeled) in
/// Prometheus text exposition format, one line per reply line. Scrape
/// gauges (uptime, per-mapping cache occupancy) are refreshed first so
/// every exposition is point-in-time accurate.
fn op_metrics(state: &ServerState) -> Reply {
    refresh_scrape_gauges(state);
    let text = rde_obs::expo::render(&rde_obs::snapshot());
    Reply::Ok(text.lines().map(str::to_owned).collect())
}

/// Map an engine error to the protocol's three failure forms. The
/// request's own cancellation (deadline) is a `SHED`; a cut budget is
/// an honest `UNKNOWN`; everything else is an `ERR`.
fn chase_reply(e: rde_chase::ChaseError) -> Reply {
    match e {
        rde_chase::ChaseError::Cancelled => Reply::Shed("cancelled (request deadline)".into()),
        rde_chase::ChaseError::MatchBudgetExhausted { budget: Exhausted::Cancelled } => {
            Reply::Shed("cancelled (request deadline)".into())
        }
        rde_chase::ChaseError::MatchBudgetExhausted { budget } => {
            Reply::Unknown(budget.to_string())
        }
        e => Reply::Err(e.to_string()),
    }
}

fn core_reply(e: CoreError) -> Reply {
    match e {
        CoreError::Cancelled => Reply::Shed("cancelled (request deadline)".into()),
        CoreError::Chase(e) => chase_reply(e),
        e => Reply::Err(e.to_string()),
    }
}

/// `CHASE m` — chase the body instance through `m` and return the
/// target-restricted result. A fresh clone of the entry's post-parse
/// vocabulary replays exactly what a cold `rde chase` run does, so the
/// reply is bit-identical to the CLI's stdout.
fn op_chase(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
) -> Reply {
    let mut vocab = entry.base_vocab.clone();
    let instance = match parse_instance(&mut vocab, &request.body_blob()) {
        Ok(i) => i.into_backend(state.options.backend),
        Err(e) => return Reply::Err(format!("instance: {e}")),
    };
    let options =
        ChaseOptions { hom: config.clone(), ctx: config.ctx.clone(), ..ChaseOptions::default() };
    match rde_chase::chase(&instance, &entry.mapping.dependencies, &mut vocab, &options) {
        Ok(result) => {
            let rendered =
                display::instance(&vocab, &result.instance.restrict_to(&entry.mapping.target))
                    .to_string();
            Reply::Ok(rendered.lines().map(str::to_owned).collect())
        }
        Err(e) => chase_reply(e),
    }
}

/// `INVERTIBLE m` — the homomorphism-property check (Thm 3.13) against
/// the warm cache. Every request scans the same family under its own
/// budgets; the memo makes repeat checks cheap.
fn op_invertible(entry: &MappingEntry, config: &HomConfig) -> Reply {
    let warm = match warm_of(entry) {
        Ok(w) => w,
        Err(reply) => return reply,
    };
    let mut stats = HomStats::default();
    let vocab = lock(&warm.vocab);
    match check_homomorphism_property_cached(&warm.cache, &warm.family, config, &mut stats) {
        BoundedVerdict::HoldsWithinBound => Reply::Ok(vec!["HOLDS within bound".to_owned()]),
        BoundedVerdict::Counterexample { i1, i2 } => Reply::Ok(vec![
            "FAILS".to_owned(),
            display::instance_inline(&vocab, &i1),
            display::instance_inline(&vocab, &i2),
        ]),
        BoundedVerdict::Unknown { budget: Exhausted::Cancelled } => {
            Reply::Shed("cancelled (request deadline)".into())
        }
        BoundedVerdict::Unknown { budget } => Reply::Unknown(budget.to_string()),
    }
}

/// `ARROW m` — decide `I₁ →_M I₂` for the two body instances
/// (separated by a `--` line). Both are interned into the shared
/// cache: the vocabulary lock makes constants from different requests
/// resolve identically, and the eviction policy keeps a hostile
/// request stream from growing the cache without bound.
fn op_arrow(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
    access: &mut AccessInfo,
) -> Reply {
    let warm = match warm_of(entry) {
        Ok(w) => w,
        Err(reply) => return reply,
    };
    let Some(split) = request.body.iter().position(|l| l.trim() == "--") else {
        return Reply::Err("ARROW body needs two instances separated by a `--` line".into());
    };
    let (first, rest) = request.body.split_at(split);
    let texts = [first.join("\n"), rest[1..].join("\n")];
    let mut handles = Vec::with_capacity(2);
    {
        let mut vocab = lock(&warm.vocab);
        for text in &texts {
            let instance = match parse_instance(&mut vocab, text) {
                Ok(i) => i.into_backend(state.options.backend),
                Err(e) => return Reply::Err(format!("instance: {e}")),
            };
            match warm.cache.intern(&entry.mapping, &instance, &mut vocab, config) {
                Ok(handle) => handles.push(handle),
                Err(e) => return core_reply(e),
            }
        }
    }
    let (verdict, hit) = warm.cache.arrow_classes_probed(&handles[0], &handles[1], config);
    access.cache = Some(hit);
    match verdict {
        Verdict::Holds => Reply::Ok(vec!["YES".to_owned()]),
        Verdict::Fails => Reply::Ok(vec!["NO".to_owned()]),
        Verdict::Unknown { budget: Exhausted::Cancelled } => {
            Reply::Shed("cancelled (request deadline)".into())
        }
        Verdict::Unknown { budget } => Reply::Unknown(budget.to_string()),
    }
}

/// `CERTAIN m` — reverse certain answers (Thm 6.5) of the `query=`
/// header over the body instance, using the catalog's `NAME.rev`
/// reverse mapping.
fn op_certain(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
) -> Reply {
    let Some(reverse) = &entry.reverse else {
        return Reply::Err(format!("mapping `{}` has no reverse (.rev) mapping", entry.name));
    };
    let Some(query_text) = request.get_header("query") else {
        return Reply::Err("CERTAIN needs a query= header".into());
    };
    let mut vocab = entry.base_vocab.clone();
    let instance = match parse_instance(&mut vocab, &request.body_blob()) {
        Ok(i) => i.into_backend(state.options.backend),
        Err(e) => return Reply::Err(format!("instance: {e}")),
    };
    let q = match ConjunctiveQuery::parse(&mut vocab, query_text) {
        Ok(q) => q,
        Err(e) => return Reply::Err(format!("query: {e}")),
    };
    let options =
        DisjunctiveChaseOptions { ctx: config.ctx.clone(), ..DisjunctiveChaseOptions::default() };
    match rde_query::reverse_certain_answers(
        &q,
        &instance,
        &entry.mapping,
        reverse,
        &mut vocab,
        &options,
    ) {
        Ok(answers) => Reply::Ok(
            answers
                .iter()
                .map(|tuple| {
                    let rendered: Vec<String> =
                        tuple.iter().map(|&v| vocab.value_name(v)).collect();
                    format!("({})", rendered.join(", "))
                })
                .collect(),
        ),
        Err(e) => chase_reply(e),
    }
}

/// What [`spawn`] hands back: the bound address, the shutdown token,
/// and the serving thread's join handle.
pub type SpawnedServer =
    (std::net::SocketAddr, CancelToken, std::thread::JoinHandle<Result<(), ServeError>>);

/// Spawn a bound server onto a background thread, returning the
/// address, the shutdown token, and the join handle. The canonical way
/// to embed the daemon in tests and benches.
pub fn spawn(options: ServeOptions) -> Result<SpawnedServer, ServeError> {
    let server = Server::bind(options)?;
    let addr = server
        .local_addr()
        .map_err(|e| ServeError::Bind(format!("cannot resolve bound address: {e}")))?;
    let shutdown = CancelToken::new();
    let token = shutdown.clone();
    let handle = std::thread::spawn(move || server.serve(&token));
    Ok((addr, shutdown, handle))
}
