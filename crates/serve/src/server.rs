//! The daemon: a thread-per-connection TCP server over the catalog.
//!
//! Std-only by necessity (the build environment is offline) and by
//! sufficiency: every request is CPU-bound chase/search work, so an
//! async reactor would buy nothing — the concurrency story is one OS
//! thread per connection, a generation-swapped catalog behind
//! `RwLock<Arc<_>>`, and the existing per-request [`ExecContext`]
//! machinery for deadlines and budgets.
//!
//! ## Isolation and shedding
//!
//! Each request gets its **own** `ExecContext`: a fresh cancel token
//! (armed with the request's `deadline-ms` header, watching the
//! process interrupt flag) and the budgets from its headers. The
//! shared [`ArrowMCache`] never sees another request's token, so one
//! cancelled request cannot bleed into a neighbour — the cache only
//! memoizes definite verdicts.
//!
//! Load shedding is a reply, never a dropped connection, and it is
//! layered. First line: per-tenant token buckets — a request carrying
//! a `tenant=` header (or the `default` bucket when it carries none)
//! must win a token from its bucket, and a dry bucket answers `SHED`
//! with a computed `retry-after-ms` (the bucket's own time-to-one-token)
//! before any work is done. Backstop: past
//! [`ServeOptions::max_inflight`] concurrently executing requests the
//! server sheds regardless of tenant. A request whose deadline fires
//! mid-flight gets `SHED` too; every shed is counted per
//! `{tenant, reason}`. Budget exhaustion inside an engine surfaces as
//! `UNKNOWN`, matching the three-valued verdicts the CLI prints.
//!
//! ## Hot catalog reload
//!
//! `RELOAD` (or SIGHUP, polled by the accept loop) re-scans the
//! catalog directory and atomically swaps in a new **generation**:
//! in-flight requests keep the `Arc` snapshot they pinned at admission
//! and finish on it, unchanged mappings carry their warm caches over
//! by content fingerprint, and changed ones rebuild lazily. A failed
//! re-scan (unparsable mapping, unreadable directory) rejects the swap
//! — the previous generation keeps serving — and the outcome is
//! visible in `serve.catalog.generation` / `serve.reload.outcome` and
//! a `STATS` line.
//!
//! ## Protocol defense
//!
//! Connections read under [`ProtocolLimits`] (line/header/body caps,
//! NUL and UTF-8 rejection — see [`crate::protocol`]) and an idle/read
//! deadline ([`ServeOptions::idle_timeout`]) so a slowloris peer
//! cannot pin a thread forever. A recoverable violation costs the
//! peer a strike and earns a typed `ERR`; at
//! [`ServeOptions::max_strikes`] strikes — or any violation that
//! leaves the stream position untrustworthy — the connection closes,
//! counted per `serve.conn.closed{reason}`.
//!
//! ## Telemetry
//!
//! Every request gets a monotonic id (starting at 1; 0 means "no
//! request") installed as the thread's ambient request id, so every
//! span and journal event the request produces — including on engine
//! worker threads, which re-install the id from the `ExecContext` —
//! carries a `req` field. Admission control keeps per-`{op, mapping}`
//! labeled request counters, latency and queue-wait histograms,
//! per-mapping inflight gauges, per-tenant request and
//! `{tenant, reason}` shed counters, and per-outcome counters;
//! `METRICS` exposes the lot in Prometheus text format. Each request
//! also leaves one `serve.access` journal event (op, mapping, backend,
//! outcome, elapsed µs, arrow-cache hit/miss) — point a rotating
//! journal sink at a file and that is the access log. With
//! [`ServeOptions::trace_slow_ms`] set, the request thread's span tree
//! is buffered and replayed into the journal only for requests at
//! least that slow, behind a `serve.slow_trace` marker.
//!
//! ## Shutdown
//!
//! `serve` polls its shutdown token between accepts (the listener is
//! non-blocking). On cancellation it stops accepting, half-closes the
//! **read** side of every live connection — workers blocked in
//! `read_request_limited` wake with a clean EOF while a worker
//! mid-request can still write its reply — and joins every worker
//! before returning.

use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use rde_chase::{ChaseOptions, DisjunctiveChaseOptions};
use rde_core::arrow::CachePolicy;
use rde_core::invertibility::{check_homomorphism_property_cached, BoundedVerdict};
use rde_core::CoreError;
use rde_faults::{CancelToken, ExecContext, FaultInjector};
use rde_hom::{Exhausted, HomConfig, HomStats, Verdict};
use rde_model::parse::parse_instance;
use rde_model::{display, BackendKind};
use rde_obs::metrics::HistogramSnapshot;
use rde_obs::{counter, gauge, histogram};
use rde_query::ConjunctiveQuery;

use crate::catalog::{Catalog, MappingEntry, UniverseDims, WarmState};
use crate::protocol::{read_request_limited, ProtocolLimits, Reply, Request};
use crate::ServeError;

/// One tenant's admission quota: a token bucket refilled at `rps`
/// tokens per second up to `burst`. The quota named `default` applies
/// to the anonymous tenant *and* to any named tenant without its own
/// quota; tenants matching no quota at all are unlimited (the global
/// in-flight ceiling still backstops them).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuota {
    /// The tenant name the quota binds to (`default` for the
    /// catch-all bucket).
    pub tenant: String,
    /// Sustained admission rate, in requests per second.
    pub rps: f64,
    /// Bucket capacity: how many requests may arrive back-to-back
    /// before the rate limit bites.
    pub burst: f64,
}

impl TenantQuota {
    /// Parse the CLI's `NAME=rps[:burst]` form. `burst` defaults to
    /// `max(rps, 1)` — one second of headroom, and at least one token
    /// so a fractional-rps quota can ever admit anything.
    pub fn parse(spec: &str) -> Result<TenantQuota, String> {
        let err = || format!("tenant quota `{spec}`: expected NAME=rps[:burst]");
        let (tenant, rest) = spec.split_once('=').ok_or_else(err)?;
        if tenant.is_empty() {
            return Err(err());
        }
        let (rps_text, burst_text) = match rest.split_once(':') {
            Some((r, b)) => (r, Some(b)),
            None => (rest, None),
        };
        let rps: f64 = rps_text.parse().map_err(|_| err())?;
        if !rps.is_finite() || rps <= 0.0 {
            return Err(format!("tenant quota `{spec}`: rps must be a positive number"));
        }
        let burst = match burst_text {
            Some(b) => {
                let burst: f64 = b.parse().map_err(|_| err())?;
                if !burst.is_finite() || burst < 1.0 {
                    return Err(format!("tenant quota `{spec}`: burst must be at least 1"));
                }
                burst
            }
            None => rps.max(1.0),
        };
        Ok(TenantQuota { tenant: tenant.to_owned(), rps, burst })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Catalog directory of `NAME.map` (+ optional `NAME.rev`) files.
    pub catalog: PathBuf,
    /// Instance storage layout for request instances.
    pub backend: BackendKind,
    /// Bounded-universe dimensions for each mapping's warm family.
    pub dims: UniverseDims,
    /// Size caps for each mapping's arrow cache.
    pub policy: CachePolicy,
    /// Concurrent-request ceiling; past it requests get `SHED
    /// overloaded` instead of a thread's worth of work.
    pub max_inflight: usize,
    /// Per-tenant admission quotas (see [`TenantQuota`]). Empty means
    /// no quota layer at all.
    pub tenant_quotas: Vec<TenantQuota>,
    /// Framing caps applied to every connection.
    pub limits: ProtocolLimits,
    /// Per-connection read deadline: a peer that sends nothing (or
    /// stalls mid-request — slowloris) for this long is disconnected.
    /// `None` waits forever, as a pre-hardening daemon did.
    pub idle_timeout: Option<Duration>,
    /// How many recoverable protocol violations a connection may
    /// accumulate before it is closed.
    pub max_strikes: u32,
    /// Fault-injection campaign for the server's own fault points
    /// (`serve.reload.swap`, `serve.quota.refill`, `serve.conn.read`).
    /// Inert by default and outside the `fault-inject` feature.
    pub injector: FaultInjector,
    /// Slow-request trace sampling threshold, in milliseconds. When
    /// set, every request's span tree is buffered in capture mode and
    /// replayed into the journal only if the request took at least
    /// this long (`0` keeps every request's tree). `None` streams
    /// spans live, interleaved but request-stamped.
    pub trace_slow_ms: Option<u64>,
    /// Admission control for non-terminating mappings: when set, every
    /// catalog entry (forward and reverse mapping alike) must pass the
    /// static termination analysis (`rde_deps::analyze_mapping` —
    /// weakly acyclic or stratified). An unproven entry rejects the
    /// whole load at bind time, and rejects a reload with the old
    /// generation still serving.
    pub require_terminating: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            catalog: PathBuf::from("."),
            backend: BackendKind::default(),
            dims: UniverseDims::default(),
            // Defaults sized for a long-lived process: large enough
            // that a working set never thrashes, small enough that a
            // hostile request stream cannot grow the maps without
            // bound.
            policy: CachePolicy::bounded(1 << 16, 1024),
            max_inflight: 256,
            tenant_quotas: Vec::new(),
            limits: ProtocolLimits::default(),
            idle_timeout: Some(Duration::from_secs(60)),
            max_strikes: 3,
            injector: FaultInjector::default(),
            trace_slow_ms: None,
            require_terminating: false,
        }
    }
}

/// One catalog generation: the immutable snapshot requests pin at
/// admission. Swapped wholesale on reload.
struct CatalogState {
    generation: u64,
    catalog: Catalog,
}

/// One tenant's live token bucket.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Shared server state: the current catalog generation + admission
/// control + live-connection registry (for shutdown's read-half
/// close).
struct ServerState {
    catalog: RwLock<Arc<CatalogState>>,
    /// Serializes reloads so concurrent `RELOAD`s cannot race the
    /// generation counter (requests never take this; they read-lock
    /// `catalog` for an `Arc` clone and move on).
    reload: Mutex<()>,
    reloads_ok: AtomicU64,
    reloads_rejected: AtomicU64,
    options: ServeOptions,
    /// Live token buckets, keyed by tenant name (created on first
    /// sight from the matching [`TenantQuota`]).
    buckets: Mutex<HashMap<String, Bucket>>,
    inflight: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Monotonic request-id source; id 0 is reserved for "no request".
    next_request: AtomicU64,
    /// Process uptime epoch (`STATS`/`METRICS` report against it).
    started: Instant,
}

impl ServerState {
    /// The quota covering `tenant`: its own, else the `default`
    /// catch-all, else none (unlimited).
    fn quota_for(&self, tenant: &str) -> Option<&TenantQuota> {
        let quotas = &self.options.tenant_quotas;
        quotas
            .iter()
            .find(|q| q.tenant == tenant)
            .or_else(|| quotas.iter().find(|q| q.tenant == "default"))
    }
}

/// Pin the current catalog generation.
fn current_catalog(state: &ServerState) -> Arc<CatalogState> {
    Arc::clone(&state.catalog.read().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// `--require-terminating` admission: every entry's forward (and
/// reverse, if present) mapping must be statically proven terminating.
/// The error names the first offending entry and its verdict so the
/// operator can `rde analyze` it directly.
fn check_catalog_terminating(catalog: &Catalog) -> Result<(), String> {
    let ctx = ExecContext::new();
    for (name, entry) in &catalog.entries {
        let sides: [(&str, Option<&rde_deps::SchemaMapping>); 2] =
            [("mapping", Some(&entry.mapping)), ("reverse", entry.reverse.as_ref())];
        for (side, mapping) in sides {
            let Some(mapping) = mapping else { continue };
            let report =
                rde_deps::analyze_mapping(mapping, &ctx).map_err(|e| format!("{name}: {e}"))?;
            if !report.verdict.is_terminating() {
                rde_obs::labeled_counter(
                    "serve.catalog.rejected",
                    &[("reason", "termination-unproven")],
                )
                .inc();
                return Err(format!(
                    "mapping `{name}` ({side}): termination unproven (not weakly acyclic \
                     or stratified); run `rde analyze` on it, or serve without \
                     --require-terminating and rely on explicit budgets"
                ));
            }
        }
    }
    Ok(())
}

/// A bound daemon, ready to [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Load the catalog and bind the listen socket. Warm caches are
    /// built here, before the first connection, so the first request
    /// pays no cold-start penalty.
    pub fn bind(options: ServeOptions) -> Result<Server, ServeError> {
        let catalog = Catalog::load(&options.catalog, options.dims, options.policy)?;
        if options.require_terminating {
            check_catalog_terminating(&catalog).map_err(ServeError::Catalog)?;
        }
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| ServeError::Bind(format!("cannot bind `{}`: {e}", options.addr)))?;
        gauge!("serve.catalog.generation").set(1);
        let state = Arc::new(ServerState {
            catalog: RwLock::new(Arc::new(CatalogState { generation: 1, catalog })),
            reload: Mutex::new(()),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            options,
            buckets: Mutex::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Names of the mappings this server answers for (the current
    /// generation's).
    pub fn mapping_names(&self) -> Vec<String> {
        current_catalog(&self.state).catalog.entries.keys().cloned().collect()
    }

    /// Accept and serve connections until `shutdown` cancels, then
    /// drain: no new accepts, read-half close on live connections,
    /// join every worker. In-flight requests run to completion and
    /// their replies are delivered. SIGHUP-requested catalog reloads
    /// (see [`rde_faults::install_reload_handler`]) are picked up
    /// between accepts.
    pub fn serve(self, shutdown: &CancelToken) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind(format!("cannot poll listener: {e}")))?;
        let mut workers = Vec::new();
        let mut next_id: u64 = 0;
        while !shutdown.is_cancelled() {
            if rde_faults::take_reload_request() {
                let _ = reload_now(&self.state);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    counter!("serve.connections").inc();
                    // Workers use blocking reads; only the accept loop
                    // polls.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let id = next_id;
                    next_id += 1;
                    if let Ok(clone) = stream.try_clone() {
                        lock(&self.state.conns).insert(id, clone);
                    }
                    let state = Arc::clone(&self.state);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, &state);
                        lock(&state.conns).remove(&id);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(ServeError::Bind(format!("accept failed: {e}"))),
            }
        }
        for (_, conn) in lock(&self.state.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Re-scan the catalog directory and swap the generation, or reject
/// and keep serving the old one. Returns `(generation, mappings,
/// carried)` on success.
fn do_reload(state: &ServerState) -> Result<(u64, usize, usize), String> {
    let _serialized = lock(&state.reload);
    let current = current_catalog(state);
    let (catalog, carried) = Catalog::reload(
        &state.options.catalog,
        state.options.dims,
        state.options.policy,
        &current.catalog,
    )
    .map_err(|e| e.to_string())?;
    // Same admission bar as bind: a reload that smuggles in an
    // unproven mapping is rejected wholesale, old generation serving.
    if state.options.require_terminating {
        check_catalog_terminating(&catalog)?;
    }
    // Deterministic chaos: a campaign firing here models the swap
    // itself failing (e.g. a torn re-scan). The old generation must
    // keep serving, exactly like a parse failure.
    if state.options.injector.should_inject("serve.reload.swap") {
        return Err("injected fault: serve.reload.swap".to_owned());
    }
    let generation = current.generation + 1;
    let mappings = catalog.entries.len();
    *state.catalog.write().unwrap_or_else(std::sync::PoisonError::into_inner) =
        Arc::new(CatalogState { generation, catalog });
    Ok((generation, mappings, carried))
}

/// [`do_reload`] plus the bookkeeping both entry points (the `RELOAD`
/// op and the SIGHUP poll) share: outcome counters, the generation
/// gauge, and a journal event.
fn reload_now(state: &ServerState) -> Reply {
    match do_reload(state) {
        Ok((generation, mappings, carried)) => {
            state.reloads_ok.fetch_add(1, Ordering::Relaxed);
            gauge!("serve.catalog.generation").set(generation);
            rde_obs::labeled_counter("serve.reload.outcome", &[("outcome", "ok")]).inc();
            rde_obs::event(
                "serve.reload",
                &[
                    ("outcome", "ok".into()),
                    ("generation", generation.into()),
                    ("mappings", mappings.into()),
                    ("carried", carried.into()),
                ],
            );
            Reply::Ok(vec![
                format!("generation {generation}"),
                format!("mappings {mappings}"),
                format!("carried {carried}"),
            ])
        }
        Err(reason) => {
            state.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            rde_obs::labeled_counter("serve.reload.outcome", &[("outcome", "rejected")]).inc();
            rde_obs::event(
                "serve.reload",
                &[("outcome", "rejected".into()), ("reason", reason.as_str().into())],
            );
            Reply::Err(format!("reload rejected (previous catalog still serving): {reason}"))
        }
    }
}

/// Token-bucket admission for `tenant`. `None` admits (a token was
/// taken, or the tenant is unlimited); `Some(ms)` denies with the
/// bucket's own time-to-one-token as the retry hint.
fn quota_denies(state: &ServerState, tenant: &str) -> Option<u64> {
    let quota = state.quota_for(tenant)?;
    let mut buckets = lock(&state.buckets);
    let now = Instant::now();
    let bucket =
        buckets.entry(tenant.to_owned()).or_insert(Bucket { tokens: quota.burst, last: now });
    let elapsed = now.duration_since(bucket.last).as_secs_f64();
    bucket.last = now;
    // Deterministic chaos: a campaign firing here models a refill that
    // never happened (clock trouble, lost accounting). Degradation is
    // graceful by construction — the bucket only ever under-admits,
    // and `0 ≤ tokens ≤ burst` still holds.
    if !state.options.injector.should_inject("serve.quota.refill") {
        bucket.tokens = (bucket.tokens + elapsed * quota.rps).min(quota.burst);
    }
    if bucket.tokens >= 1.0 {
        bucket.tokens -= 1.0;
        return None;
    }
    let ms = ((1.0 - bucket.tokens) / quota.rps * 1000.0).ceil();
    Some(ms.max(1.0) as u64)
}

/// One connection: read requests until EOF, answering each. A
/// recoverable framing violation costs a strike and earns a typed
/// `ERR`; an unrecoverable one (or too many strikes, or a read
/// timeout) closes the connection, counted by reason.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    if let Some(timeout) = state.options.idle_timeout {
        if stream.set_read_timeout(Some(timeout)).is_err() {
            return;
        }
    }
    let mut reader = BufReader::new(stream);
    let mut strikes: u32 = 0;
    loop {
        // Deterministic chaos: a campaign firing here models the read
        // path failing (peer reset, torn socket). The close must stay
        // typed and counted — never a panic or a silent drop.
        if state.options.injector.should_inject("serve.conn.read") {
            rde_obs::labeled_counter("serve.conn.closed", &[("reason", "fault")]).inc();
            let _ =
                Reply::Err("injected fault: serve.conn.read".to_owned()).write_to(&mut write_half);
            return;
        }
        let request = match read_request_limited(&mut reader, &state.options.limits) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.is_timeout() => {
                // An idle peer and a mid-request staller both lose the
                // connection, but the metric tells them apart.
                let reason = if e.partial() { "stalled" } else { "idle" };
                rde_obs::labeled_counter("serve.conn.closed", &[("reason", reason)]).inc();
                if e.partial() {
                    let _ = Reply::Err("protocol: read timed out mid-request".to_owned())
                        .write_to(&mut write_half);
                }
                return;
            }
            Err(e) if e.recoverable() => {
                strikes += 1;
                counter!("serve.conn.strikes").inc();
                let _ = Reply::Err(format!("protocol: {e}")).write_to(&mut write_half);
                if strikes >= state.options.max_strikes {
                    rde_obs::labeled_counter("serve.conn.closed", &[("reason", "strikes")]).inc();
                    return;
                }
                continue;
            }
            Err(e) => {
                rde_obs::labeled_counter("serve.conn.closed", &[("reason", "violation")]).inc();
                let _ = Reply::Err(format!("protocol: {e}")).write_to(&mut write_half);
                return;
            }
        };
        let received = Instant::now();
        let reply = admit(state, &request, received);
        if reply.write_to(&mut write_half).is_err() {
            return;
        }
    }
}

/// What a finished request reports into the access log beyond what
/// admission control already knows. Ops fill it in as they learn
/// things (today: the arrow cache's exact memo hit/miss).
#[derive(Default)]
struct AccessInfo {
    /// `Some(true)` when the op was answered from the arrow memo.
    cache: Option<bool>,
}

/// The access-log outcome word for a reply, mirroring the wire tag.
fn outcome_of(reply: &Reply) -> &'static str {
    match reply {
        Reply::Ok(_) => "ok",
        Reply::Err(_) => "err",
        Reply::Shed { .. } => "shed",
        Reply::Unknown(_) => "unknown",
    }
}

/// Admission control around [`handle_request`]: assign the request id,
/// pin the catalog generation, charge the tenant's token bucket, count
/// the request in-flight (globally and per `{op, mapping}`), shed past
/// the ceiling, time everything, and leave one `serve.access` journal
/// line behind. With [`ServeOptions::trace_slow_ms`] set the
/// request-thread span tree is buffered and replayed into the journal
/// only when the request was slow.
fn admit(state: &ServerState, request: &Request, received: Instant) -> Reply {
    // Ids start at 1: id 0 means "no request" throughout rde-obs.
    let id = state.next_request.fetch_add(1, Ordering::Relaxed) + 1;
    let _scope = rde_obs::request::enter(id);
    let op = request.op.as_str();
    let mapping = request.mapping.as_deref().unwrap_or("-");
    let tenant = request.get_header("tenant").unwrap_or("default");
    let op_mapping: [(&str, &str); 2] = [("op", op), ("mapping", mapping)];
    counter!("serve.requests").inc();
    rde_obs::labeled_counter("serve.requests", &op_mapping).inc();
    rde_obs::labeled_counter("serve.tenant.requests", &[("tenant", tenant)]).inc();
    // Queue wait: time between framing the request off the socket and
    // starting the work (scheduling + admission overhead).
    rde_obs::labeled_histogram("serve.queue.us", &op_mapping)
        .record(received.elapsed().as_micros() as u64);
    let started = Instant::now();
    let inflight = state.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    gauge!("serve.inflight").set(inflight as u64);
    rde_obs::labeled_gauge("serve.inflight", &[("mapping", mapping)]).add(1);
    // Capture only when a journal sink is attached: buffering a span
    // tree there is no sink to replay into would tax every request for
    // nothing. (`enabled()` reflects the sink here — this thread is
    // not yet capturing.)
    let sampling = state.options.trace_slow_ms.is_some() && rde_obs::journal::enabled();
    if sampling {
        rde_obs::journal::capture_begin();
    }
    let mut access = AccessInfo::default();
    // First line: the tenant's token bucket (cheap, no engine work).
    // Backstop: the global in-flight ceiling. Both shed with a retry
    // hint — the bucket's exact refill time, or a crude queue-depth
    // heuristic for overload.
    let mut shed_reason: Option<&'static str> = None;
    let reply = if let Some(retry_ms) = quota_denies(state, tenant) {
        shed_reason = Some("quota");
        Reply::shed_after(format!("tenant `{tenant}` over quota"), retry_ms)
    } else if inflight > state.options.max_inflight {
        shed_reason = Some("overloaded");
        let excess = (inflight - state.options.max_inflight) as u64;
        Reply::shed_after(
            format!("overloaded ({inflight} requests in flight)"),
            excess.saturating_mul(5).max(5),
        )
    } else {
        handle_request(state, request, id, &mut access)
    };
    let now = state.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
    gauge!("serve.inflight").set(now as u64);
    rde_obs::labeled_gauge("serve.inflight", &[("mapping", mapping)]).sub(1);
    let us = started.elapsed().as_micros() as u64;
    histogram!("serve.request.us").record(us);
    rde_obs::labeled_histogram("serve.request.us", &op_mapping).record(us);
    let outcome = outcome_of(&reply);
    rde_obs::labeled_counter(
        "serve.outcome",
        &[("op", op), ("mapping", mapping), ("outcome", outcome)],
    )
    .inc();
    if matches!(reply, Reply::Shed { .. }) {
        counter!("serve.shed").inc();
        // A shed that was not an admission decision is the request's
        // own deadline firing mid-flight.
        let reason = shed_reason.unwrap_or("deadline");
        rde_obs::labeled_counter("serve.shed", &[("tenant", tenant), ("reason", reason)]).inc();
    }
    if matches!(reply, Reply::Unknown(_)) {
        counter!("serve.unknown").inc();
    }
    if sampling {
        let records = rde_obs::journal::capture_take();
        let threshold_us = state.options.trace_slow_ms.unwrap_or(0).saturating_mul(1000);
        if us >= threshold_us {
            counter!("serve.slow_traces").inc();
            // Bracket the replayed tree so consumers can tell a
            // retroactive dump from live streaming. The event is
            // stamped with this request's id like everything else.
            rde_obs::event(
                "serve.slow_trace",
                &[("elapsed_us", us.into()), ("records", records.len().into())],
            );
            for record in records {
                rde_obs::journal::append(record);
            }
        }
    }
    // The access log: one structured line per request, emitted through
    // the journal so rotation, capacity bounds, and the JSONL format
    // come for free. (During capture this was diverted; by now capture
    // is off, so it always reaches the sink.)
    let mut fields: Vec<(&str, rde_obs::Field)> = vec![
        ("op", op.into()),
        ("mapping", mapping.into()),
        ("tenant", tenant.into()),
        ("backend", rde_obs::Field::Str(backend_name(state.options.backend))),
        ("outcome", outcome.into()),
        ("us", us.into()),
    ];
    if let Some(hit) = access.cache {
        fields.push(("cache", if hit { "hit" } else { "miss" }.into()));
    }
    rde_obs::event("serve.access", &fields);
    reply
}

/// Static name for the backend label (access log + metrics want
/// `&'static str`, `Display` allocates).
fn backend_name(backend: BackendKind) -> &'static str {
    match backend {
        BackendKind::Row => "row",
        BackendKind::Columnar => "columnar",
    }
}

/// Per-request execution context: fresh cancel token (armed with the
/// `deadline-ms` header, watching the process interrupt flag) — never
/// shared with any other request. The request id rides on the context
/// so engines re-install it on their worker threads.
fn request_config(request: &Request, id: u64) -> Result<HomConfig, String> {
    let token = match request.u64_header("deadline-ms")? {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    Ok(HomConfig {
        node_budget: request.u64_header("node-budget")?,
        time_budget: request.u64_header("time-budget-ms")?.map(Duration::from_millis),
        ctx: ExecContext::default().with_cancel(token.watching_interrupt()).with_request_id(id),
        ..HomConfig::default()
    })
}

fn handle_request(
    state: &ServerState,
    request: &Request,
    id: u64,
    access: &mut AccessInfo,
) -> Reply {
    let _span = rde_obs::span(
        "serve.request",
        &[
            ("op", request.op.as_str().into()),
            ("mapping", request.mapping.as_deref().unwrap_or("-").into()),
        ],
    );
    let config = match request_config(request, id) {
        Ok(config) => config,
        Err(e) => return Reply::Err(e),
    };
    // Pin this generation: even if a reload swaps mid-request, every
    // lookup below answers from the snapshot admission saw.
    let cat = current_catalog(state);
    let catalog = &cat.catalog;
    match request.op.as_str() {
        "PING" => Reply::Ok(vec!["pong".to_owned()]),
        "LIST" => op_list(catalog),
        "STATS" => op_stats(state, &cat),
        "METRICS" => op_metrics(state, &cat),
        "RELOAD" => reload_now(state),
        "CHASE" => with_mapping(catalog, request, |e| op_chase(state, e, request, &config)),
        "INVERTIBLE" => with_mapping(catalog, request, |e| op_invertible(e, &config)),
        "ARROW" => with_mapping(catalog, request, |e| op_arrow(state, e, request, &config, access)),
        "CERTAIN" => with_mapping(catalog, request, |e| op_certain(state, e, request, &config)),
        other => Reply::Err(format!("unknown op `{other}`")),
    }
}

fn with_mapping(
    catalog: &Catalog,
    request: &Request,
    f: impl FnOnce(&MappingEntry) -> Reply,
) -> Reply {
    let Some(name) = request.mapping.as_deref() else {
        return Reply::Err(format!("{} needs a mapping name", request.op));
    };
    match catalog.get(name) {
        Some(entry) => f(entry),
        None => Reply::Err(format!("no such mapping `{name}` (try LIST)")),
    }
}

fn warm_of(entry: &MappingEntry) -> Result<&WarmState, Reply> {
    entry.warm_state().map_err(|reason| {
        Reply::Err(format!("mapping `{}` has no warm cache: {reason}", entry.name))
    })
}

fn op_list(catalog: &Catalog) -> Reply {
    let lines = catalog
        .entries
        .values()
        .map(|e| {
            // `peek`, not force: listing a freshly reloaded catalog
            // must not trigger warm builds. `-` covers both "failed"
            // and "not built yet".
            let classes = match e.warm.peek() {
                Some(Ok(w)) => w.cache.stats().classes.to_string(),
                Some(Err(_)) | None => "-".to_owned(),
            };
            format!(
                "{} reverse={} classes={classes}",
                e.name,
                if e.reverse.is_some() { "yes" } else { "no" }
            )
        })
        .collect();
    Reply::Ok(lines)
}

/// Refresh the point-in-time gauges that only make sense at scrape
/// time: process uptime, the catalog generation, and per-mapping cache
/// occupancy. Called by both `STATS` and `METRICS` so the two views
/// agree. Only already-built warm caches report (peek, not force).
fn refresh_scrape_gauges(state: &ServerState, cat: &CatalogState) {
    gauge!("serve.uptime.ms").set(state.started.elapsed().as_millis() as u64);
    gauge!("serve.catalog.generation").set(cat.generation);
    for entry in cat.catalog.entries.values() {
        if let Some(Ok(warm)) = entry.warm.peek() {
            let s = warm.cache.stats();
            let labels = [("mapping", entry.name.as_str())];
            rde_obs::labeled_gauge("serve.cache.memo", &labels).set(s.memo_entries as u64);
            rde_obs::labeled_gauge("serve.cache.classes", &labels).set(s.classes as u64);
        }
    }
}

/// Aggregate the labeled `serve.request.us` histograms down to one
/// latency distribution per op (summed across mappings), for the
/// human-oriented `STATS` reply.
fn per_op_latency(snap: &rde_obs::Snapshot) -> BTreeMap<String, HistogramSnapshot> {
    let empty =
        HistogramSnapshot { buckets: [0; rde_obs::metrics::BUCKETS], count: 0, sum: 0, max: 0 };
    let mut per_op: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for (name, labels, h) in &snap.labeled_histograms {
        if name != "serve.request.us" {
            continue;
        }
        let Some(parsed) = rde_obs::metrics::parse_labels(labels) else { continue };
        let Some((_, op)) = parsed.iter().find(|(k, _)| k == "op") else { continue };
        let agg = per_op.entry(op.clone()).or_insert_with(|| empty.clone());
        agg.count += h.count;
        agg.sum += h.sum;
        agg.max = agg.max.max(h.max);
        for (slot, v) in agg.buckets.iter_mut().zip(&h.buckets) {
            *slot += v;
        }
    }
    per_op
}

fn op_stats(state: &ServerState, cat: &CatalogState) -> Reply {
    refresh_scrape_gauges(state, cat);
    let snap = rde_obs::snapshot();
    let mut lines = vec![format!("uptime-ms {}", state.started.elapsed().as_millis())];
    lines.push(format!(
        "reload generation={} ok={} rejected={}",
        cat.generation,
        state.reloads_ok.load(Ordering::Relaxed),
        state.reloads_rejected.load(Ordering::Relaxed)
    ));
    for (name, v) in &snap.counters {
        lines.push(format!("counter {name} {v}"));
    }
    for (name, v) in &snap.gauges {
        lines.push(format!("gauge {name} {v}"));
    }
    for (name, h) in &snap.histograms {
        lines.push(format!(
            "histogram {name} count={} p50<={} p99<={} max={}",
            h.count,
            h.quantile_bound(0.50),
            h.quantile_bound(0.99),
            h.max
        ));
    }
    // Per-op latency, aggregated across mappings from the labeled
    // request histograms.
    for (op, h) in per_op_latency(&snap) {
        lines.push(format!(
            "op {op} count={} p50<={} p99<={} max={}",
            h.count,
            h.quantile_bound(0.50),
            h.quantile_bound(0.99),
            h.max
        ));
    }
    // Per-mapping cache occupancy: the process-wide gauges above are
    // last-writer-wins across caches, so the authoritative per-tenant
    // numbers come straight from each cache.
    for entry in cat.catalog.entries.values() {
        if let Some(Ok(warm)) = entry.warm.peek() {
            let s = warm.cache.stats();
            lines.push(format!(
                "cache {} classes={} interned={} memo={} hits={} intern_hits={} \
                 memo_evictions={} class_evictions={}",
                entry.name,
                s.classes,
                s.interned,
                s.memo_entries,
                s.hits,
                s.intern_hits,
                s.memo_evictions,
                s.class_evictions
            ));
        }
    }
    Reply::Ok(lines)
}

/// `METRICS` — the full metrics registry (unlabeled and labeled) in
/// Prometheus text exposition format, one line per reply line. Scrape
/// gauges (uptime, generation, per-mapping cache occupancy) are
/// refreshed first so every exposition is point-in-time accurate.
fn op_metrics(state: &ServerState, cat: &CatalogState) -> Reply {
    refresh_scrape_gauges(state, cat);
    let text = rde_obs::expo::render(&rde_obs::snapshot());
    Reply::Ok(text.lines().map(str::to_owned).collect())
}

/// Map an engine error to the protocol's three failure forms. The
/// request's own cancellation (deadline) is a `SHED`; a cut budget is
/// an honest `UNKNOWN`; everything else is an `ERR`.
fn chase_reply(e: rde_chase::ChaseError) -> Reply {
    match e {
        rde_chase::ChaseError::Cancelled => Reply::shed("cancelled (request deadline)"),
        rde_chase::ChaseError::MatchBudgetExhausted { budget: Exhausted::Cancelled } => {
            Reply::shed("cancelled (request deadline)")
        }
        rde_chase::ChaseError::MatchBudgetExhausted { budget } => {
            Reply::Unknown(budget.to_string())
        }
        e => Reply::Err(e.to_string()),
    }
}

fn core_reply(e: CoreError) -> Reply {
    match e {
        CoreError::Cancelled => Reply::shed("cancelled (request deadline)"),
        CoreError::Chase(e) => chase_reply(e),
        e => Reply::Err(e.to_string()),
    }
}

/// `CHASE m` — chase the body instance through `m` and return the
/// target-restricted result. A fresh clone of the entry's post-parse
/// vocabulary replays exactly what a cold `rde chase` run does, so the
/// reply is bit-identical to the CLI's stdout.
fn op_chase(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
) -> Reply {
    let mut vocab = entry.base_vocab.clone();
    let instance = match parse_instance(&mut vocab, &request.body_blob()) {
        Ok(i) => i.into_backend(state.options.backend),
        Err(e) => return Reply::Err(format!("instance: {e}")),
    };
    let mut options =
        ChaseOptions { hom: config.clone(), ctx: config.ctx.clone(), ..ChaseOptions::default() };
    if let Some(text) = request.get_header("variant") {
        match text.parse::<rde_chase::ChaseVariant>() {
            Ok(variant) => options = options.with_variant(variant),
            Err(e) => return Reply::Err(format!("variant: {e}")),
        }
    }
    match rde_chase::chase(&instance, &entry.mapping.dependencies, &mut vocab, &options) {
        Ok(result) => {
            let rendered =
                display::instance(&vocab, &result.instance.restrict_to(&entry.mapping.target))
                    .to_string();
            Reply::Ok(rendered.lines().map(str::to_owned).collect())
        }
        Err(e) => chase_reply(e),
    }
}

/// `INVERTIBLE m` — the homomorphism-property check (Thm 3.13) against
/// the warm cache. Every request scans the same family under its own
/// budgets; the memo makes repeat checks cheap.
fn op_invertible(entry: &MappingEntry, config: &HomConfig) -> Reply {
    let warm = match warm_of(entry) {
        Ok(w) => w,
        Err(reply) => return reply,
    };
    let mut stats = HomStats::default();
    let vocab = lock(&warm.vocab);
    match check_homomorphism_property_cached(&warm.cache, &warm.family, config, &mut stats) {
        BoundedVerdict::HoldsWithinBound => Reply::Ok(vec!["HOLDS within bound".to_owned()]),
        BoundedVerdict::Counterexample { i1, i2 } => Reply::Ok(vec![
            "FAILS".to_owned(),
            display::instance_inline(&vocab, &i1),
            display::instance_inline(&vocab, &i2),
        ]),
        BoundedVerdict::Unknown { budget: Exhausted::Cancelled } => {
            Reply::shed("cancelled (request deadline)")
        }
        BoundedVerdict::Unknown { budget } => Reply::Unknown(budget.to_string()),
    }
}

/// `ARROW m` — decide `I₁ →_M I₂` for the two body instances
/// (separated by a `--` line). Both are interned into the shared
/// cache: the vocabulary lock makes constants from different requests
/// resolve identically, and the eviction policy keeps a hostile
/// request stream from growing the cache without bound.
fn op_arrow(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
    access: &mut AccessInfo,
) -> Reply {
    let warm = match warm_of(entry) {
        Ok(w) => w,
        Err(reply) => return reply,
    };
    let Some(split) = request.body.iter().position(|l| l.trim() == "--") else {
        return Reply::Err("ARROW body needs two instances separated by a `--` line".into());
    };
    let (first, rest) = request.body.split_at(split);
    let texts = [first.join("\n"), rest[1..].join("\n")];
    let mut handles = Vec::with_capacity(2);
    {
        let mut vocab = lock(&warm.vocab);
        for text in &texts {
            let instance = match parse_instance(&mut vocab, text) {
                Ok(i) => i.into_backend(state.options.backend),
                Err(e) => return Reply::Err(format!("instance: {e}")),
            };
            match warm.cache.intern(&entry.mapping, &instance, &mut vocab, config) {
                Ok(handle) => handles.push(handle),
                Err(e) => return core_reply(e),
            }
        }
    }
    let (verdict, hit) = warm.cache.arrow_classes_probed(&handles[0], &handles[1], config);
    access.cache = Some(hit);
    match verdict {
        Verdict::Holds => Reply::Ok(vec!["YES".to_owned()]),
        Verdict::Fails => Reply::Ok(vec!["NO".to_owned()]),
        Verdict::Unknown { budget: Exhausted::Cancelled } => {
            Reply::shed("cancelled (request deadline)")
        }
        Verdict::Unknown { budget } => Reply::Unknown(budget.to_string()),
    }
}

/// `CERTAIN m` — reverse certain answers (Thm 6.5) of the `query=`
/// header over the body instance, using the catalog's `NAME.rev`
/// reverse mapping.
fn op_certain(
    state: &ServerState,
    entry: &MappingEntry,
    request: &Request,
    config: &HomConfig,
) -> Reply {
    let Some(reverse) = &entry.reverse else {
        return Reply::Err(format!("mapping `{}` has no reverse (.rev) mapping", entry.name));
    };
    let Some(query_text) = request.get_header("query") else {
        return Reply::Err("CERTAIN needs a query= header".into());
    };
    let mut vocab = entry.base_vocab.clone();
    let instance = match parse_instance(&mut vocab, &request.body_blob()) {
        Ok(i) => i.into_backend(state.options.backend),
        Err(e) => return Reply::Err(format!("instance: {e}")),
    };
    let q = match ConjunctiveQuery::parse(&mut vocab, query_text) {
        Ok(q) => q,
        Err(e) => return Reply::Err(format!("query: {e}")),
    };
    let options =
        DisjunctiveChaseOptions { ctx: config.ctx.clone(), ..DisjunctiveChaseOptions::default() };
    match rde_query::reverse_certain_answers(
        &q,
        &instance,
        &entry.mapping,
        reverse,
        &mut vocab,
        &options,
    ) {
        Ok(answers) => Reply::Ok(
            answers
                .iter()
                .map(|tuple| {
                    let rendered: Vec<String> =
                        tuple.iter().map(|&v| vocab.value_name(v)).collect();
                    format!("({})", rendered.join(", "))
                })
                .collect(),
        ),
        Err(e) => chase_reply(e),
    }
}

/// What [`spawn`] hands back: the bound address, the shutdown token,
/// and the serving thread's join handle.
pub type SpawnedServer =
    (std::net::SocketAddr, CancelToken, std::thread::JoinHandle<Result<(), ServeError>>);

/// Spawn a bound server onto a background thread, returning the
/// address, the shutdown token, and the join handle. The canonical way
/// to embed the daemon in tests and benches.
pub fn spawn(options: ServeOptions) -> Result<SpawnedServer, ServeError> {
    let server = Server::bind(options)?;
    let addr = server
        .local_addr()
        .map_err(|e| ServeError::Bind(format!("cannot resolve bound address: {e}")))?;
    let shutdown = CancelToken::new();
    let token = shutdown.clone();
    let handle = std::thread::spawn(move || server.serve(&token));
    Ok((addr, shutdown, handle))
}
