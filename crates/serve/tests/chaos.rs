//! The serve chaos sweep: the daemon's three fault points —
//! `serve.reload.swap` (a torn generation swap), `serve.quota.refill`
//! (lost token-bucket accounting), `serve.conn.read` (a read path
//! failing under a connection) — swept across deterministic seeds
//! while a client drives requests and concurrent reloads.
//!
//! The invariant under every seed, mirroring the engine-level sweep in
//! `rde-faults`: every reply is typed (`OK`/`ERR`/`SHED`/`UNKNOWN` —
//! a SHED always carrying a retry hint when it was a quota decision),
//! the reload accounting the daemon reports equals the outcomes the
//! client observed, answers stay bit-identical whenever they arrive,
//! and the accept loop shuts down cleanly. Campaign decisions are a
//! pure function of `(seed, point, hit)`, so a failing seed replays.
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;

use rde_faults::{FaultConfig, FaultInjector};
use rde_serve::protocol::Reply;
use rde_serve::{spawn, Client, Request, ServeOptions, TenantQuota, UniverseDims};

const SEEDS: u64 = 24;

const SPLIT_V1: &str = "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n";
const SPLIT_V2: &str = "source: P/3\ntarget: Q/2, R/2\nP(u,v,w) -> Q(u,v) & R(v,w)\n";

fn catalog(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-chaos-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("split.map"), SPLIT_V1).unwrap();
    dir
}

/// Request with reconnect: a `serve.conn.read` fire closes the
/// connection (after a best-effort typed `ERR`), which a resilient
/// client sees as either that `ERR` or a socket error on the next
/// exchange. Both are in-contract; only running out of reconnects is
/// a failure.
fn call(client: &mut Option<Client>, addr: std::net::SocketAddr, request: &Request) -> Reply {
    for _ in 0..16 {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    continue;
                }
            },
        };
        match c.request(request) {
            Ok(reply) => return reply,
            Err(_) => *client = None,
        }
    }
    panic!("no reply after 16 reconnect attempts");
}

#[test]
fn fault_points_keep_errors_typed_and_accounting_exact() {
    let expected_chase = Reply::Ok(vec!["Q(a, b)".to_owned(), "R(b, c)".to_owned()]);
    // Sweep-wide coverage: each point must both fire and pass at least
    // once across the seeds, or the sweep exercises nothing. (A
    // per-seed floor would be wrong: the always-fire seeds never let a
    // request past the connection point, so the quota and swap points
    // go unconsulted there by design.)
    const POINTS: [&str; 3] = ["serve.reload.swap", "serve.quota.refill", "serve.conn.read"];
    let mut fired = [0u64; 3];
    let mut passed = [0u64; 3];

    for seed in 0..SEEDS {
        let dir = catalog(seed);
        // Rates from every-hit down to 1/8: persistent fires cover the
        // degraded paths, sparse ones the recovery paths.
        let always_fire = seed % 4 == 0;
        let injector =
            FaultInjector::new(FaultConfig::ratio(seed, 1, 1 << (seed % 4), Some("serve.")));
        let options = ServeOptions {
            catalog: dir.clone(),
            dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
            // A generous bucket: cleanly it never sheds the workload
            // below, but persistent refill faults drain it — both
            // admission outcomes appear across the sweep.
            tenant_quotas: vec![TenantQuota::parse("default=1000:8").unwrap()],
            injector: injector.clone(),
            ..ServeOptions::default()
        };
        let (addr, shutdown, handle) = spawn(options).unwrap();
        let mut client: Option<Client> = None;

        let mut reloads_ok = 0u64;
        let mut reloads_rejected = 0u64;
        let mut last_generation = 1u64;
        for round in 0..12u64 {
            let chase = Request::on("CHASE", "split").body_text("P(a, b, c)\n");
            match call(&mut client, addr, &chase) {
                reply @ Reply::Ok(_) => {
                    assert_eq!(
                        reply, expected_chase,
                        "seed {seed} round {round}: answers must stay bit-identical"
                    );
                }
                Reply::Shed { reason, retry_after_ms } => {
                    // The only shed this workload can earn is the
                    // quota bucket wedged by refill faults — and a
                    // quota shed always carries its refill hint.
                    assert!(reason.contains("over quota"), "seed {seed}: {reason}");
                    assert!(retry_after_ms.is_some(), "seed {seed}: quota sheds carry hints");
                }
                Reply::Err(m) => {
                    assert!(m.contains("injected fault"), "seed {seed}: untyped error: {m}");
                }
                Reply::Unknown(m) => panic!("seed {seed}: UNKNOWN from a full-budget chase: {m}"),
            }
            if round % 2 == 1 {
                std::fs::write(
                    dir.join("split.map"),
                    if (round / 2) % 2 == 0 { SPLIT_V2 } else { SPLIT_V1 },
                )
                .unwrap();
                match call(&mut client, addr, &Request::bare("RELOAD")) {
                    Reply::Ok(lines) => {
                        let generation: u64 =
                            lines[0].strip_prefix("generation ").unwrap().parse().unwrap();
                        assert!(generation > last_generation, "seed {seed}: {lines:?}");
                        last_generation = generation;
                        reloads_ok += 1;
                    }
                    Reply::Err(m) if m.contains("reload rejected") => reloads_rejected += 1,
                    Reply::Err(m) => {
                        // The connection-level fault pre-empting the
                        // request: it never reached the reload path.
                        assert!(m.contains("injected fault"), "seed {seed}: {m}");
                    }
                    Reply::Shed { reason, .. } => {
                        assert!(reason.contains("over quota"), "seed {seed}: {reason}")
                    }
                    other => panic!("seed {seed}: RELOAD answered {other:?}"),
                }
            }
        }

        // The daemon's own books must match what the client observed —
        // a swap either happened (the client saw `generation N`) or
        // was rejected with the old catalog intact; nothing in
        // between. Under an always-fire connection campaign STATS is
        // unreachable (every request is pre-empted), and there is
        // nothing to reconcile: no request ever got past the fault.
        if !always_fire {
            let mut attempts = 0;
            let stats = loop {
                match call(&mut client, addr, &Request::bare("STATS")) {
                    Reply::Ok(lines) => break lines,
                    Reply::Err(m) if m.contains("injected fault") => {}
                    Reply::Shed { .. } => {}
                    other => panic!("seed {seed}: STATS answered {other:?}"),
                }
                attempts += 1;
                assert!(attempts < 256, "seed {seed}: STATS never got through");
            };
            let reload_line = stats.iter().find(|l| l.starts_with("reload ")).unwrap();
            assert_eq!(
                reload_line,
                &format!(
                    "reload generation={last_generation} ok={reloads_ok} \
                     rejected={reloads_rejected}"
                ),
                "seed {seed}: accounting drifted from observed outcomes"
            );
        }

        shutdown.cancel();
        handle.join().unwrap().unwrap_or_else(|e| panic!("seed {seed}: accept loop died: {e}"));
        let report = injector.report();
        for (i, point) in POINTS.iter().enumerate() {
            if let Some(count) = report.point(point) {
                assert!(count.fired <= count.hits, "seed {seed}: {point}: fired > hits");
                fired[i] += count.fired;
                passed[i] += count.hits - count.fired;
            }
        }
        // Connections flowed under every seed, so the connection point
        // was always consulted.
        assert!(
            report.point("serve.conn.read").is_some_and(|c| c.hits > 0),
            "seed {seed}: serve.conn.read never consulted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    for (i, point) in POINTS.iter().enumerate() {
        assert!(fired[i] > 0, "{point} never fired across the sweep: {fired:?}");
        assert!(passed[i] > 0, "{point} never passed across the sweep: {passed:?}");
    }
}
