//! Concurrent request attribution: with eight clients hammering eight
//! distinct mappings at once, every span and event in the interleaved
//! journal must carry exactly its own request's id — the engine spans
//! produced on worker threads included — and each request's span tree
//! must reconstruct cleanly from the `req` field alone.
#![cfg(feature = "trace")]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use rde_obs::journal::{self, OwnedField, Record, Sink};
use rde_serve::protocol::Reply;
use rde_serve::{spawn, Client, Request, ServeOptions, UniverseDims};

const MAPPINGS: usize = 8;
const ROUNDS: usize = 6;

/// The journal is process-global; tests that attach a sink must not
/// overlap.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Mapping `m<i>` has exactly `i + 1` dependencies (`P(x) -> Qj(x)`),
/// so the engine's own `chase.run` span fingerprints which mapping a
/// request actually ran via its `deps` field.
fn catalog() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-attr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for i in 0..MAPPINGS {
        let mut text = String::from("source: P/1\ntarget: ");
        for j in 0..=i {
            let _ = write!(text, "{}Q{j}/1", if j == 0 { "" } else { ", " });
        }
        text.push('\n');
        for j in 0..=i {
            let _ = writeln!(text, "P(x) -> Q{j}(x)");
        }
        std::fs::write(dir.join(format!("m{i}.map")), text).unwrap();
    }
    dir
}

fn str_field<'r>(record: &'r Record, key: &str) -> Option<&'r str> {
    match record.field(key) {
        Some(OwnedField::Str(s)) => Some(s),
        _ => None,
    }
}

#[test]
fn concurrent_requests_attribute_every_record_to_their_own_id() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = catalog();
    journal::attach(Sink::Memory, 1 << 16).unwrap();
    let options = ServeOptions {
        catalog: dir.clone(),
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        ..ServeOptions::default()
    };
    let (addr, shutdown, handle) = spawn(options).unwrap();
    let workers: Vec<_> = (0..MAPPINGS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    let request =
                        Request::on("CHASE", &format!("m{i}")).body_text(&format!("P(a{round})\n"));
                    let Reply::Ok(lines) = client.request(&request).unwrap() else {
                        panic!("CHASE m{i} round {round} failed")
                    };
                    assert_eq!(lines.len(), i + 1, "m{i} exports one fact per dependency");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    let summary = journal::detach().expect("journal attached");
    std::fs::remove_dir_all(&dir).ok();

    // Group the interleaved stream by request id. Id 0 is pre-request
    // work (catalog warm-up) — everything else must belong to exactly
    // one of the 48 requests.
    let mut groups: BTreeMap<u64, Vec<&Record>> = BTreeMap::new();
    for record in &summary.records {
        groups.entry(record.req()).or_default().push(record);
    }
    groups.remove(&0);
    assert_eq!(groups.len(), MAPPINGS * ROUNDS, "one journal group per request");

    let mut per_mapping = [0usize; MAPPINGS];
    for (req, records) in &groups {
        // The span tree reconstructs from this group alone: balanced,
        // with a single serve.request root.
        let opens: Vec<&&Record> = records.iter().filter(|r| r.kind == "span_open").collect();
        let closes = records.iter().filter(|r| r.kind == "span_close").count();
        assert_eq!(opens.len(), closes, "req {req}: span opens match closes");
        let roots: Vec<_> = opens.iter().filter(|r| r.name == "serve.request").collect();
        assert_eq!(roots.len(), 1, "req {req}: exactly one serve.request span");
        let mapping = str_field(roots[0], "mapping").expect("mapping field on the request span");
        let idx: usize = mapping.strip_prefix('m').unwrap().parse().unwrap();
        per_mapping[idx] += 1;

        // Zero cross-request contamination: the chase that ran inside
        // this group fingerprints the mapping this request named.
        let chase = opens
            .iter()
            .find(|r| r.name == "chase.run")
            .unwrap_or_else(|| panic!("req {req}: no chase.run span in group"));
        assert_eq!(
            chase.field("deps").and_then(OwnedField::as_u64),
            Some(idx as u64 + 1),
            "req {req}: chase.run deps fingerprint matches mapping {mapping}"
        );

        // And the access-log line landed in the same group.
        let access: Vec<_> = records.iter().filter(|r| r.name == "serve.access").collect();
        assert_eq!(access.len(), 1, "req {req}: exactly one access event");
        assert_eq!(str_field(access[0], "mapping"), Some(mapping), "req {req}");
        assert_eq!(str_field(access[0], "outcome"), Some("ok"), "req {req}");
        let us = access[0].field("us").and_then(OwnedField::as_u64);
        assert!(us.is_some(), "req {req}: access event carries elapsed µs");
    }
    assert_eq!(per_mapping, [ROUNDS; MAPPINGS], "every mapping served all its rounds");
}

#[test]
fn slow_trace_sampling_replays_only_slow_span_trees() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = std::env::temp_dir().join(format!("rde-serve-slow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("one.map"), "source: P/1\ntarget: Q/1\nP(x) -> Q(x)\n").unwrap();

    // Threshold 0: every request is "slow", so every span tree is
    // replayed and bracketed by a serve.slow_trace marker.
    let run = |threshold: Option<u64>| -> Vec<Record> {
        journal::attach(Sink::Memory, 1 << 16).unwrap();
        let options = ServeOptions {
            catalog: dir.clone(),
            dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
            trace_slow_ms: threshold,
            ..ServeOptions::default()
        };
        let (addr, shutdown, handle) = spawn(options).unwrap();
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request(&Request::on("CHASE", "one").body_text("P(a)\n")).unwrap();
        assert!(matches!(reply, Reply::Ok(_)), "{reply:?}");
        shutdown.cancel();
        handle.join().unwrap().unwrap();
        journal::detach().expect("journal attached").records
    };

    let every = run(Some(0));
    let marker: Vec<_> = every.iter().filter(|r| r.name == "serve.slow_trace").collect();
    assert_eq!(marker.len(), 1, "threshold 0 keeps the request's tree");
    assert!(marker[0].req() != 0, "marker is stamped with the request id");
    let replayed = every.iter().filter(|r| r.req() == marker[0].req());
    assert!(
        replayed.clone().any(|r| r.name == "serve.request" && r.kind == "span_open"),
        "the replayed tree contains the request's root span"
    );
    assert!(replayed.clone().any(|r| r.name == "serve.access"), "access line still present");

    // A threshold no fast request can reach: the tree is buffered and
    // discarded — no spans for the request, but the access line (and
    // the metrics) survive.
    let none = run(Some(600_000));
    assert!(none.iter().all(|r| r.name != "serve.slow_trace"), "nothing slow enough");
    assert!(
        none.iter().all(|r| !(r.name == "serve.request" && r.kind == "span_open")),
        "fast request's span tree was sampled away"
    );
    assert!(none.iter().any(|r| r.name == "serve.access"), "access line survives sampling");
    std::fs::remove_dir_all(&dir).ok();
}
