//! End-to-end daemon tests: a real listener, real sockets, concurrent
//! clients, and answers cross-checked against direct engine runs.

use std::path::PathBuf;
use std::time::Duration;

use rde_serve::protocol::Reply;
use rde_serve::{spawn, Client, Request, ServeOptions, UniverseDims};

fn catalog(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("split.map"),
        "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("merge.map"),
        "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n",
    )
    .unwrap();
    std::fs::write(dir.join("merge.rev"), "source: T/1\ntarget: A/1, B/1\nT(x) -> A(x) | B(x)\n")
        .unwrap();
    dir
}

fn options(dir: &std::path::Path) -> ServeOptions {
    ServeOptions {
        catalog: dir.to_path_buf(),
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        ..ServeOptions::default()
    }
}

#[test]
fn serves_every_op_and_shuts_down_cleanly() {
    let dir = catalog("ops");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();

    assert_eq!(client.request(&Request::bare("PING")).unwrap(), Reply::Ok(vec!["pong".into()]));

    let Reply::Ok(listing) = client.request(&Request::bare("LIST")).unwrap() else {
        panic!("LIST failed")
    };
    assert_eq!(listing.len(), 2);
    assert!(listing[0].starts_with("merge reverse=yes"), "sorted, reverse flagged: {listing:?}");
    assert!(listing[1].starts_with("split reverse=no"), "{listing:?}");

    // CHASE: same answer as running the engine directly.
    let chase = client.request(&Request::on("CHASE", "split").body_text("P(a, b, c)\n")).unwrap();
    let Reply::Ok(lines) = chase else { panic!("CHASE failed: {chase:?}") };
    assert_eq!(lines, vec!["Q(a, b)", "R(b, c)"], "target-restricted chase result");

    // INVERTIBLE: `merge` loses which of A/B a tuple came from.
    let inv = client.request(&Request::on("INVERTIBLE", "merge")).unwrap();
    let Reply::Ok(lines) = inv else { panic!("INVERTIBLE failed: {inv:?}") };
    assert_eq!(lines[0], "FAILS");

    // ARROW: P-copying means →_M tracks plain instance direction here.
    let arrow =
        client.request(&Request::on("ARROW", "merge").body_text("A(a)\n--\nA(a)\nB(b)\n")).unwrap();
    assert_eq!(arrow, Reply::Ok(vec!["YES".into()]), "I1 ⊆ I2 chases into I2's solution");
    let arrow_back =
        client.request(&Request::on("ARROW", "merge").body_text("A(a)\nB(b)\n--\nA(a)\n")).unwrap();
    assert_eq!(arrow_back, Reply::Ok(vec!["NO".into()]));

    // CERTAIN: the reverse of `merge` can only certify nothing (the
    // disjunction hedges between A and B).
    let certain = client
        .request(
            &Request::on("CERTAIN", "merge").header("query", "q(x) :- A(x)").body_text("A(a)\n"),
        )
        .unwrap();
    assert_eq!(certain, Reply::Ok(Vec::new()));

    // STATS reports the serve metrics this very connection produced.
    let Reply::Ok(stats) = client.request(&Request::bare("STATS")).unwrap() else {
        panic!("STATS failed")
    };
    assert!(stats.iter().any(|l| l.starts_with("counter serve.requests ")), "{stats:?}");
    assert!(stats.iter().any(|l| l.starts_with("histogram serve.request.us ")), "{stats:?}");
    assert!(stats.iter().any(|l| l.starts_with("uptime-ms ")), "{stats:?}");
    assert!(
        stats.iter().any(|l| l.starts_with("op CHASE count=") && l.contains("p99<=")),
        "per-op latency aggregated from the labeled histograms: {stats:?}"
    );

    // METRICS: the full labeled registry in valid Prometheus text
    // exposition, including the per-op × per-mapping request series.
    let Reply::Ok(metrics) = client.request(&Request::bare("METRICS")).unwrap() else {
        panic!("METRICS failed")
    };
    rde_obs::expo::validate(&metrics.join("\n")).expect("exposition validates line-by-line");
    assert!(
        metrics.iter().any(|l| l.starts_with("serve_requests{")
            && l.contains("op=\"CHASE\"")
            && l.contains("mapping=\"split\"")),
        "{metrics:?}"
    );
    assert!(metrics.iter().any(|l| l.starts_with("serve_uptime_ms ")), "{metrics:?}");
    assert!(
        metrics.iter().any(|l| l.starts_with("serve_cache_memo{mapping=\"merge\"}")),
        "per-mapping cache occupancy gauges refresh at scrape time: {metrics:?}"
    );

    // Bad requests get ERR, and the connection survives them.
    let bad = client.request(&Request::bare("FROBNICATE")).unwrap();
    assert!(matches!(bad, Reply::Err(_)));
    let missing = client.request(&Request::on("CHASE", "nope").body_text("P(a, b, c)\n")).unwrap();
    assert!(matches!(missing, Reply::Err(ref m) if m.contains("no such mapping")));
    assert_eq!(client.request(&Request::bare("PING")).unwrap(), Reply::Ok(vec!["pong".into()]));

    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let dir = catalog("conc");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let workers: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut answers = Vec::new();
                for _ in 0..8 {
                    let Reply::Ok(lines) = client
                        .request(
                            &Request::on("CHASE", "split")
                                .body_text(&format!("P(a{i}, b, c)\nP(a{i}, b, d)\n")),
                        )
                        .unwrap()
                    else {
                        panic!("CHASE failed")
                    };
                    answers.push(lines);
                    let inv = client.request(&Request::on("INVERTIBLE", "merge")).unwrap();
                    let Reply::Ok(lines) = inv else { panic!("INVERTIBLE failed: {inv:?}") };
                    assert_eq!(lines[0], "FAILS");
                }
                answers
            })
        })
        .collect();
    for (i, worker) in workers.into_iter().enumerate() {
        let answers = worker.join().unwrap();
        let expected = vec![format!("Q(a{i}, b)"), "R(b, c)".to_owned(), "R(b, d)".to_owned()];
        for lines in answers {
            assert_eq!(lines, expected, "every repetition of client {i} answers identically");
        }
    }
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_instead_of_dropping_connections() {
    let dir = catalog("shed");
    let opts = ServeOptions { max_inflight: 0, ..options(&dir) };
    let (addr, shutdown, handle) = spawn(opts).unwrap();
    let mut client = Client::connect(addr).unwrap();
    // With a zero ceiling every request is over the limit: the reply
    // is a SHED, and the connection stays usable for the next try.
    for _ in 0..3 {
        let reply = client.request(&Request::bare("PING")).unwrap();
        assert!(
            matches!(reply, Reply::Shed { ref reason, retry_after_ms: Some(_) }
                if reason.contains("overloaded")),
            "overload sheds carry a retry hint: {reply:?}"
        );
    }
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn request_budgets_surface_as_unknown_not_errors() {
    let dir = catalog("budget");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();
    // A starved node budget cannot settle the family scan: honest
    // UNKNOWN, not an error, and not a dropped connection.
    let reply =
        client.request(&Request::on("INVERTIBLE", "merge").header("node-budget", 0)).unwrap();
    assert!(matches!(reply, Reply::Unknown(_)), "{reply:?}");
    // An already-elapsed deadline sheds rather than answering.
    let reply =
        client.request(&Request::on("INVERTIBLE", "merge").header("deadline-ms", 0)).unwrap();
    assert!(matches!(reply, Reply::Shed { .. }), "{reply:?}");
    // The full-budget answer still comes back on the same connection.
    let Reply::Ok(lines) = client.request(&Request::on("INVERTIBLE", "merge")).unwrap() else {
        panic!("INVERTIBLE failed after budgeted attempts")
    };
    assert_eq!(lines[0], "FAILS");
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn arrow_interning_is_bounded_under_churn() {
    let dir = catalog("churn");
    let opts =
        ServeOptions { policy: rde_core::arrow::CachePolicy::bounded(64, 4), ..options(&dir) };
    let (addr, shutdown, handle) = spawn(opts).unwrap();
    let mut client = Client::connect(addr).unwrap();
    // Distinct constants per round force fresh hom-classes; the
    // interned store must stay within its bound of 4 regardless.
    for i in 0..32 {
        let body = format!("A(k{i})\n--\nA(k{i})\nB(m{i})\n");
        let reply = client.request(&Request::on("ARROW", "merge").body_text(&body)).unwrap();
        assert_eq!(reply, Reply::Ok(vec!["YES".into()]), "round {i}");
    }
    let Reply::Ok(stats) = client.request(&Request::bare("STATS")).unwrap() else {
        panic!("STATS failed")
    };
    let cache_line = stats
        .iter()
        .find(|l| l.starts_with("cache merge "))
        .expect("per-mapping cache stats published");
    let field = |name: &str| -> u64 {
        cache_line
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("no {name}= in {cache_line}"))
            .parse()
            .unwrap()
    };
    assert!(
        field("interned") <= 4,
        "interned classes stay within the configured bound: {cache_line}"
    );
    assert!(field("memo") <= 64, "memo stays within its bound: {cache_line}");
    assert!(field("class_evictions") > 0, "churn past the bound must evict: {cache_line}");
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn client_deadline_is_distinct_from_server_replies() {
    // A listener that accepts and never replies: the only way the
    // call can end is the client's own deadline, which must surface
    // as `ClientError::Deadline` — not an Io error, and not any Reply.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_millis(400));
        drop(stream);
    });
    let mut client = Client::connect(addr).unwrap();
    client.set_deadline(Some(Duration::from_millis(50))).unwrap();
    match client.request(&Request::bare("PING")) {
        Err(rde_serve::ClientError::Deadline) => {}
        other => panic!("expected a client deadline, got {other:?}"),
    }
    drop(client);
    silent.join().unwrap();
}
