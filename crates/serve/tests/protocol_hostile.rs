//! Hostile-input corpus for the serve wire protocol.
//!
//! The unit tests in `protocol.rs` check that each limit fires; this
//! suite checks the stronger property the parser-hardening corpora in
//! `rde-model`/`rde-deps` established for the file formats: every
//! hostile frame runs under `catch_unwind` and must produce a typed
//! [`FrameError`] (or a clean request) — never a panic, never a silent
//! partial parse. It leans on the places a hand-rolled framer slips:
//! truncation at every structural boundary, oversized lines and header
//! floods, NUL and multi-byte UTF-8 damage, missing terminators, and
//! header smuggling via duplicate keys.

use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rde_serve::protocol::{read_request_limited, FrameError, ProtocolLimits};

/// Parse one frame from raw bytes under the default limits.
fn parse(bytes: &[u8]) -> Result<Option<rde_serve::Request>, FrameError> {
    read_request_limited(&mut Cursor::new(bytes.to_vec()), &ProtocolLimits::default())
}

/// Every corpus entry must return *something typed* without panicking.
fn assert_no_panic(label: &str, bytes: &[u8]) -> Result<Option<rde_serve::Request>, FrameError> {
    catch_unwind(AssertUnwindSafe(|| parse(bytes)))
        .unwrap_or_else(|_| panic!("framer panicked on {label}"))
}

/// Frames cut off mid-structure: EOF before the terminator means the
/// stream position is untrustworthy, so every one of these must be an
/// *unrecoverable* error — not a request, and never a panic.
#[test]
fn truncated_frames_are_typed_and_unrecoverable() {
    let truncated: &[(&str, &[u8])] = &[
        ("op line only", b"CHASE split\n"),
        ("mid header", b"CHASE split\ntenant=ali"),
        ("headers, no blank line", b"CHASE split\ndeadline-ms=5\n"),
        ("blank line, no body", b"CHASE split\n\n"),
        ("body, no terminator", b"CHASE split\n\nP(a, b, c)\n"),
        ("terminator missing newline", b"CHASE split\n\nP(a)\n."),
        ("mid multi-byte char", &"PING \u{00e9}".as_bytes()[..6]),
    ];
    for (label, bytes) in truncated {
        match assert_no_panic(label, bytes) {
            Err(e) => assert!(!e.recoverable(), "{label}: must be unrecoverable, got {e}"),
            Ok(req) => panic!("{label}: accepted as {req:?}"),
        }
    }
}

/// Frames whose `.` terminator is intact but whose content violates a
/// limit: the framer must drain to the terminator and report a
/// *recoverable* violation, leaving the stream usable for the next
/// frame (that is what the server's strike counter keys off).
#[test]
fn intact_violations_are_recoverable_and_leave_the_stream_aligned() {
    let limits = ProtocolLimits::default();
    let oversized_header = format!("CHASE split\nk={}\n\n.\n", "v".repeat(limits.max_line_bytes));
    let header_flood = format!(
        "CHASE split\n{}\n.\n",
        (0..limits.max_headers + 1).map(|i| format!("h{i}=x")).collect::<Vec<_>>().join("\n")
    );
    // Just past the body cap but inside the drain budget: violation,
    // then recovery. (A body big enough to blow the drain budget too
    // is the unrecoverable case below.)
    let oversized_body =
        format!("CHASE split\n\n{}.\n", "P(a)\n".repeat(limits.max_body_bytes / 5 + 200));
    let corpus: &[(&str, Vec<u8>)] = &[
        ("oversized header line", oversized_header.into_bytes()),
        ("header flood", header_flood.into_bytes()),
        ("oversized body", oversized_body.into_bytes()),
        ("duplicate header smuggling", b"CHASE split\ntenant=a\ntenant=b\n\n.\n".to_vec()),
        ("malformed header", b"CHASE split\nno-equals-sign\n\n.\n".to_vec()),
        ("trailing words on op line", b"CHASE split extra words\n\n.\n".to_vec()),
        ("NUL in op line", b"CHA\0SE split\n\n.\n".to_vec()),
        ("NUL in header", b"CHASE split\nk=v\0v\n\n.\n".to_vec()),
        ("invalid UTF-8 in op", b"CHASE spl\xffit\n\n.\n".to_vec()),
        ("invalid UTF-8 in body", b"CHASE split\n\nP(\xc3\x28)\n.\n".to_vec()),
        ("lone continuation byte", b"\x80PING\n\n.\n".to_vec()),
    ];
    for (label, bytes) in corpus {
        match assert_no_panic(label, bytes) {
            Err(e) => assert!(e.recoverable(), "{label}: should drain + recover, got {e}"),
            Ok(req) => panic!("{label}: accepted as {req:?}"),
        }
    }
    // Recoverable really means recoverable: after draining a hostile
    // frame the *next* frame on the same stream parses normally.
    for (label, bytes) in corpus {
        let mut stream = bytes.clone();
        stream.extend_from_slice(b"PING\n\n.\n");
        let mut cursor = Cursor::new(stream);
        let err = read_request_limited(&mut cursor, &limits).expect_err("first frame is hostile");
        assert!(err.recoverable(), "{label}");
        let next = read_request_limited(&mut cursor, &limits)
            .unwrap_or_else(|e| panic!("{label}: stream misaligned after drain: {e}"))
            .unwrap_or_else(|| panic!("{label}: next frame lost"));
        assert_eq!(next.op, "PING", "{label}");
    }
}

/// A violating frame whose drain window never finds the terminator is
/// unrecoverable — the drain budget caps how much garbage a client can
/// make the server read before the connection is written off.
#[test]
fn drain_budget_exhaustion_is_unrecoverable() {
    let limits = ProtocolLimits::default();
    let mut frame = b"CHASE split\nno-equals-sign\n\n".to_vec();
    frame.extend(std::iter::repeat_n(b'x', limits.drain_budget() + 1024));
    // No terminator anywhere within the budget.
    let err = assert_no_panic("drain exhaustion", &frame).expect_err("must error");
    assert!(!err.recoverable(), "drain ran out: {err}");
}

/// Byte-level fuzz sweep: every prefix of a valid frame, and the frame
/// with every single byte overwritten by each of a few hostile bytes.
/// Deterministic (no RNG) so failures reproduce; the property is only
/// "typed result, no panic".
#[test]
fn mutated_frames_never_panic() {
    let valid = b"CHASE split\ntenant=alice\ndeadline-ms=50\n\nP(a, b, c)\n.\n";
    for cut in 0..valid.len() {
        assert_no_panic(&format!("prefix[..{cut}]"), &valid[..cut]).ok();
    }
    for i in 0..valid.len() {
        for byte in [0x00, 0x0a, 0x2e, 0x3d, 0x80, 0xff] {
            let mut frame = valid.to_vec();
            frame[i] = byte;
            assert_no_panic(&format!("byte {i} -> {byte:#04x}"), &frame).ok();
        }
    }
}
