//! Termination-gated admission and per-request chase variants, e2e:
//! `require_terminating` must reject unproven catalog entries at bind
//! time with a typed error, reject them at reload time while keeping
//! the old generation serving, and keep admitting weakly-acyclic
//! catalogs — and a `variant` request header must select the chase
//! variant (or fail typed on garbage) without changing any answer.

use std::path::{Path, PathBuf};

use rde_serve::protocol::Reply;
use rde_serve::{spawn, Client, Request, ServeError, ServeOptions, UniverseDims};

/// Weakly acyclic: one s-t tgd with an existential, rank 1.
const SPLIT: &str = "source: P/2\ntarget: Q/2, R/2\nP(x,y) -> exists z . Q(x,z) & R(z,y)\n";
/// Not weakly acyclic (and not stratified): `E` lives in both schemas
/// so its tgd feeds a fresh null back into its own premise, and the
/// chase on a single edge never terminates.
const LOOPY: &str = "source: S/1, E/2\ntarget: E/2\nS(x) -> E(x,x)\nE(x,y) -> exists z . E(y,z)\n";

fn catalog(tag: &str, entries: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-term-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, text) in entries {
        std::fs::write(dir.join(format!("{name}.map")), text).unwrap();
    }
    dir
}

fn options(dir: &Path) -> ServeOptions {
    ServeOptions {
        catalog: dir.to_path_buf(),
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        require_terminating: true,
        ..ServeOptions::default()
    }
}

/// The acceptance pair in one test: a weakly-acyclic catalog serves
/// under `--require-terminating`, and every chase variant a client can
/// name returns the same answer over the wire.
#[test]
fn weakly_acyclic_catalog_serves_under_every_variant() {
    let dir = catalog("ok", &[("split", SPLIT)]);
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();

    let expected = Reply::Ok(vec!["Q(a, ?n0)".into(), "R(?n0, b)".into()]);
    // No header: the build default variant.
    let bare = client.request(&Request::on("CHASE", "split").body_text("P(a, b)\n")).unwrap();
    assert_eq!(bare, expected, "default variant");
    for variant in ["naive", "semi-naive", "restricted"] {
        let reply = client
            .request(
                &Request::on("CHASE", "split").header("variant", variant).body_text("P(a, b)\n"),
            )
            .unwrap();
        assert_eq!(reply, expected, "variant {variant} must not change the answer");
    }

    // Garbage in the header is a typed protocol-level error, not a hang
    // or a silent fallback to the default.
    let reply = client
        .request(
            &Request::on("CHASE", "split").header("variant", "oblivious").body_text("P(a, b)\n"),
        )
        .unwrap();
    assert!(
        matches!(reply, Reply::Err(ref m) if m.starts_with("variant:") && m.contains("oblivious")),
        "bad variant must fail typed: {reply:?}"
    );

    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A catalog with an unproven entry must not come up at all when
/// termination is required: bind fails with the typed catalog error
/// naming the offending mapping.
#[test]
fn unproven_entry_is_rejected_at_bind() {
    let dir = catalog("bind", &[("split", SPLIT), ("loopy", LOOPY)]);
    match spawn(options(&dir)) {
        Err(ServeError::Catalog(m)) => {
            assert!(m.contains("`loopy`"), "error names the entry: {m}");
            assert!(m.contains("termination unproven"), "{m}");
        }
        Err(other) => panic!("expected ServeError::Catalog, got {other:?}"),
        Ok(_) => panic!("unproven catalog must not bind"),
    }
    // Without the flag the same catalog binds fine (budgets still
    // protect each request): the gate is opt-in.
    let opts = ServeOptions { require_terminating: false, ..options(&dir) };
    let (_, shutdown, handle) = spawn(opts).unwrap();
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Swapping an unproven mapping in via RELOAD must be rejected while
/// the previous generation keeps answering, and fixing the file makes
/// the next reload go through.
#[test]
fn unproven_reload_is_rejected_and_old_generation_keeps_serving() {
    let dir = catalog("reload", &[("split", SPLIT)]);
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();

    std::fs::write(dir.join("split.map"), LOOPY).unwrap();
    let reply = client.request(&Request::bare("RELOAD")).unwrap();
    assert!(
        matches!(reply, Reply::Err(ref m)
            if m.contains("reload rejected") && m.contains("termination unproven")),
        "unproven reload must not swap: {reply:?}"
    );

    // The old weakly-acyclic generation still answers bit-identically.
    let chase = client.request(&Request::on("CHASE", "split").body_text("P(a, b)\n")).unwrap();
    assert_eq!(chase, Reply::Ok(vec!["Q(a, ?n0)".into(), "R(?n0, b)".into()]));
    let Reply::Ok(stats) = client.request(&Request::bare("STATS")).unwrap() else {
        panic!("STATS failed")
    };
    assert!(stats.iter().any(|l| l == "reload generation=1 ok=0 rejected=1"), "{stats:?}");

    std::fs::write(dir.join("split.map"), SPLIT).unwrap();
    let Reply::Ok(lines) = client.request(&Request::bare("RELOAD")).unwrap() else {
        panic!("fixed reload must swap")
    };
    assert_eq!(lines[0], "generation 2", "{lines:?}");

    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
