//! Hot-reload and admission-control e2e: generation swaps under real
//! concurrent load, rejected swaps that keep the old catalog serving,
//! warm-cache carry-over, and per-tenant token-bucket sheds — all over
//! real sockets against an in-process daemon.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rde_serve::protocol::Reply;
use rde_serve::{spawn, Client, Request, ServeOptions, TenantQuota, UniverseDims};

/// The two textually different but probe-equivalent versions of the
/// `split` mapping: renaming the tgd's variables changes the content
/// fingerprint (forcing a real rebuild on reload) without changing any
/// answer — which is exactly what the bit-identity assertion needs.
const SPLIT_V1: &str = "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n";
const SPLIT_V2: &str = "source: P/3\ntarget: Q/2, R/2\nP(u,v,w) -> Q(u,v) & R(v,w)\n";

fn catalog(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-reload-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("split.map"), SPLIT_V1).unwrap();
    std::fs::write(
        dir.join("merge.map"),
        "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n",
    )
    .unwrap();
    std::fs::write(dir.join("merge.rev"), "source: T/1\ntarget: A/1, B/1\nT(x) -> A(x) | B(x)\n")
        .unwrap();
    dir
}

fn options(dir: &Path) -> ServeOptions {
    ServeOptions {
        catalog: dir.to_path_buf(),
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        ..ServeOptions::default()
    }
}

/// The tentpole acceptance test: 64 clients hammer `CHASE split` while
/// the catalog is reloaded out from under them (alternating between
/// the two equivalent texts, so every other swap really rebuilds the
/// mapping). Zero dropped requests, zero non-bit-identical answers.
#[test]
fn generation_swaps_under_load_keep_answers_bit_identical() {
    let dir = catalog("load");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..64)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let expected =
                    vec![format!("Q(a{i}, b)"), "R(b, c)".to_owned(), "R(b, d)".to_owned()];
                let mut served = 0u32;
                while !stop.load(Ordering::Relaxed) || served < 8 {
                    let reply = client
                        .request(
                            &Request::on("CHASE", "split")
                                .body_text(&format!("P(a{i}, b, c)\nP(a{i}, b, d)\n")),
                        )
                        .unwrap();
                    let Reply::Ok(lines) = reply else {
                        panic!("client {i}: dropped/degraded mid-reload: {reply:?}")
                    };
                    assert_eq!(lines, expected, "client {i}: answer changed across a swap");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Reload repeatedly while the fleet runs; every swap must succeed
    // and the generation must be strictly increasing.
    let mut admin = Client::connect(addr).unwrap();
    let mut last_generation = 1u64;
    for round in 0..6 {
        std::fs::write(dir.join("split.map"), if round % 2 == 0 { SPLIT_V2 } else { SPLIT_V1 })
            .unwrap();
        let reply = admin.request(&Request::bare("RELOAD")).unwrap();
        let Reply::Ok(lines) = reply else { panic!("round {round}: reload failed: {reply:?}") };
        let generation: u64 = lines[0].strip_prefix("generation ").unwrap().parse().unwrap();
        assert!(generation > last_generation, "monotone generations: {lines:?}");
        last_generation = generation;
        assert_eq!(lines[1], "mappings 2", "{lines:?}");
        // `split` changed, `merge` did not: exactly one entry carries
        // its warm cache over each round.
        assert_eq!(lines[2], "carried 1", "{lines:?}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    let mut total = 0u32;
    for worker in workers {
        total += worker.join().unwrap();
    }
    assert!(total >= 64 * 8, "every client kept being served: {total}");

    // STATS reports the reload history the swaps above produced.
    let Reply::Ok(stats) = admin.request(&Request::bare("STATS")).unwrap() else {
        panic!("STATS failed")
    };
    let reload_line = stats.iter().find(|l| l.starts_with("reload ")).unwrap();
    assert_eq!(
        reload_line,
        &format!("reload generation={last_generation} ok=6 rejected=0"),
        "{stats:?}"
    );
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted catalog entry must reject the whole swap — the previous
/// generation keeps serving, and a later fixed reload goes through.
#[test]
fn corrupted_catalog_rejects_swap_and_keeps_serving() {
    let dir = catalog("corrupt");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();

    std::fs::write(dir.join("split.map"), "source: P/3\nthis is not a mapping\n").unwrap();
    let reply = client.request(&Request::bare("RELOAD")).unwrap();
    assert!(
        matches!(reply, Reply::Err(ref m) if m.contains("reload rejected")),
        "broken catalog must not swap: {reply:?}"
    );

    // The old generation still answers, bit-identically.
    let chase = client.request(&Request::on("CHASE", "split").body_text("P(a, b, c)\n")).unwrap();
    assert_eq!(chase, Reply::Ok(vec!["Q(a, b)".into(), "R(b, c)".into()]));

    // STATS shows the rejection and the unmoved generation.
    let Reply::Ok(stats) = client.request(&Request::bare("STATS")).unwrap() else {
        panic!("STATS failed")
    };
    assert!(stats.iter().any(|l| l == "reload generation=1 ok=0 rejected=1"), "{stats:?}");

    // Fixing the file makes the next reload succeed.
    std::fs::write(dir.join("split.map"), SPLIT_V2).unwrap();
    let Reply::Ok(lines) = client.request(&Request::bare("RELOAD")).unwrap() else {
        panic!("fixed reload must swap")
    };
    assert_eq!(lines[0], "generation 2", "{lines:?}");
    let chase = client.request(&Request::on("CHASE", "split").body_text("P(a, b, c)\n")).unwrap();
    assert_eq!(chase, Reply::Ok(vec!["Q(a, b)".into(), "R(b, c)".into()]));

    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A reload with *nothing* changed carries every entry (warm caches
/// and all) — the swap is pure bookkeeping.
#[test]
fn unchanged_reload_carries_every_entry() {
    let dir = catalog("carry");
    let (addr, shutdown, handle) = spawn(options(&dir)).unwrap();
    let mut client = Client::connect(addr).unwrap();
    let Reply::Ok(lines) = client.request(&Request::bare("RELOAD")).unwrap() else {
        panic!("no-op reload must still swap")
    };
    assert_eq!(lines, vec!["generation 2", "mappings 2", "carried 2"]);
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-tenant token buckets: a flooding tenant is shed with the
/// bucket's own refill time as a retry hint while an unquoted tenant
/// sails through; the `default` bucket covers anonymous requests.
#[test]
fn tenant_quotas_shed_floods_with_retry_hints() {
    let dir = catalog("quota");
    let opts = ServeOptions {
        // Slow refill, burst of 2: the third request within the window
        // must shed, and the hint must reflect the 2-second token.
        tenant_quotas: vec![TenantQuota::parse("noisy=0.5:2").unwrap()],
        ..options(&dir)
    };
    let (addr, shutdown, handle) = spawn(opts).unwrap();
    let mut client = Client::connect(addr).unwrap();

    let noisy = Request::bare("PING").header("tenant", "noisy");
    for i in 0..2 {
        assert_eq!(
            client.request(&noisy).unwrap(),
            Reply::Ok(vec!["pong".into()]),
            "burst admits request {i}"
        );
    }
    let reply = client.request(&noisy).unwrap();
    let Reply::Shed { reason, retry_after_ms: Some(ms) } = reply else {
        panic!("over-quota must shed with a hint: {reply:?}")
    };
    assert!(reason.contains("`noisy` over quota"), "{reason}");
    assert!((1_000..=2_100).contains(&ms), "hint tracks the 0.5 rps refill: {ms}ms");

    // An unconfigured tenant has no bucket at all (there is no
    // `default` quota here): unlimited.
    let quiet = Request::bare("PING").header("tenant", "quiet");
    for _ in 0..16 {
        assert_eq!(client.request(&quiet).unwrap(), Reply::Ok(vec!["pong".into()]));
    }
    // The flooding tenant's sheds are visible per tenant and reason.
    let Reply::Ok(metrics) = client.request(&Request::bare("METRICS")).unwrap() else {
        panic!("METRICS failed")
    };
    assert!(
        metrics.iter().any(|l| l.starts_with("serve_shed{")
            && l.contains("tenant=\"noisy\"")
            && l.contains("reason=\"quota\"")),
        "{metrics:?}"
    );
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A `default` quota covers requests with no tenant header at all.
#[test]
fn default_quota_covers_anonymous_tenants() {
    let dir = catalog("anon");
    let opts = ServeOptions {
        tenant_quotas: vec![TenantQuota::parse("default=0.5:1").unwrap()],
        ..options(&dir)
    };
    let (addr, shutdown, handle) = spawn(opts).unwrap();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request(&Request::bare("PING")).unwrap(), Reply::Ok(vec!["pong".into()]));
    let reply = client.request(&Request::bare("PING")).unwrap();
    assert!(
        matches!(reply, Reply::Shed { ref reason, retry_after_ms: Some(_) }
            if reason.contains("`default` over quota")),
        "{reply:?}"
    );
    shutdown.cancel();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
