//! Conjunctive queries.

use rde_chase::matching::for_each_premise_match;
use rde_deps::{parse_dependency, Atom, DepError, Dependency, Term};
use rde_model::{Instance, Value, Vocabulary};

use crate::answers::AnswerSet;

/// A conjunctive query `q(x̄) :- body`, with an optional guard extension
/// (inequalities in the body, accepted by the parser but not used by the
/// paper's theorems, which are stated for plain CQs).
///
/// Internally a query is a validated [`Dependency`] `body -> q(x̄)` —
/// dependency safety is exactly CQ safety (every head variable occurs in
/// the body) and premise matching is exactly CQ evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    dep: Dependency,
}

impl ConjunctiveQuery {
    /// Parse `q(x, y) :- P(x, z) & Q(z, y)`. The head relation symbol
    /// (here `q`) is interned with the head's arity; it names the query.
    pub fn parse(vocab: &mut Vocabulary, text: &str) -> Result<Self, DepError> {
        let (head, body) = text
            .split_once(":-")
            .ok_or(DepError::Parse { line: 1, message: "expected `head :- body`".into() })?;
        let dep = parse_dependency(vocab, &format!("{} -> {}", body.trim(), head.trim()))?;
        if dep.disjuncts.len() != 1 || dep.disjuncts[0].atoms.len() != 1 {
            return Err(DepError::Parse {
                line: 1,
                message: "query head must be a single atom".into(),
            });
        }
        if !dep.disjuncts[0].existentials.is_empty() {
            return Err(DepError::Parse {
                line: 1,
                message: "query head cannot be existential".into(),
            });
        }
        if dep.has_constant_guards() {
            return Err(DepError::Parse {
                line: 1,
                message: "Constant guards are not part of the CQ language".into(),
            });
        }
        Ok(ConjunctiveQuery { dep })
    }

    /// The head atom `q(x̄)`.
    pub fn head(&self) -> &Atom {
        &self.dep.disjuncts[0].atoms[0]
    }

    /// The arity of the answer tuples.
    pub fn arity(&self) -> usize {
        self.head().args.len()
    }

    /// Is this a Boolean query (empty head)?
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// The underlying dependency `body -> head`.
    pub fn as_dependency(&self) -> &Dependency {
        &self.dep
    }

    /// The query with body atom `idx` removed, or `None` if the result
    /// would be unsafe (a head variable losing its binding) or `idx` is
    /// out of range. Used by query minimization.
    pub fn without_body_atom(&self, idx: usize) -> Option<ConjunctiveQuery> {
        let premise = &self.dep.premise;
        if idx >= premise.atoms.len() {
            return None;
        }
        let mut new_premise = premise.clone();
        new_premise.atoms.remove(idx);
        let var_names: Vec<String> = (0..self.dep.var_count())
            .map(|i| self.dep.var_name(rde_deps::VarId(i as u32)).to_owned())
            .collect();
        let dep = Dependency::new(var_names, new_premise, self.dep.disjuncts.clone());
        // Safety may be violated; we have no vocabulary here, but
        // safety is arity-independent: check head/guard vars directly.
        let universal: std::collections::HashSet<_> = dep.premise.atom_vars().into_iter().collect();
        let head_safe = dep.disjuncts[0].atoms[0].vars().iter().all(|v| universal.contains(v));
        let guards_safe = dep
            .premise
            .inequalities
            .iter()
            .all(|(a, b)| universal.contains(a) && universal.contains(b))
            && dep.premise.constant_vars.iter().all(|v| universal.contains(v));
        if head_safe && guards_safe {
            Some(ConjunctiveQuery { dep })
        } else {
            None
        }
    }
}

/// Evaluate `q(I)`: all head-atom instantiations under matches of the
/// body into `I`. Answers may contain nulls; use [`evaluate_null_free`]
/// for `q(I)↓`.
pub fn evaluate(q: &ConjunctiveQuery, instance: &Instance) -> AnswerSet {
    let mut out = AnswerSet::new();
    let head = q.head();
    for_each_premise_match(&q.dep.premise, instance, |assignment| {
        let tuple: Vec<Value> = head
            .args
            .iter()
            .map(|t| match *t {
                Term::Var(v) => assignment[&v],
                Term::Const(c) => Value::Const(c),
            })
            .collect();
        out.insert(tuple);
        true
    });
    out
}

/// Evaluate `q(I)↓`: the null-free answers.
pub fn evaluate_null_free(q: &ConjunctiveQuery, instance: &Instance) -> AnswerSet {
    crate::answers::drop_nulls(&evaluate(q, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_model::parse::parse_instance;

    #[test]
    fn join_query_evaluates() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, b)\nP(b, c)\nP(c, a)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x, z) :- P(x, y) & P(y, z)").unwrap();
        let ans = evaluate(&q, &i);
        assert_eq!(ans.len(), 3); // a→c, b→a, c→b
        let (a, c) = (v.const_value("a"), v.const_value("c"));
        assert!(ans.contains(&vec![a, c]));
    }

    #[test]
    fn null_answers_are_dropped_by_down_arrow() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, ?x)\nP(b, c)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x, y) :- P(x, y)").unwrap();
        assert_eq!(evaluate(&q, &i).len(), 2);
        let down = evaluate_null_free(&q, &i);
        assert_eq!(down.len(), 1);
        assert!(down.contains(&vec![v.const_value("b"), v.const_value("c")]));
    }

    #[test]
    fn boolean_queries() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, a)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q() :- P(x, x)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(evaluate(&q, &i).len(), 1); // the empty tuple: true
        let j = parse_instance(&mut v, "P(a, b)").unwrap();
        assert_eq!(evaluate(&q, &j).len(), 0); // false
    }

    #[test]
    fn constants_in_queries() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, b)\nP(c, b)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x) :- P(x, 'b')").unwrap();
        assert_eq!(evaluate(&q, &i).len(), 2);
        let q2 = ConjunctiveQuery::parse(&mut v, "q(x) :- P('a', x)").unwrap();
        let ans = evaluate(&q2, &i);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![v.const_value("b")]));
    }

    #[test]
    fn inequality_extension_is_accepted() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, a)\nP(a, b)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x, y) :- P(x, y) & x != y").unwrap();
        assert_eq!(evaluate(&q, &i).len(), 1);
    }

    #[test]
    fn malformed_queries_are_rejected() {
        let mut v = Vocabulary::new();
        assert!(ConjunctiveQuery::parse(&mut v, "q(x) <- P(x)").is_err());
        assert!(ConjunctiveQuery::parse(&mut v, "q(y) :- P(x)").is_err()); // unsafe head
        assert!(ConjunctiveQuery::parse(&mut v, "q(x) & r(x) :- P(x)").is_err());
        assert!(ConjunctiveQuery::parse(&mut v, "q(x) :- P(x) & Constant(x)").is_err());
    }

    #[test]
    fn repeated_head_variables() {
        let mut v = Vocabulary::new();
        let i = parse_instance(&mut v, "P(a, b)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x, x) :- P(x, y)").unwrap();
        let ans = evaluate(&q, &i);
        let a = v.const_value("a");
        assert_eq!(ans.into_iter().collect::<Vec<_>>(), vec![vec![a, a]]);
    }
}
