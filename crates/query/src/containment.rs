//! Conjunctive-query containment, equivalence and minimization.
//!
//! Classic Chandra–Merkurjev... — Chandra–Merlin: `q₁ ⊆ q₂` iff there
//! is a containment mapping from `q₂` to `q₁`, decided by freezing
//! `q₁`'s body into its canonical instance and checking that `q₂`
//! retrieves the frozen head tuple. Used by the reverse-query-answering
//! machinery to reason about rewritten source queries, and generally
//! useful alongside cores (a minimized query is the core of its
//! canonical instance, head preserved).
//!
//! Exact for plain CQs. Queries using the inequality extension are
//! rejected: frozen-instance containment is not sound for them.

use rde_deps::{DepError, Term, VarId};
use rde_model::{Instance, NullId, Value, Vocabulary};

use crate::cq::{evaluate, ConjunctiveQuery};

fn require_plain(q: &ConjunctiveQuery) -> Result<(), DepError> {
    if !q.as_dependency().premise.inequalities.is_empty() {
        return Err(DepError::Parse {
            line: 1,
            message: "containment is only supported for plain CQs (no inequalities)".into(),
        });
    }
    Ok(())
}

/// Freeze a query: canonical body instance + frozen head tuple. Frozen
/// variables are private nulls offset past everything in the vocabulary.
fn freeze(q: &ConjunctiveQuery, vocab: &Vocabulary) -> (Instance, Vec<Value>) {
    let offset = vocab.null_count() as u32;
    let assign = |v: VarId| Value::Null(NullId(offset + v.0));
    let body = rde_deps::freeze_atoms(&q.as_dependency().premise.atoms, &assign);
    let head = q
        .head()
        .args
        .iter()
        .map(|t| match *t {
            Term::Var(v) => assign(v),
            Term::Const(c) => Value::Const(c),
        })
        .collect();
    (body, head)
}

/// Is `q1 ⊆ q2` (every answer of `q1` is an answer of `q2`, on every
/// instance)?
pub fn contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    vocab: &Vocabulary,
) -> Result<bool, DepError> {
    require_plain(q1)?;
    require_plain(q2)?;
    if q1.arity() != q2.arity() {
        return Ok(false);
    }
    let (canonical, head) = freeze(q1, vocab);
    Ok(evaluate(q2, &canonical).contains(&head))
}

/// Are the two queries equivalent?
pub fn equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    vocab: &Vocabulary,
) -> Result<bool, DepError> {
    Ok(contained_in(q1, q2, vocab)? && contained_in(q2, q1, vocab)?)
}

/// Minimize a query: repeatedly drop body atoms while the query stays
/// equivalent (the result is the core of the canonical instance with
/// the head preserved — unique up to variable renaming).
pub fn minimize(q: &ConjunctiveQuery, vocab: &Vocabulary) -> Result<ConjunctiveQuery, DepError> {
    require_plain(q)?;
    let mut current = q.clone();
    'outer: loop {
        let n = current.as_dependency().premise.atoms.len();
        if n <= 1 {
            return Ok(current);
        }
        for drop in 0..n {
            let Some(candidate) = current.without_body_atom(drop) else {
                continue;
            };
            // Dropping an atom weakens the body, so current ⊆ candidate
            // always; equivalence needs candidate ⊆ current.
            if contained_in(&candidate, &current, vocab)? {
                current = candidate;
                continue 'outer;
            }
        }
        return Ok(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(vocab: &mut Vocabulary, text: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(vocab, text).unwrap()
    }

    #[test]
    fn syntactic_variants_are_equivalent() {
        let mut v = Vocabulary::new();
        let q1 = q(&mut v, "a(x, y) :- P(x, z) & P(z, y)");
        let q2 = q(&mut v, "a(u, w) :- P(u, t) & P(t, w)");
        assert!(equivalent(&q1, &q2, &v).unwrap());
    }

    #[test]
    fn longer_paths_are_contained_in_shorter_patterns() {
        let mut v = Vocabulary::new();
        // q1: there is a 2-path from x; q2: there is an edge from x.
        let q1 = q(&mut v, "a(x) :- P(x, y) & P(y, z)");
        let q2 = q(&mut v, "a(x) :- P(x, y)");
        assert!(contained_in(&q1, &q2, &v).unwrap());
        assert!(!contained_in(&q2, &q1, &v).unwrap());
    }

    #[test]
    fn constants_restrict_containment() {
        let mut v = Vocabulary::new();
        let q1 = q(&mut v, "a(x) :- P(x, 'b')");
        let q2 = q(&mut v, "a(x) :- P(x, y)");
        assert!(contained_in(&q1, &q2, &v).unwrap());
        assert!(!contained_in(&q2, &q1, &v).unwrap());
    }

    #[test]
    fn different_arities_are_incomparable() {
        let mut v = Vocabulary::new();
        let q1 = q(&mut v, "a(x) :- P(x, y)");
        let q2 = q(&mut v, "b(x, y) :- P(x, y)");
        assert!(!contained_in(&q1, &q2, &v).unwrap());
    }

    #[test]
    fn minimization_drops_redundant_atoms() {
        let mut v = Vocabulary::new();
        // The second atom is a homomorphic image of the first.
        let big = q(&mut v, "a(x) :- P(x, y) & P(x, z)");
        let min = minimize(&big, &v).unwrap();
        assert_eq!(min.as_dependency().premise.atoms.len(), 1);
        assert!(equivalent(&big, &min, &v).unwrap());
    }

    #[test]
    fn minimization_keeps_necessary_atoms() {
        let mut v = Vocabulary::new();
        let path = q(&mut v, "a(x, z) :- P(x, y) & P(y, z)");
        let min = minimize(&path, &v).unwrap();
        assert_eq!(min.as_dependency().premise.atoms.len(), 2);
    }

    #[test]
    fn classic_triangle_vs_path_minimization() {
        let mut v = Vocabulary::new();
        // Boolean query: edge-with-loop pattern folds onto the loop atom.
        let loopy = q(&mut v, "a() :- E(x, x) & E(x, y)");
        let min = minimize(&loopy, &v).unwrap();
        assert_eq!(min.as_dependency().premise.atoms.len(), 1);
    }

    #[test]
    fn inequality_queries_are_rejected() {
        let mut v = Vocabulary::new();
        let qi = q(&mut v, "a(x, y) :- P(x, y) & x != y");
        let qp = q(&mut v, "a(x, y) :- P(x, y)");
        assert!(contained_in(&qi, &qp, &v).is_err());
        assert!(minimize(&qi, &v).is_err());
    }
}
