//! Answer sets: ordered sets of value tuples.

use std::collections::BTreeSet;

use rde_model::Value;

/// A set of answer tuples, ordered for deterministic iteration and
/// display.
pub type AnswerSet = BTreeSet<Vec<Value>>;

/// `S↓`: the tuples containing no nulls (Section 6.2 — answers built
/// from labeled nulls carry no certain information).
pub fn drop_nulls(answers: &AnswerSet) -> AnswerSet {
    answers.iter().filter(|t| t.iter().all(|v| v.is_const())).cloned().collect()
}

/// Intersection of a family of answer sets. An empty family is the
/// identity for intersection only with a universe, which we do not have;
/// we follow the convention of the paper's usage sites (the family is
/// never empty there — the disjunctive chase of any instance has at
/// least one leaf) and return the empty set for an empty family.
pub fn intersect_all<I>(sets: I) -> AnswerSet
where
    I: IntoIterator<Item = AnswerSet>,
{
    let mut iter = sets.into_iter();
    let Some(first) = iter.next() else {
        return AnswerSet::new();
    };
    iter.fold(first, |acc, s| acc.intersection(&s).cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_model::{ConstId, NullId};

    fn c(i: u32) -> Value {
        Value::Const(ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn drop_nulls_filters_tuples_with_any_null() {
        let mut s = AnswerSet::new();
        s.insert(vec![c(0), c(1)]);
        s.insert(vec![c(0), n(0)]);
        s.insert(vec![n(0), n(1)]);
        let d = drop_nulls(&s);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&vec![c(0), c(1)]));
    }

    #[test]
    fn intersection_of_sets() {
        let mk = |vals: &[u32]| -> AnswerSet { vals.iter().map(|&v| vec![c(v)]).collect() };
        let out = intersect_all(vec![mk(&[0, 1, 2]), mk(&[1, 2, 3]), mk(&[2, 1])]);
        assert_eq!(out, mk(&[1, 2]));
        assert!(intersect_all(Vec::<AnswerSet>::new()).is_empty());
        let single = intersect_all(vec![mk(&[5])]);
        assert_eq!(single, mk(&[5]));
    }
}
