//! Certain answers and reverse query answering (Section 6.2).

use rde_chase::{
    chase_mapping, disjunctive_chase, ChaseError, ChaseOptions, DisjunctiveChaseOptions,
};
use rde_deps::SchemaMapping;
use rde_model::{Instance, Vocabulary};

use crate::answers::{drop_nulls, intersect_all, AnswerSet};
use crate::cq::{evaluate, ConjunctiveQuery};

/// `(⋂_K q(K))↓` over a family of instances — the right-hand side of
/// Theorem 6.5.
pub fn certain_answers_over<'a>(
    q: &ConjunctiveQuery,
    instances: impl IntoIterator<Item = &'a Instance>,
) -> AnswerSet {
    drop_nulls(&intersect_all(instances.into_iter().map(|k| evaluate(q, k))))
}

/// Classic ("direct") certain answers of a conjunctive query over the
/// **target** schema: `certain_M(q, I) = q(chase_M(I))↓` for mappings
/// specified by s-t tgds (Fagin–Kolaitis–Miller–Popa; the universal
/// solution computes certain answers of CQs).
pub fn forward_certain_answers(
    q: &ConjunctiveQuery,
    source: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
) -> Result<AnswerSet, ChaseError> {
    let u = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(crate::cq::evaluate_null_free(q, &u))
}

/// Reverse query answering by the procedure of Theorem 6.5.
///
/// Given a mapping `M` specified by s-t tgds, a maximum extended
/// recovery `M′` of `M` specified by disjunctive tgds, a **source**
/// query `q`, and the original source instance `I` (used only to compute
/// `U = chase_M(I)`, which is what survives after the exchange):
/// compute `K = chase_{M′}(U)` by the disjunctive chase, restrict every
/// leaf to the source schema, and return `(⋂_{K} q(K))↓`.
///
/// By Theorem 6.5 this equals `certain_{e(M) ∘ e(M′)}(q, I)`; by
/// Theorem 6.4, when `M′` is an extended *inverse* it equals `q(I)↓`.
pub fn reverse_certain_answers(
    q: &ConjunctiveQuery,
    source: &Instance,
    mapping: &SchemaMapping,
    recovery: &SchemaMapping,
    vocab: &mut Vocabulary,
    options: &DisjunctiveChaseOptions,
) -> Result<AnswerSet, ChaseError> {
    let u = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    reverse_certain_answers_from_target(q, &u, mapping, recovery, vocab, options)
}

/// Like [`reverse_certain_answers`] but starting from the materialized
/// target instance `U` (the realistic situation: the source is gone).
pub fn reverse_certain_answers_from_target(
    q: &ConjunctiveQuery,
    target: &Instance,
    mapping: &SchemaMapping,
    recovery: &SchemaMapping,
    vocab: &mut Vocabulary,
    options: &DisjunctiveChaseOptions,
) -> Result<AnswerSet, ChaseError> {
    let result = disjunctive_chase(target, &recovery.dependencies, vocab, options)?;
    let leaves: Vec<Instance> =
        result.leaves.iter().map(|l| l.restrict_to(&mapping.source)).collect();
    Ok(certain_answers_over(q, leaves.iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// Example 3.18's extended-invertible mapping: reverse certain
    /// answers recover q(I)↓ exactly (Theorem 6.4).
    #[test]
    fn extended_inverse_recovers_q_of_i() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/2\ntarget: Q/2\nP(x, y) -> exists z . Q(x, z) & Q(z, y)",
        )
        .unwrap();
        let minv = parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x, z) & Q(z, y) -> P(x, y)")
            .unwrap();
        let i = parse_instance(&mut v, "P(a, b)\nP(b, c)\nP(a, ?w)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x, y) :- P(x, y)").unwrap();
        let expected = crate::cq::evaluate_null_free(&q, &i);
        let got =
            reverse_certain_answers(&q, &i, &m, &minv, &mut v, &DisjunctiveChaseOptions::default())
                .unwrap();
        assert_eq!(got, expected);
        // And a join query over the source.
        let qj = ConjunctiveQuery::parse(&mut v, "j(x, z) :- P(x, y) & P(y, z)").unwrap();
        let expected = crate::cq::evaluate_null_free(&qj, &i);
        let got = reverse_certain_answers(
            &qj,
            &i,
            &m,
            &minv,
            &mut v,
            &DisjunctiveChaseOptions::default(),
        )
        .unwrap();
        assert_eq!(got, expected);
    }

    /// The union mapping: certain answers through the disjunctive
    /// recovery keep only what every branch agrees on.
    #[test]
    fn union_mapping_certain_answers_are_conservative() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let rec =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) | Q(x)").unwrap();
        let i = parse_instance(&mut v, "P(a)").unwrap();
        // q(x) :- P(x): branch {Q(a)} does not satisfy it → no certain answer.
        let qp = ConjunctiveQuery::parse(&mut v, "q(x) :- P(x)").unwrap();
        let got =
            reverse_certain_answers(&qp, &i, &m, &rec, &mut v, &DisjunctiveChaseOptions::default())
                .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn forward_certain_answers_use_the_universal_solution() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/2\ntarget: Q/2\nP(x, y) -> exists z . Q(x, z) & Q(z, y)",
        )
        .unwrap();
        let i = parse_instance(&mut v, "P(a, b)").unwrap();
        // Endpoint pairs connected by a 2-path: only (a, b) is certain.
        let q = ConjunctiveQuery::parse(&mut v, "q(x, y) :- Q(x, z) & Q(z, y)").unwrap();
        let got = forward_certain_answers(&q, &i, &m, &mut v).unwrap();
        let (a, b) = (v.const_value("a"), v.const_value("b"));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![vec![a, b]]);
        // Single-edge endpoints involve the null z: no certain answers.
        let q1 = ConjunctiveQuery::parse(&mut v, "q(x, y) :- Q(x, y)").unwrap();
        assert!(forward_certain_answers(&q1, &i, &m, &mut v).unwrap().is_empty());
    }

    #[test]
    fn certain_answers_over_explicit_family() {
        let mut v = Vocabulary::new();
        let k1 = parse_instance(&mut v, "P(a)\nP(b)").unwrap();
        let k2 = parse_instance(&mut v, "P(a)\nP(c)").unwrap();
        let q = ConjunctiveQuery::parse(&mut v, "q(x) :- P(x)").unwrap();
        let got = certain_answers_over(&q, [&k1, &k2]);
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![vec![v.const_value("a")]]);
    }
}
