//! # rde-query
//!
//! Conjunctive queries and certain answers for reverse data exchange
//! (Section 6.2 of the PODS 2009 paper).
//!
//! * [`ConjunctiveQuery`] — `q(x̄) :- body`, parsed in a Datalog-ish
//!   syntax and evaluated by the premise-matching engine;
//! * [`evaluate`] / [`evaluate_null_free`] — `q(I)` and `q(I)↓` (the
//!   answers with no nulls);
//! * [`certain_answers_over`] — `(⋂_K q(K))↓` over a set of instances,
//!   the right-hand side of Theorem 6.5;
//! * [`forward_certain_answers`] — classic certain answers
//!   `certain_M(q, I)` for a target query, computed as
//!   `q(chase_M(I))↓` (Fagin–Kolaitis–Miller–Popa);
//! * [`reverse_certain_answers`] — the paper's reverse query answering
//!   (Theorem 6.5): answer a *source* query when only the exchanged
//!   target instance is available, via the disjunctive chase with a
//!   maximum extended recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answers;
pub mod containment;
mod cq;
mod reverse;

pub use answers::{drop_nulls, intersect_all, AnswerSet};
pub use containment::{contained_in, equivalent, minimize};
pub use cq::{evaluate, evaluate_null_free, ConjunctiveQuery};
pub use reverse::{
    certain_answers_over, forward_certain_answers, reverse_certain_answers,
    reverse_certain_answers_from_target,
};
