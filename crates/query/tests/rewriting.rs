//! Query-level integration: minimization and containment interact
//! correctly with evaluation and reverse certain answers.

use rde_chase::DisjunctiveChaseOptions;
use rde_deps::parse_mapping;
use rde_model::{parse::parse_instance, Vocabulary};
use rde_query::{
    contained_in, equivalent, evaluate, evaluate_null_free, minimize, reverse_certain_answers,
    ConjunctiveQuery,
};

#[test]
fn minimized_queries_evaluate_identically() {
    let mut v = Vocabulary::new();
    let i = parse_instance(&mut v, "P(a, b)\nP(a, c)\nP(b, c)\nP(c, ?w)").unwrap();
    for text in [
        "q1(x) :- P(x, y) & P(x, z)",
        "q2(x, y) :- P(x, y) & P(x, u) & P(x, w)",
        "q3() :- P(x, y) & P(x, x)",
        "q4(x, z) :- P(x, y) & P(y, z) & P(x, u)",
    ] {
        let q = ConjunctiveQuery::parse(&mut v, text).unwrap();
        let min = minimize(&q, &v).unwrap();
        assert!(equivalent(&q, &min, &v).unwrap(), "{text}");
        assert_eq!(evaluate(&q, &i), evaluate(&min, &i), "{text}");
        assert!(
            min.as_dependency().premise.atoms.len() <= q.as_dependency().premise.atoms.len(),
            "{text}"
        );
    }
}

#[test]
fn containment_is_sound_on_evaluation() {
    // If q1 ⊆ q2 then q1(I) ⊆ q2(I) on every instance we try.
    let mut v = Vocabulary::new();
    let instances = [
        parse_instance(&mut v, "P(a, b)\nP(b, c)").unwrap(),
        parse_instance(&mut v, "P(a, a)").unwrap(),
        parse_instance(&mut v, "P(a, ?x)\nP(?x, b)\nP(b, a)").unwrap(),
    ];
    let pairs = [
        ("q1(x) :- P(x, y) & P(y, z)", "p1(x) :- P(x, y)"),
        ("q2(x, y) :- P(x, y) & P(y, x)", "p2(x, y) :- P(x, y)"),
        ("q3(x) :- P(x, x)", "p1(x) :- P(x, y)"),
    ];
    for (sub_text, sup_text) in pairs {
        let sub = ConjunctiveQuery::parse(&mut v, sub_text).unwrap();
        let sup = ConjunctiveQuery::parse(&mut v, sup_text).unwrap();
        assert!(contained_in(&sub, &sup, &v).unwrap(), "{sub_text} ⊆ {sup_text}");
        for i in &instances {
            let a = evaluate(&sub, i);
            let b = evaluate(&sup, i);
            assert!(a.is_subset(&b), "soundness on {i:?} for {sub_text}");
        }
    }
}

#[test]
fn reverse_certain_answers_are_invariant_under_minimization() {
    let mut v = Vocabulary::new();
    let m =
        parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x, y) -> exists z . Q(x, z) & Q(z, y)")
            .unwrap();
    let minv =
        parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x, z) & Q(z, y) -> P(x, y)").unwrap();
    let i = parse_instance(&mut v, "P(a, b)\nP(b, c)\nP(a, ?w)").unwrap();
    let q = ConjunctiveQuery::parse(&mut v, "ans(x) :- P(x, y) & P(x, z)").unwrap();
    let min = minimize(&q, &v).unwrap();
    let opts = DisjunctiveChaseOptions::default();
    let full = reverse_certain_answers(&q, &i, &m, &minv, &mut v, &opts).unwrap();
    let reduced = reverse_certain_answers(&min, &i, &m, &minv, &mut v, &opts).unwrap();
    assert_eq!(full, reduced);
    // And both equal q(I)↓ (Theorem 6.4, M′ is an extended inverse).
    assert_eq!(full, evaluate_null_free(&q, &i));
}
