//! Rotating file sink: records spill across size-capped files, every
//! file is valid JSONL, no record is lost or split, and at most `keep`
//! rotated files survive.
//!
//! The journal is process-global, so the tests in this file serialize
//! on a mutex instead of relying on cargo's per-test threads.
#![cfg(feature = "trace")]

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rde_obs::journal::{self, Sink};
use rde_obs::{event, json};

static LOCK: Mutex<()> = Mutex::new(());

fn rotated(path: &Path, i: usize) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(format!(".{i}"));
    PathBuf::from(s)
}

fn read_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path).unwrap_or_default().lines().map(str::to_owned).collect()
}

fn cleanup(path: &Path, keep: usize) {
    std::fs::remove_file(path).ok();
    for i in 1..=keep + 2 {
        std::fs::remove_file(rotated(path, i)).ok();
    }
}

#[test]
fn rotation_preserves_every_record_across_files() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = std::env::temp_dir().join(format!("rde-rotate-{}.jsonl", std::process::id()));
    let keep = 3;
    cleanup(&path, keep);

    // Each record is ~60 bytes; a 256-byte cap forces several
    // rotations over 40 records, but `keep` bounds how many survive.
    journal::attach(Sink::rotating(&path, 256, keep), usize::MAX).expect("sink installs");
    let total = 40u64;
    for i in 0..total {
        event("test.rotate", &[("i", i.into()), ("pad", "xxxxxxxxxxxxxxxx".into())]);
    }
    let summary = journal::detach().expect("journal was installed");
    assert_eq!(summary.written as u64, total);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.io_errors, 0);

    // The live file plus the rotated generations, newest first.
    let mut files = vec![path.clone()];
    for i in 1..=keep {
        let p = rotated(&path, i);
        assert!(p.exists(), "expected rotated file {}", p.display());
        files.push(p);
    }
    assert!(!rotated(&path, keep + 1).exists(), "rotation must retain at most {keep} files");

    // Every retained line is valid JSON and under the size cap per file.
    let mut indices: Vec<u64> = Vec::new();
    for file in &files {
        let lines = read_lines(file);
        assert!(!lines.is_empty(), "empty journal file {}", file.display());
        let bytes: usize = lines.iter().map(|l| l.len() + 1).sum();
        assert!(bytes <= 256, "{} exceeds the size cap ({bytes} bytes)", file.display());
        for line in &lines {
            assert!(json::is_valid(line), "invalid JSON line: {line}");
        }
        // Files are newest-first, so prepend this file's indices.
        let mut chunk: Vec<u64> = lines
            .iter()
            .map(|l| {
                let rec: Vec<&str> = l.split("\"i\":").collect();
                rec[1].split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
            })
            .collect();
        chunk.extend(indices);
        indices = chunk;
    }

    // The retained tail is a contiguous, in-order suffix of 0..total —
    // rotation dropped only the oldest generations, never a middle
    // record and never a partial line.
    let first = indices[0];
    let expected: Vec<u64> = (first..total).collect();
    assert_eq!(indices, expected, "retained records must be a contiguous suffix");

    cleanup(&path, keep);
}

#[test]
fn keep_zero_discards_history_but_keeps_the_live_file_valid() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = std::env::temp_dir().join(format!("rde-rotate0-{}.jsonl", std::process::id()));
    cleanup(&path, 0);

    journal::attach(Sink::rotating(&path, 128, 0), usize::MAX).expect("sink installs");
    for i in 0..30u64 {
        event("test.rotate", &[("i", i.into())]);
    }
    let summary = journal::detach().expect("journal was installed");
    assert_eq!(summary.written, 30);
    assert_eq!(summary.io_errors, 0);

    assert!(!rotated(&path, 1).exists(), "keep=0 must not create rotated files");
    let lines = read_lines(&path);
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(json::is_valid(line), "invalid JSON line: {line}");
    }

    cleanup(&path, 0);
}

#[test]
fn oversized_record_still_lands_in_its_own_file() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = std::env::temp_dir().join(format!("rde-rotate-big-{}.jsonl", std::process::id()));
    cleanup(&path, 2);

    journal::attach(Sink::rotating(&path, 64, 2), usize::MAX).expect("sink installs");
    let big = "y".repeat(200);
    event("test.small", &[]);
    event("test.big", &[("pad", big.as_str().into())]);
    let summary = journal::detach().expect("journal was installed");
    assert_eq!(summary.written, 2);
    assert_eq!(summary.io_errors, 0);

    // The small record rotated out; the oversized one owns the live
    // file in full (records are never split).
    let live = read_lines(&path);
    assert_eq!(live.len(), 1);
    assert!(live[0].contains("test.big"));
    assert!(json::is_valid(&live[0]));
    let prev = read_lines(&rotated(&path, 1));
    assert_eq!(prev.len(), 1);
    assert!(prev[0].contains("test.small"));

    cleanup(&path, 2);
}
