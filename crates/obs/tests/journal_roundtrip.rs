//! Journal round-trip: spans and events written through the memory
//! sink come back structurally balanced and render as valid JSON
//! lines.
//!
//! The journal is process-global, so the tests in this file serialize
//! on a mutex instead of relying on cargo's per-test threads.
#![cfg(feature = "trace")]

use std::collections::HashMap;
use std::sync::Mutex;

use rde_obs::journal::{self, JournalSummary, Sink};
use rde_obs::{event, json, span};

static LOCK: Mutex<()> = Mutex::new(());

fn with_memory_journal(capacity: usize, body: impl FnOnce()) -> JournalSummary {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    journal::attach(Sink::Memory, capacity).expect("memory sink installs");
    body();
    journal::detach().expect("journal was installed")
}

#[test]
fn nested_spans_balance_and_render_valid_json() {
    let summary = with_memory_journal(1024, || {
        let outer = span("test.outer", &[("round", 1u64.into())]);
        event("test.tick", &[("n", 7u64.into()), ("label", "alpha".into())]);
        let inner = span("test.inner", &[]);
        event("test.tick", &[("n", 8u64.into())]);
        inner.close_with(&[("fired", 3u64.into())]);
        outer.close_with(&[("ok", true.into())]);
    });

    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.records.len(), 6);

    // Every record renders as one well-formed JSON line.
    for rec in &summary.records {
        let line = rec.to_json_line();
        assert!(json::is_valid(&line), "invalid JSON line: {line}");
        assert!(!line.contains('\n'));
    }

    // Opens and closes pair up by span id with matching names.
    let mut open: HashMap<u64, &str> = HashMap::new();
    for rec in &summary.records {
        match rec.kind {
            "span_open" => {
                assert!(open.insert(rec.span, &rec.name).is_none(), "span {} reopened", rec.span);
            }
            "span_close" => {
                let name = open.remove(&rec.span).expect("close without open");
                assert_eq!(name, rec.name);
                assert!(rec.elapsed_us.is_some());
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");

    // Parentage: inner's parent is outer; events attribute to the
    // innermost enclosing span.
    let outer_open = &summary.records[0];
    let inner_open = &summary.records[2];
    assert_eq!(outer_open.name, "test.outer");
    assert_eq!(outer_open.parent, 0);
    assert_eq!(inner_open.name, "test.inner");
    assert_eq!(inner_open.parent, outer_open.span);
    assert_eq!(summary.records[1].span, outer_open.span);
    assert_eq!(summary.records[3].span, inner_open.span);

    // Timestamps are monotone within the buffer.
    for pair in summary.records.windows(2) {
        assert!(pair[0].t_us <= pair[1].t_us);
    }

    // Close fields survive the trip.
    let inner_close = &summary.records[4];
    assert_eq!(inner_close.field("fired").and_then(|f| f.as_u64()), Some(3));
}

#[test]
fn worker_threads_get_their_own_root_spans() {
    let summary = with_memory_journal(1024, || {
        let _main = span("test.main", &[]);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let w = span("test.worker", &[("worker", 0u64.into())]);
                w.close_with(&[]);
            });
        });
    });
    let worker_open = summary
        .records
        .iter()
        .find(|r| r.kind == "span_open" && r.name == "test.worker")
        .expect("worker span recorded");
    assert_eq!(worker_open.parent, 0, "span stacks are per-thread");
}

#[test]
fn capacity_bound_drops_and_reports() {
    let summary = with_memory_journal(3, || {
        for i in 0..10u64 {
            event("test.flood", &[("i", i.into())]);
        }
    });
    assert_eq!(summary.written, 3);
    assert_eq!(summary.dropped, 7);
    let marker = summary.records.last().expect("truncation marker present");
    assert_eq!(marker.kind, "journal_truncated");
    assert_eq!(marker.field("dropped").and_then(|f| f.as_u64()), Some(7));
    assert!(json::is_valid(&marker.to_json_line()));
}

#[test]
fn no_sink_means_no_records_and_inert_spans() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(journal::detach().is_none());
    assert!(!journal::enabled());
    let s = span("test.orphan", &[]);
    assert_eq!(s.id(), 0);
    event("test.orphan_event", &[]);
    drop(s);
    assert!(journal::detach().is_none(), "emitting without a sink must not install one");
}
