//! With the `trace` feature compiled out, the whole span/journal API
//! must still link and run — and provably emit nothing. Run with
//! `cargo test -p rde-obs --no-default-features`.
#![cfg(not(feature = "trace"))]

use rde_obs::journal::{self, Sink};
use rde_obs::{event, span};

#[test]
fn trace_off_build_emits_nothing() {
    let path = std::env::temp_dir().join(format!("rde_obs_trace_off_{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();

    journal::attach(Sink::File(path.clone()), 4096).expect("install is a no-op Ok");
    assert!(!journal::enabled(), "journal can never be enabled without the trace feature");

    let s = span("test.noop", &[("round", 1u64.into())]);
    assert_eq!(s.id(), 0);
    event("test.noop_event", &[("n", 2u64.into())]);
    s.close_with(&[("ok", true.into())]);

    assert!(journal::detach().is_none(), "nothing was ever installed");
    assert!(!path.exists(), "no journal file may be created with trace off");
}

#[test]
fn metrics_stay_live_without_trace() {
    rde_obs::counter!("test.traceoff.counter").add(5);
    rde_obs::histogram!("test.traceoff.hist").record(17);
    let snap = rde_obs::snapshot();
    assert_eq!(snap.counter("test.traceoff.counter"), Some(5));
    assert_eq!(snap.histogram("test.traceoff.hist").map(|h| h.count), Some(1));
}
