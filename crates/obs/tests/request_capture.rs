//! Request-id stamping and capture mode: records emitted under an
//! installed request id carry a `req` field that survives the JSON
//! round trip, and capture-mode buffers divert cleanly from the shared
//! sink and replay into it.
//!
//! The journal is process-global, so the tests in this file serialize
//! on a mutex instead of relying on cargo's per-test threads.
#![cfg(feature = "trace")]

use std::sync::Mutex;

use rde_obs::journal::{self, JournalSummary, Record, Sink};
use rde_obs::{event, request, span};

static LOCK: Mutex<()> = Mutex::new(());

fn with_memory_journal(capacity: usize, body: impl FnOnce()) -> JournalSummary {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    journal::attach(Sink::Memory, capacity).expect("memory sink installs");
    body();
    journal::detach().expect("journal was installed")
}

#[test]
fn records_under_a_request_are_stamped_and_round_trip() {
    let summary = with_memory_journal(1024, || {
        event("test.before", &[]);
        {
            let _req = request::enter(42);
            let s = span("test.work", &[("step", 1u64.into())]);
            event("test.tick", &[]);
            s.close_with(&[("ok", true.into())]);
        }
        event("test.after", &[]);
    });
    assert_eq!(summary.records.len(), 5);
    for rec in &summary.records {
        let expected = if rec.name.starts_with("test.before") || rec.name.starts_with("test.after")
        {
            0
        } else {
            42
        };
        assert_eq!(rec.req(), expected, "{} misattributed", rec.name);
        // The stamp must survive the file round trip too: render the
        // line and parse it back.
        let reparsed = Record::parse_json_line(&rec.to_json_line()).expect("line parses back");
        assert_eq!(reparsed.req(), rec.req());
        assert_eq!(reparsed.kind, rec.kind);
        assert_eq!(reparsed.name, rec.name);
        assert_eq!(reparsed.span, rec.span);
        assert_eq!(reparsed.elapsed_us, rec.elapsed_us);
    }
}

#[test]
fn capture_diverts_from_the_sink_and_replays_into_it() {
    let summary = with_memory_journal(1024, || {
        let _req = request::enter(7);
        journal::capture_begin();
        let s = span("test.captured", &[]);
        event("test.captured_tick", &[("n", 3u64.into())]);
        drop(s);
        let captured = journal::capture_take();
        assert_eq!(captured.len(), 3, "open + event + close");
        for rec in &captured {
            assert_eq!(rec.req(), 7);
        }
        // Nothing reached the sink while capturing; replay half of it.
        event("test.live", &[]);
        for rec in captured.into_iter().take(2) {
            journal::append(rec);
        }
    });
    let names: Vec<&str> = summary.records.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["test.live", "test.captured", "test.captured_tick"]);
    assert_eq!(summary.written, 3);
}

#[test]
fn capture_works_with_no_sink_attached() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(!journal::enabled());
    journal::capture_begin();
    assert!(journal::enabled(), "capture mode enables emission on this thread");
    let s = span("test.sinkless", &[]);
    drop(s);
    let captured = journal::capture_take();
    assert_eq!(captured.len(), 2);
    assert!(!journal::enabled());
    assert!(journal::detach().is_none(), "capturing must not install a sink");
}

#[test]
fn capture_overflow_is_marked_not_silent() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _req = request::enter(9);
    journal::capture_begin();
    // The capture cap is 1 << 14 records; overflow it by two.
    for i in 0..(1 << 14) + 2u64 {
        event("test.flood", &[("i", i.into())]);
    }
    let captured = journal::capture_take();
    assert_eq!(captured.len(), (1 << 14) + 1, "cap records plus the truncation marker");
    let marker = captured.last().expect("marker present");
    assert_eq!(marker.name, "journal.capture_truncated");
    assert_eq!(marker.field("dropped").and_then(|f| f.as_u64()), Some(2));
    assert_eq!(marker.req(), 9, "the marker itself is attributed");
}
