//! Metrics registry under concurrency: counters and histograms take
//! increments from many threads and a quiescent snapshot sees every
//! one of them.

use rde_obs::metrics::{self, BUCKETS};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_counter_increments_are_all_counted() {
    let c = metrics::counter("test.concurrent.counter");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
    assert_eq!(metrics::snapshot().counter("test.concurrent.counter"), Some(THREADS * PER_THREAD));
}

#[test]
fn concurrent_histogram_snapshot_is_internally_consistent() {
    let h = metrics::histogram("test.concurrent.hist");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "every sample lands in exactly one bucket");
    // Sum of 0..80000 and the largest sample, both exact.
    let n = THREADS * PER_THREAD;
    assert_eq!(s.sum, n * (n - 1) / 2);
    assert_eq!(s.max, n - 1);
    assert!(s.quantile_bound(0.5) >= n / 4 && s.quantile_bound(0.5) <= n);
}

#[test]
fn macro_handles_point_at_the_registry_entry() {
    rde_obs::counter!("test.concurrent.macro").add(3);
    rde_obs::counter!("test.concurrent.macro").add(4);
    assert_eq!(metrics::counter("test.concurrent.macro").get(), 7);
    // Same name through the non-macro path is the same atomic.
    metrics::counter("test.concurrent.macro").inc();
    assert_eq!(rde_obs::counter!("test.concurrent.macro").get(), 8);
}

#[test]
fn bucket_count_covers_u64_range() {
    assert_eq!(BUCKETS, 65);
    assert_eq!(metrics::bucket_of(u64::MAX), BUCKETS - 1);
}
