//! File-sink round trip: a deterministic little span tree lands on
//! disk as one valid JSON object per line. Kept in its own
//! integration-test binary so it owns the process-global journal.
#![cfg(feature = "trace")]

use rde_obs::journal::{self, Sink};
use rde_obs::{event, json, span};

#[test]
fn file_sink_writes_one_valid_json_object_per_line() {
    let path = std::env::temp_dir().join(format!("rde_obs_file_sink_{}.jsonl", std::process::id()));
    journal::attach(Sink::File(path.clone()), 4096).expect("file sink installs");
    {
        let run = span("test.run", &[]);
        for round in 0..3u64 {
            let r = span("test.round", &[("round", round.into())]);
            event("test.fired", &[("dep", "d0".into()), ("count", (round + 1).into())]);
            r.close_with(&[("delta", round.into())]);
        }
        run.close_with(&[("rounds", 3u64.into())]);
    }
    let summary = journal::detach().expect("journal was installed");
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.written, 11); // 1 run + 3 rounds (open+close each) + 3 events

    let text = std::fs::read_to_string(&path).expect("journal file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), summary.written);
    for line in &lines {
        assert!(json::is_valid(line), "invalid JSON line: {line}");
    }
    let opens = lines.iter().filter(|l| l.contains("\"kind\":\"span_open\"")).count();
    let closes = lines.iter().filter(|l| l.contains("\"kind\":\"span_close\"")).count();
    assert_eq!(opens, 4);
    assert_eq!(closes, 4);
    std::fs::remove_file(&path).ok();
}
