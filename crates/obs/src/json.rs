//! Minimal JSON helpers: string escaping for the journal writer and a
//! strict validator used by tests and CI smoke checks to assert every
//! journal line is well-formed JSON.

/// Append `s` to `out` as a JSON string literal (with surrounding
/// quotes), escaping the characters RFC 8259 requires.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Is `s` a single well-formed JSON value (with optional surrounding
/// whitespace)? A small recursive-descent check — not a parser; it
/// validates syntax only, which is exactly what the journal round-trip
/// tests and the CI smoke check need.
pub fn is_valid(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_produces_valid_json_strings() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "back\\slash", "\u{1}ctl"] {
            let mut out = String::new();
            escape_into(&mut out, s);
            assert!(is_valid(&out), "escaped {s:?} -> {out}");
        }
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for s in [
            "{}",
            "[]",
            "0",
            "-12.5e3",
            "true",
            "null",
            "\"x\"",
            r#"{"a": 1, "b": [true, null, "s\n"], "c": {"d": -2.5}}"#,
            r#"  {"t_us": 12, "kind": "span_open"}  "#,
        ] {
            assert!(is_valid(s), "{s}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for s in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{\"a\":1}{\"b\":2}",
            "nulL",
            "1.",
            "- 1",
        ] {
            assert!(!is_valid(s), "{s}");
        }
    }
}
