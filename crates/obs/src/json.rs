//! Minimal JSON helpers: string escaping for the journal writer, a
//! strict validator used by tests and CI smoke checks to assert every
//! journal line is well-formed JSON, and a flat-object parser that
//! reads journal lines back (the `rde profile --request-id` path works
//! from a journal *file*, not the in-memory sink).

/// Append `s` to `out` as a JSON string literal (with surrounding
/// quotes), escaping the characters RFC 8259 requires.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Is `s` a single well-formed JSON value (with optional surrounding
/// whitespace)? A small recursive-descent check — not a parser; it
/// validates syntax only, which is exactly what the journal round-trip
/// tests and the CI smoke check need.
pub fn is_valid(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *pos += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    true
}

/// A scalar value parsed out of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Any number with a fraction/exponent, or one too big for i64/u64.
    F64(f64),
    /// String (unescaped).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parse `s` as one flat JSON object — every value a scalar. Nested
/// objects and arrays are rejected: journal records are flat by
/// construction, so a nested value in a "journal line" means the file
/// is not a journal and the caller should say so, not guess.
pub fn parse_flat_object(s: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    if b.get(pos) != Some(&b'{') {
        return Err("expected `{`".to_owned());
    }
    pos += 1;
    let mut pairs = Vec::new();
    skip_ws(b, &mut pos);
    if b.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(b, &mut pos);
            let key = parse_string(s, b, &mut pos)?;
            skip_ws(b, &mut pos);
            if b.get(pos) != Some(&b':') {
                return Err(format!("expected `:` after key {key:?}"));
            }
            pos += 1;
            skip_ws(b, &mut pos);
            let value = parse_scalar(s, b, &mut pos)?;
            pairs.push((key, value));
            skip_ws(b, &mut pos);
            match b.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err("expected `,` or `}`".to_owned()),
            }
        }
    }
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err("trailing bytes after the object".to_owned());
    }
    Ok(pairs)
}

fn parse_scalar(s: &str, b: &[u8], pos: &mut usize) -> Result<FlatValue, String> {
    match b.get(*pos) {
        Some(b'"') => Ok(FlatValue::Str(parse_string(s, b, pos)?)),
        Some(b't') if literal(b, pos, b"true") => Ok(FlatValue::Bool(true)),
        Some(b'f') if literal(b, pos, b"false") => Ok(FlatValue::Bool(false)),
        Some(b'n') if literal(b, pos, b"null") => Ok(FlatValue::Null),
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            if !number(b, pos) {
                return Err(format!("malformed number at byte {start}"));
            }
            let text = &s[start..*pos];
            if text.contains(['.', 'e', 'E']) {
                text.parse::<f64>().map(FlatValue::F64).ok()
            } else if text.starts_with('-') {
                text.parse::<i64>().map(FlatValue::I64).ok()
            } else {
                text.parse::<u64>().map(FlatValue::U64).ok()
            }
            .or_else(|| text.parse::<f64>().map(FlatValue::F64).ok())
            .ok_or_else(|| format!("unreadable number {text:?}"))
        }
        Some(b'{' | b'[') => Err("nested values are not allowed in a flat object".to_owned()),
        _ => Err(format!("expected a scalar value at byte {}", *pos)),
    }
}

/// Parse and unescape a JSON string literal starting at `pos`.
fn parse_string(s: &str, b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected a string at byte {}", *pos));
    }
    let start = *pos;
    if !string(b, pos) {
        return Err(format!("unterminated or malformed string at byte {start}"));
    }
    // `string` validated the syntax; walk the interior chars to unescape.
    let interior = &s[start + 1..*pos - 1];
    let mut out = String::with_capacity(interior.len());
    let mut chars = interior.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape \\u{hex}"))?;
                // Surrogate pairs are not emitted by our writer; map
                // lone surrogates to the replacement character.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err("dangling escape".to_owned()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_produces_valid_json_strings() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "back\\slash", "\u{1}ctl"] {
            let mut out = String::new();
            escape_into(&mut out, s);
            assert!(is_valid(&out), "escaped {s:?} -> {out}");
        }
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for s in [
            "{}",
            "[]",
            "0",
            "-12.5e3",
            "true",
            "null",
            "\"x\"",
            r#"{"a": 1, "b": [true, null, "s\n"], "c": {"d": -2.5}}"#,
            r#"  {"t_us": 12, "kind": "span_open"}  "#,
        ] {
            assert!(is_valid(s), "{s}");
        }
    }

    #[test]
    fn flat_objects_parse_back() {
        let pairs = parse_flat_object(
            r#"{"t_us":12, "kind":"event", "neg":-3, "pi":2.5, "ok":true, "gone":null, "s":"a\nb\"c\\dA"}"#,
        )
        .unwrap();
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone());
        assert_eq!(get("t_us"), Some(FlatValue::U64(12)));
        assert_eq!(get("kind"), Some(FlatValue::Str("event".into())));
        assert_eq!(get("neg"), Some(FlatValue::I64(-3)));
        assert_eq!(get("pi"), Some(FlatValue::F64(2.5)));
        assert_eq!(get("ok"), Some(FlatValue::Bool(true)));
        assert_eq!(get("gone"), Some(FlatValue::Null));
        assert_eq!(get("s"), Some(FlatValue::Str("a\nb\"c\\dA".into())));
        assert_eq!(parse_flat_object("{}").unwrap(), vec![]);
    }

    #[test]
    fn flat_object_parser_rejects_nesting_and_garbage() {
        for bad in [
            "",
            "[1]",
            "{\"a\": {\"b\": 1}}",
            "{\"a\": [1]}",
            "{\"a\": 1} trailing",
            "{\"a\" 1}",
            "{\"a\": 01x}",
            "{\"a\": \"unterminated}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for s in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{\"a\":1}{\"b\":2}",
            "nulL",
            "1.",
            "- 1",
        ] {
            assert!(!is_valid(s), "{s}");
        }
    }
}
