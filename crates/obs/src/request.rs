//! Thread-scoped ambient request ids.
//!
//! A server assigns every request a monotonic id and [`enter`]s it on
//! the thread that handles the request; every journal record emitted
//! while the guard lives — span opens and closes, free-standing events
//! — is stamped with a `req` field, so one request's span tree can be
//! extracted from a journal interleaved across many concurrent
//! requests. Engines that fan work out over worker threads re-enter
//! the id inside each worker (the id rides on
//! `rde_faults::ExecContext::request_id`), so worker-attributed events
//! carry it too.
//!
//! Like spans, the whole mechanism compiles out behind the `trace`
//! feature: with the feature off [`enter`] returns an inert guard,
//! [`current`] is a constant `0`, and no record ever grows a `req`
//! field.

#[cfg(feature = "trace")]
mod imp {
    use std::cell::Cell;

    thread_local! {
        // Request id 0 is reserved for "no request".
        static CURRENT: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn set(id: u64) -> u64 {
        CURRENT.with(|c| c.replace(id))
    }

    pub(super) fn current() -> u64 {
        CURRENT.with(Cell::get)
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    #[inline(always)]
    pub(super) fn current() -> u64 {
        0
    }
}

/// The calling thread's ambient request id (`0` when none is entered
/// or the `trace` feature is compiled out).
#[inline]
pub fn current() -> u64 {
    imp::current()
}

/// Install `id` as the calling thread's ambient request id for the
/// lifetime of the returned guard; the previous id (usually `0`) is
/// restored on drop. Entering `0` is a no-op guard, so callers can
/// thread an optional id unconditionally.
pub fn enter(id: u64) -> RequestGuard {
    #[cfg(feature = "trace")]
    {
        if id == 0 {
            return RequestGuard { prev: None };
        }
        RequestGuard { prev: Some(imp::set(id)) }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = id;
        RequestGuard {}
    }
}

/// Scope guard for an ambient request id; see [`enter`].
#[must_use = "the request id is uninstalled when the guard drops; bind it to a variable"]
pub struct RequestGuard {
    #[cfg(feature = "trace")]
    prev: Option<u64>,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(prev) = self.prev.take() {
            imp::set(prev);
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_restore() {
        assert_eq!(current(), 0);
        {
            let _a = enter(7);
            assert_eq!(current(), 7);
            {
                let _b = enter(9);
                assert_eq!(current(), 9);
            }
            assert_eq!(current(), 7);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn zero_is_an_inert_guard() {
        let _outer = enter(3);
        let _zero = enter(0);
        assert_eq!(current(), 3, "entering 0 must not clobber the live id");
    }

    #[test]
    fn ids_are_thread_scoped() {
        let _here = enter(11);
        std::thread::spawn(|| assert_eq!(current(), 0)).join().unwrap();
        assert_eq!(current(), 11);
    }
}
