//! # rde-obs
//!
//! The observability layer for the reverse-data-exchange engines:
//! structured tracing, a process-wide metrics registry, and a bounded
//! JSONL event journal — with **zero external dependencies** (the build
//! environment is offline, so `tracing`/`metrics` stand-ins live here).
//!
//! Three cooperating pieces:
//!
//! * [`span`] — RAII spans over thread-local span stacks with monotonic
//!   timestamps. A span emits `span_open`/`span_close` journal records;
//!   parentage is the enclosing span on the same thread. The whole
//!   tracing side compiles out behind the `trace` cargo feature: with
//!   the feature off every span/journal call site is an empty inline
//!   function and the journal provably emits nothing.
//! * [`metrics`] — named counters and log₂-scale histograms behind
//!   lock-free atomics. Registration takes a lock once per call site
//!   (the [`counter!`]/[`histogram!`] macros cache the handle in a
//!   `OnceLock`); the increment path is a relaxed atomic add. Metrics
//!   are **not** feature-gated — snapshots feed `--metrics` and the
//!   benchmark baselines even in no-trace builds.
//! * [`journal`] — a bounded JSONL sink (file, stderr, or in-memory)
//!   recording span boundaries, chase rounds, tgd firings, budget
//!   exhaustions, and cache hit/miss events. Every line is one JSON
//!   object; a capacity cap drops excess records and reports the count
//!   in a final `journal_truncated` record.
//!
//! Layered on those: [`request`] installs a thread-scoped request id
//! that stamps a `req` field onto every journal record (the serve
//! daemon's end-to-end attribution), [`metrics::labeled_counter`] and
//! friends key series by `(name, labels)` for per-op × per-mapping
//! breakdowns, and [`expo`] renders a snapshot in Prometheus-style
//! text exposition for the `METRICS` wire op.
//!
//! Metric names follow `crate.subsystem.event` (for example
//! `chase.triggers.fired`, `hom.search.nodes`, `core.arrow.misses`);
//! journal record names reuse the same convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; the
// seed-sweep suite in rde-faults depends on it. Test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod expo;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod request;
pub mod span;

pub use journal::{event, Field, Record, Sink};
pub use metrics::{
    labeled_counter, labeled_gauge, labeled_histogram, snapshot, Counter, Gauge, Histogram,
    Snapshot,
};
pub use span::{span, Span};
