//! The bounded JSONL event journal.
//!
//! One process-wide journal with a pluggable sink: a file, stderr, or
//! an in-memory buffer (the `profile` CLI subcommand and the tests use
//! the latter to read structured records back without re-parsing).
//! Every record renders as a single-line JSON object:
//!
//! ```json
//! {"t_us":123,"kind":"span_open","name":"chase.round","span":7,"parent":3,"round":1}
//! {"t_us":456,"kind":"span_close","name":"chase.round","span":7,"elapsed_us":333,"fired":5}
//! {"t_us":789,"kind":"event","name":"core.arrow.miss","span":7,"class_a":0,"class_b":2}
//! ```
//!
//! The journal is **bounded**: past the attached capacity records are
//! counted and dropped, and the drop count surfaces as one final
//! `journal_truncated` record at detach time. Emission when no sink
//! is attached (or with the `trace` feature compiled out) costs one
//! relaxed atomic load.
//!
//! Records emitted while a request id is installed on the thread (see
//! [`crate::request`]) carry a `req` field, so concurrent requests'
//! records can be pulled apart after the fact. A per-thread **capture
//! mode** ([`capture_begin`]/[`capture_take`]/[`append`]) buffers a
//! request's records without touching the shared sink; the server's
//! slow-request sampler replays the buffer only for requests that
//! exceeded its threshold. A sink write that fails mid-stream leaves a
//! `journal.io_drop` marker (stamped with the lost record's request
//! id) instead of a silent hole.
//!
//! The sink itself is process-wide (there is one journal file), but
//! fault injection into it is **scoped**: [`attach_scoped`] takes the
//! [`rde_faults::FaultInjector`] of the context that owns the sink, so
//! `obs.journal.write` faults fire only for the campaign that asked
//! for them.

use std::fmt::Write as _;

use crate::json;

/// One field value attached to a journal record.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rendered with enough digits to round-trip).
    F64(f64),
    /// String (JSON-escaped on render).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Field<'_> {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<u32> for Field<'_> {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}
impl From<usize> for Field<'_> {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<i64> for Field<'_> {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}
impl From<f64> for Field<'_> {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl<'a> From<&'a str> for Field<'a> {
    fn from(v: &'a str) -> Self {
        Field::Str(v)
    }
}
impl From<bool> for Field<'_> {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

/// An owned field value (what [`Record`] stores).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedField {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl OwnedField {
    fn render_into(&self, out: &mut String) {
        match self {
            OwnedField::U64(v) => {
                let _ = write!(out, "{v}");
            }
            OwnedField::I64(v) => {
                let _ = write!(out, "{v}");
            }
            OwnedField::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            OwnedField::Str(s) => json::escape_into(out, s),
            OwnedField::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    /// The value as `u64`, when it is one (convenience for tests and
    /// the profile tree builder).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            OwnedField::U64(v) => Some(v),
            _ => None,
        }
    }
}

impl From<Field<'_>> for OwnedField {
    fn from(f: Field<'_>) -> Self {
        match f {
            Field::U64(v) => OwnedField::U64(v),
            Field::I64(v) => OwnedField::I64(v),
            Field::F64(v) => OwnedField::F64(v),
            Field::Str(s) => OwnedField::Str(s.to_owned()),
            Field::Bool(b) => OwnedField::Bool(b),
        }
    }
}

/// One journal record. The memory sink retains these structurally so
/// the `profile` subcommand can rebuild span trees without parsing the
/// JSON it just wrote.
#[derive(Debug, Clone)]
pub struct Record {
    /// Microseconds since the journal epoch (process-local monotonic
    /// clock; the first touch of the journal pins the epoch).
    pub t_us: u64,
    /// Record kind: `span_open`, `span_close`, `event`, or
    /// `journal_truncated`.
    pub kind: &'static str,
    /// Record name (`crate.subsystem.event` convention).
    pub name: String,
    /// Span id this record belongs to (`0` = none).
    pub span: u64,
    /// Parent span id (`span_open` only; `0` = root).
    pub parent: u64,
    /// Span duration (`span_close` only).
    pub elapsed_us: Option<u64>,
    /// Additional key/value fields.
    pub fields: Vec<(String, OwnedField)>,
}

impl Record {
    /// Render the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"t_us\":{},\"kind\":\"{}\",\"name\":", self.t_us, self.kind);
        json::escape_into(&mut out, &self.name);
        if self.span != 0 {
            let _ = write!(out, ",\"span\":{}", self.span);
        }
        if self.kind == "span_open" {
            let _ = write!(out, ",\"parent\":{}", self.parent);
        }
        if let Some(us) = self.elapsed_us {
            let _ = write!(out, ",\"elapsed_us\":{us}");
        }
        for (k, v) in &self.fields {
            out.push(',');
            json::escape_into(&mut out, k);
            out.push(':');
            v.render_into(&mut out);
        }
        out.push('}');
        out
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&OwnedField> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The request id stamped on this record (`0` when it was emitted
    /// outside any request scope).
    pub fn req(&self) -> u64 {
        self.field("req").and_then(OwnedField::as_u64).unwrap_or(0)
    }

    /// Parse a journal line (the [`Record::to_json_line`] form) back
    /// into a record. The profile CLI uses this to analyze journal
    /// *files* written by another process; the memory sink never needs
    /// it.
    pub fn parse_json_line(line: &str) -> Result<Record, String> {
        let pairs = json::parse_flat_object(line)?;
        let mut rec = Record {
            t_us: 0,
            kind: "",
            name: String::new(),
            span: 0,
            parent: 0,
            elapsed_us: None,
            fields: Vec::new(),
        };
        for (key, value) in pairs {
            let as_u64 = |v: &json::FlatValue| match *v {
                json::FlatValue::U64(n) => Some(n),
                _ => None,
            };
            match key.as_str() {
                "t_us" => rec.t_us = as_u64(&value).ok_or("t_us must be a non-negative integer")?,
                "span" => rec.span = as_u64(&value).ok_or("span must be a non-negative integer")?,
                "parent" => {
                    rec.parent = as_u64(&value).ok_or("parent must be a non-negative integer")?
                }
                "elapsed_us" => {
                    rec.elapsed_us =
                        Some(as_u64(&value).ok_or("elapsed_us must be a non-negative integer")?)
                }
                "kind" => {
                    let json::FlatValue::Str(k) = &value else {
                        return Err("kind must be a string".to_owned());
                    };
                    rec.kind = match k.as_str() {
                        "span_open" => "span_open",
                        "span_close" => "span_close",
                        "event" => "event",
                        "journal_truncated" => "journal_truncated",
                        other => return Err(format!("unknown record kind {other:?}")),
                    };
                }
                "name" => {
                    let json::FlatValue::Str(n) = value else {
                        return Err("name must be a string".to_owned());
                    };
                    rec.name = n;
                }
                _ => {
                    let field = match value {
                        json::FlatValue::U64(n) => OwnedField::U64(n),
                        json::FlatValue::I64(n) => OwnedField::I64(n),
                        json::FlatValue::F64(x) => OwnedField::F64(x),
                        json::FlatValue::Str(s) => OwnedField::Str(s),
                        json::FlatValue::Bool(b) => OwnedField::Bool(b),
                        // The writer renders non-finite floats as null;
                        // NaN round-trips back to null.
                        json::FlatValue::Null => OwnedField::F64(f64::NAN),
                    };
                    rec.fields.push((key, field));
                }
            }
        }
        if rec.kind.is_empty() {
            return Err("record has no kind".to_owned());
        }
        if rec.name.is_empty() {
            return Err("record has no name".to_owned());
        }
        Ok(rec)
    }
}

/// Where journal records go.
#[derive(Debug, Clone)]
pub enum Sink {
    /// Append JSON lines to a file (created/truncated at attach).
    File(std::path::PathBuf),
    /// Like [`Sink::File`], but rotate the file once it would exceed
    /// `max_bytes`: `path` is renamed to `path.1`, `path.1` to
    /// `path.2`, … keeping at most `keep` rotated files. Records are
    /// never split across files, so every file stays valid JSONL.
    Rotating {
        /// Path of the live journal file.
        path: std::path::PathBuf,
        /// Size threshold (bytes) that triggers rotation. A record that
        /// would push the live file past this bound rotates first; a
        /// single record larger than the bound still gets its own file.
        max_bytes: u64,
        /// How many rotated files (`path.1` … `path.keep`) to retain.
        /// `0` discards the old file on rotation.
        keep: usize,
    },
    /// Write JSON lines to stderr.
    Stderr,
    /// Retain structured [`Record`]s in memory; collect them with
    /// [`detach`].
    Memory,
}

impl Sink {
    /// A size-capped rotating file sink (see [`Sink::Rotating`]).
    pub fn rotating(path: impl Into<std::path::PathBuf>, max_bytes: u64, keep: usize) -> Self {
        Sink::Rotating { path: path.into(), max_bytes, keep }
    }
}

/// What [`detach`] hands back.
#[derive(Debug, Default)]
pub struct JournalSummary {
    /// Retained records (memory sink only; empty for file/stderr).
    pub records: Vec<Record>,
    /// Records written (not counting any dropped).
    pub written: usize,
    /// Records dropped by the capacity bound.
    pub dropped: u64,
    /// Records lost to I/O errors on the sink. Whole records are
    /// skipped on error, so the file contents stay valid JSONL; a file
    /// sink holds exactly `written - io_errors` lines.
    pub io_errors: u64,
}

#[cfg(feature = "trace")]
mod imp {
    use std::cell::{Cell, RefCell};
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    use super::{Field, JournalSummary, OwnedField, Record, Sink};

    enum Out {
        File(std::io::BufWriter<std::fs::File>),
        Rotating(Rotating),
        Stderr,
        Memory(Vec<Record>),
    }

    /// A size-capped file writer that shifts `path` → `path.1` → …
    /// → `path.keep` whenever the live file would exceed `max_bytes`.
    struct Rotating {
        w: std::io::BufWriter<std::fs::File>,
        path: std::path::PathBuf,
        max_bytes: u64,
        keep: usize,
        /// Bytes written to the live file so far.
        bytes: u64,
    }

    impl Rotating {
        fn open(path: std::path::PathBuf, max_bytes: u64, keep: usize) -> std::io::Result<Self> {
            let w = std::io::BufWriter::new(std::fs::File::create(&path)?);
            Ok(Rotating { w, path, max_bytes, keep, bytes: 0 })
        }

        fn rotated(&self, i: usize) -> std::path::PathBuf {
            let mut s = self.path.as_os_str().to_owned();
            s.push(format!(".{i}"));
            std::path::PathBuf::from(s)
        }

        fn rotate(&mut self) -> std::io::Result<()> {
            self.w.flush()?;
            if self.keep == 0 {
                // No history retained: truncate in place.
                self.w = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
                self.bytes = 0;
                return Ok(());
            }
            for i in (1..self.keep).rev() {
                let from = self.rotated(i);
                if from.exists() {
                    std::fs::rename(&from, self.rotated(i + 1))?;
                }
            }
            std::fs::rename(&self.path, self.rotated(1))?;
            self.w = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
            self.bytes = 0;
            Ok(())
        }

        fn write_line(&mut self, line: &str) -> std::io::Result<()> {
            let len = line.len() as u64 + 1;
            if self.bytes > 0 && self.bytes + len > self.max_bytes {
                self.rotate()?;
            }
            writeln!(self.w, "{line}")?;
            self.bytes += len;
            Ok(())
        }
    }

    struct State {
        out: Out,
        capacity: usize,
        written: usize,
        dropped: u64,
        io_errors: u64,
        /// The attaching context's fault injector: `obs.journal.write`
        /// faults belong to the campaign that owns this sink, not to
        /// whatever campaign happens to be live elsewhere.
        injector: rde_faults::FaultInjector,
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<State>> = Mutex::new(None);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Cap on a thread's capture buffer: enough for any realistic
    /// request's span tree, small enough that a runaway request cannot
    /// hold the heap hostage.
    const CAPTURE_CAP: usize = 1 << 14;

    thread_local! {
        // Capture mode: while `CAPTURING` is set, this thread's records
        // are diverted into `CAPTURE` instead of the shared sink — the
        // slow-request sampler decides after the fact whether to keep
        // them. Thread-local on purpose: capture must not take the
        // STATE lock or interleave with other threads.
        static CAPTURING: Cell<bool> = const { Cell::new(false) };
        static CAPTURE: RefCell<Vec<Record>> = const { RefCell::new(Vec::new()) };
        static CAPTURE_DROPPED: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn now_us() -> u64 {
        u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    pub(super) fn enabled() -> bool {
        ACTIVE.load(Ordering::Relaxed) || CAPTURING.with(Cell::get)
    }

    pub(super) fn capture_begin() {
        CAPTURING.with(|c| c.set(true));
        CAPTURE.with(|c| c.borrow_mut().clear());
        CAPTURE_DROPPED.with(|c| c.set(0));
    }

    pub(super) fn capture_take() -> Vec<Record> {
        CAPTURING.with(|c| c.set(false));
        let mut records = CAPTURE.with(|c| std::mem::take(&mut *c.borrow_mut()));
        let dropped = CAPTURE_DROPPED.with(Cell::take);
        if dropped > 0 {
            let mut fields = vec![("dropped".to_owned(), OwnedField::U64(dropped))];
            let req = crate::request::current();
            if req != 0 {
                fields.push(("req".to_owned(), OwnedField::U64(req)));
            }
            records.push(Record {
                t_us: now_us(),
                kind: "event",
                name: "journal.capture_truncated".to_owned(),
                span: 0,
                parent: 0,
                elapsed_us: None,
                fields,
            });
        }
        records
    }

    fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
        STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(super) fn attach(
        sink: Sink,
        capacity: usize,
        injector: rde_faults::FaultInjector,
    ) -> std::io::Result<()> {
        let out = match sink {
            Sink::File(path) => Out::File(std::io::BufWriter::new(std::fs::File::create(path)?)),
            Sink::Rotating { path, max_bytes, keep } => {
                Out::Rotating(Rotating::open(path, max_bytes, keep)?)
            }
            Sink::Stderr => Out::Stderr,
            Sink::Memory => Out::Memory(Vec::new()),
        };
        let mut guard = lock();
        if let Some(old) = guard.take() {
            finish(old);
        }
        *guard = Some(State { out, capacity, written: 0, dropped: 0, io_errors: 0, injector });
        ACTIVE.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Flush a retiring state, appending the truncation marker if the
    /// capacity bound dropped anything, and return its summary.
    fn finish(mut state: State) -> JournalSummary {
        if state.dropped > 0 {
            let marker = Record {
                t_us: now_us(),
                kind: "journal_truncated",
                name: "journal.truncated".to_owned(),
                span: 0,
                parent: 0,
                elapsed_us: None,
                fields: vec![("dropped".to_owned(), OwnedField::U64(state.dropped))],
            };
            if write_record(&mut state.out, &state.injector, marker).is_err() {
                state.io_errors += 1;
            }
        }
        let records = match state.out {
            Out::File(mut w) => {
                let _ = w.flush();
                Vec::new()
            }
            Out::Rotating(mut rot) => {
                let _ = rot.w.flush();
                Vec::new()
            }
            Out::Stderr => Vec::new(),
            Out::Memory(records) => records,
        };
        JournalSummary {
            records,
            written: state.written,
            dropped: state.dropped,
            io_errors: state.io_errors,
        }
    }

    /// Write one record to the sink. On error the whole record is
    /// skipped (never a partial line), so file sinks stay valid JSONL;
    /// callers count the loss in `State::io_errors`.
    fn write_record(
        out: &mut Out,
        injector: &rde_faults::FaultInjector,
        record: Record,
    ) -> std::io::Result<()> {
        rde_faults::fault_point!(
            injector,
            "obs.journal.write",
            std::io::Error::other("injected journal write failure")
        );
        match out {
            Out::File(w) => writeln!(w, "{}", record.to_json_line())?,
            Out::Rotating(rot) => rot.write_line(&record.to_json_line())?,
            Out::Stderr => {
                eprintln!("{}", record.to_json_line());
            }
            Out::Memory(v) => v.push(record),
        }
        Ok(())
    }

    pub(super) fn detach() -> Option<JournalSummary> {
        let mut guard = lock();
        ACTIVE.store(false, Ordering::Relaxed);
        guard.take().map(finish)
    }

    pub(super) fn flush() {
        let mut guard = lock();
        match guard.as_mut() {
            Some(State { out: Out::File(w), .. }) => {
                let _ = w.flush();
            }
            Some(State { out: Out::Rotating(rot), .. }) => {
                let _ = rot.w.flush();
            }
            _ => {}
        }
    }

    /// Write `record`; on I/O failure count the loss and best-effort
    /// append a `journal.io_drop` marker carrying the lost record's
    /// request id, so an access-log consumer can tell a short trace
    /// from one with a hole in it. (Before this marker existed, a
    /// rotating-sink write failure silently dropped whole event groups
    /// mid-request and only `io_errors` hinted at it.)
    fn write_or_mark(state: &mut State, record: Record) {
        let req = record.req();
        let State { out, injector, io_errors, written, .. } = state;
        if write_record(out, injector, record).is_ok() {
            return;
        }
        *io_errors += 1;
        let mut fields = vec![("lost".to_owned(), OwnedField::U64(1))];
        if req != 0 {
            fields.push(("req".to_owned(), OwnedField::U64(req)));
        }
        let marker = Record {
            t_us: now_us(),
            kind: "event",
            name: "journal.io_drop".to_owned(),
            span: 0,
            parent: 0,
            elapsed_us: None,
            fields,
        };
        *written += 1;
        if write_record(out, injector, marker).is_err() {
            *io_errors += 1;
        }
    }

    pub(super) fn emit(
        kind: &'static str,
        name: &str,
        span: u64,
        parent: u64,
        elapsed_us: Option<u64>,
        fields: &[(&str, Field<'_>)],
    ) {
        let capturing = CAPTURING.with(Cell::get);
        if !capturing && !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let t_us = now_us();
        let mut owned: Vec<(String, OwnedField)> =
            fields.iter().map(|&(k, v)| (k.to_owned(), v.into())).collect();
        let req = crate::request::current();
        if req != 0 {
            owned.push(("req".to_owned(), OwnedField::U64(req)));
        }
        let record =
            Record { t_us, kind, name: name.to_owned(), span, parent, elapsed_us, fields: owned };
        if capturing {
            CAPTURE.with(|c| {
                let mut buf = c.borrow_mut();
                if buf.len() >= CAPTURE_CAP {
                    CAPTURE_DROPPED.with(|d| d.set(d.get() + 1));
                } else {
                    buf.push(record);
                }
            });
            return;
        }
        let mut guard = lock();
        let Some(state) = guard.as_mut() else {
            return;
        };
        if state.written >= state.capacity {
            state.dropped += 1;
            return;
        }
        state.written += 1;
        write_or_mark(state, record);
    }

    /// Append a pre-built record to the shared sink (the slow-request
    /// dump path: records buffered by capture mode get replayed here).
    pub(super) fn append(record: Record) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = lock();
        let Some(state) = guard.as_mut() else {
            return;
        };
        if state.written >= state.capacity {
            state.dropped += 1;
            return;
        }
        state.written += 1;
        write_or_mark(state, record);
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{Field, JournalSummary, Record, Sink};

    pub(super) fn now_us() -> u64 {
        0
    }
    pub(super) fn enabled() -> bool {
        false
    }
    pub(super) fn capture_begin() {}
    pub(super) fn capture_take() -> Vec<Record> {
        Vec::new()
    }
    #[inline(always)]
    pub(super) fn append(_record: Record) {}
    pub(super) fn attach(
        _sink: Sink,
        _capacity: usize,
        _injector: rde_faults::FaultInjector,
    ) -> std::io::Result<()> {
        Ok(())
    }
    pub(super) fn detach() -> Option<JournalSummary> {
        None
    }
    pub(super) fn flush() {}
    #[inline(always)]
    pub(super) fn emit(
        _kind: &'static str,
        _name: &str,
        _span: u64,
        _parent: u64,
        _elapsed_us: Option<u64>,
        _fields: &[(&str, Field<'_>)],
    ) {
    }
}

/// Attach a journal sink with a record capacity. Replaces (and
/// flushes) any previously attached sink. With the `trace` feature
/// compiled out this is a no-op that still returns `Ok`.
pub fn attach(sink: Sink, capacity: usize) -> std::io::Result<()> {
    imp::attach(sink, capacity, rde_faults::FaultInjector::inert())
}

/// Like [`attach`], but the sink's writes consult `injector` at the
/// `obs.journal.write` fault point — the injection campaign is scoped
/// to the context that owns this sink rather than ambient.
pub fn attach_scoped(
    sink: Sink,
    capacity: usize,
    injector: rde_faults::FaultInjector,
) -> std::io::Result<()> {
    imp::attach(sink, capacity, injector)
}

/// Tear down the journal: flush file sinks, append a
/// `journal_truncated` marker if the capacity bound dropped records,
/// and return the summary (with retained records for the memory sink).
/// Returns `None` when no sink was attached.
pub fn detach() -> Option<JournalSummary> {
    imp::detach()
}

/// Flush a file sink's buffered lines to disk.
pub fn flush() {
    imp::flush()
}

/// Begin diverting the calling thread's records into a per-thread
/// capture buffer instead of the shared sink. The slow-request sampler
/// uses this to buffer a request's whole span tree and decide *after*
/// the request whether it was slow enough to keep: [`capture_take`]
/// returns the buffer, and [`append`] replays kept records into the
/// sink. While capturing, [`enabled`] reports `true` on this thread
/// even with no sink attached. The buffer is bounded; overflow is
/// counted and surfaces as a `journal.capture_truncated` event at take
/// time. No-op without the `trace` feature.
pub fn capture_begin() {
    imp::capture_begin()
}

/// Stop capturing on the calling thread and return the buffered
/// records (empty if [`capture_begin`] was never called, or with the
/// `trace` feature compiled out).
pub fn capture_take() -> Vec<Record> {
    imp::capture_take()
}

/// Append a pre-built record directly to the attached sink, subject to
/// the same capacity bound and I/O accounting as live emission. This
/// is how capture-mode buffers get replayed; records keep their
/// original timestamps and request stamps.
pub fn append(record: Record) {
    imp::append(record)
}

/// Is a sink attached (and the `trace` feature compiled in)? One
/// relaxed atomic load — cheap enough to guard field construction on
/// hot paths.
pub fn enabled() -> bool {
    imp::enabled()
}

/// Microseconds since the journal epoch.
pub fn now_us() -> u64 {
    imp::now_us()
}

/// Emit a free-standing event record, attributed to the calling
/// thread's current span (if any).
pub fn event(name: &str, fields: &[(&str, Field<'_>)]) {
    if !imp::enabled() {
        return;
    }
    imp::emit("event", name, crate::span::current_span_id(), 0, None, fields);
}

#[cfg(feature = "trace")]
pub(crate) fn emit_span(
    kind: &'static str,
    name: &str,
    span: u64,
    parent: u64,
    elapsed_us: Option<u64>,
    fields: &[(&str, Field<'_>)],
) {
    imp::emit(kind, name, span, parent, elapsed_us, fields);
}
