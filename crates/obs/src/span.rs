//! RAII spans over thread-local span stacks.
//!
//! [`span`] opens a span (emitting a `span_open` journal record) and
//! returns a guard; dropping the guard — or calling
//! [`Span::close_with`] to attach result fields — emits the matching
//! `span_close` with `elapsed_us`. Parentage is the nearest enclosing
//! open span **on the same thread**; worker threads therefore start
//! fresh root spans unless they open one themselves.
//!
//! When no journal sink is installed (or the `trace` feature is
//! compiled out) opening a span is one relaxed atomic load and the
//! guard is inert.

#[cfg(feature = "trace")]
use crate::journal;
use crate::journal::Field;

#[cfg(feature = "trace")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    // Span id 0 is reserved for "no span".
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn fresh_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    pub(super) fn push(id: u64) -> u64 {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        })
    }

    pub(super) fn pop(id: u64) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards close in LIFO order on a given thread, but be
            // defensive about a guard moved across threads.
            if s.last() == Some(&id) {
                s.pop();
            } else if let Some(i) = s.iter().rposition(|&x| x == id) {
                s.remove(i);
            }
        })
    }

    pub(super) fn current() -> u64 {
        STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    pub(super) fn current() -> u64 {
        0
    }
}

/// The calling thread's innermost open span id (`0` if none). Events
/// use this for attribution.
pub(crate) fn current_span_id() -> u64 {
    imp::current()
}

/// An open span. Dropping it closes the span; prefer
/// [`Span::close_with`] when there are result fields to attach.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    #[cfg(feature = "trace")]
    inner: Option<SpanInner>,
}

#[cfg(feature = "trace")]
struct SpanInner {
    id: u64,
    name: &'static str,
    opened_us: u64,
}

/// Open a span named `name`, emitting a `span_open` record with the
/// given fields. Inert (and allocation-free) when the journal is
/// disabled.
pub fn span(name: &'static str, fields: &[(&str, Field<'_>)]) -> Span {
    #[cfg(feature = "trace")]
    {
        if !journal::enabled() {
            return Span { inner: None };
        }
        let id = imp::fresh_id();
        let parent = imp::push(id);
        let opened_us = journal::now_us();
        journal::emit_span("span_open", name, id, parent, None, fields);
        Span { inner: Some(SpanInner { id, name, opened_us }) }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, fields);
        Span {}
    }
}

impl Span {
    /// This span's id (`0` when tracing is off or the journal is
    /// disabled).
    pub fn id(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.inner.as_ref().map_or(0, |s| s.id)
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Close the span now, attaching `fields` to the `span_close`
    /// record.
    pub fn close_with(mut self, fields: &[(&str, Field<'_>)]) {
        #[cfg(feature = "trace")]
        self.close(fields);
        #[cfg(not(feature = "trace"))]
        {
            let _ = (&mut self, fields);
        }
    }

    #[cfg(feature = "trace")]
    fn close(&mut self, fields: &[(&str, Field<'_>)]) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        imp::pop(inner.id);
        let elapsed = journal::now_us().saturating_sub(inner.opened_us);
        journal::emit_span("span_close", inner.name, inner.id, 0, Some(elapsed), fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        self.close(&[]);
    }
}
