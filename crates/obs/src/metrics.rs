//! Process-wide metrics registry: named counters and log₂-scale
//! histograms.
//!
//! Registration (by name, `crate.subsystem.event` convention) takes a
//! registry lock once; the returned handle is `&'static` and every
//! subsequent update is a relaxed atomic operation — safe and cheap to
//! call from parallel chase workers. The [`counter!`]/[`histogram!`]
//! macros cache the handle per call site in a `OnceLock`, so hot loops
//! never touch the registry lock.
//!
//! Unlike spans and the journal, metrics are **not** gated behind the
//! `trace` feature: `--metrics` snapshots and the benchmark baselines
//! need them in no-trace builds too.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log₂-scale histogram of `u64` samples. Bucket `0` holds the
/// value `0`; bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Each
/// bucket, the sample count, and the sample sum are separate relaxed
/// atomics, so a snapshot taken while writers are active may be
/// momentarily skewed by in-flight samples; quiescent snapshots are
/// exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (`2^i - 1`; bucket 0 holds
/// only zero).
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (in `[0,1]`)
    /// — a conservative estimate within a factor of two of the true
    /// value.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// A last-value-wins level metric (cache occupancy, in-flight request
/// count). Unlike a [`Counter`] it can go down; unlike a [`Histogram`]
/// a snapshot reports the *current* level, not a distribution.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating at zero: a racing mix of
    /// add/sub may momentarily observe zero rather than wrapping).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
    Gauge(&'static Gauge),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The labeled registry, keyed by `(name, canonical label string)`.
/// Kept separate from the unlabeled one so the hot `counter!` macros
/// stay `&'static str`-keyed and allocation-free.
static LABELED: Mutex<BTreeMap<(&'static str, String), Metric>> = Mutex::new(BTreeMap::new());

fn labeled_registry() -> std::sync::MutexGuard<'static, BTreeMap<(&'static str, String), Metric>> {
    LABELED.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Render `labels` in canonical form: sorted by key, each pair as
/// `key="value"` joined by commas, values escaped Prometheus-style
/// (`\\`, `\"`, `\n`). Two label slices describe the same series iff
/// their canonical forms are equal — the labeled registry keys on this
/// string, and the `METRICS` exposition emits it verbatim.
pub fn format_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out
}

/// Parse a canonical label string (the form [`format_labels`] renders)
/// back into key/value pairs. Returns `None` on anything malformed —
/// consumers reading an exposition off the wire should not guess.
pub fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = &rest[..eq];
        if key.is_empty() {
            return None;
        }
        let mut value = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let close = loop {
            let (i, ch) = chars.next()?;
            match ch {
                '\\' => match chars.next()?.1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    _ => return None,
                },
                '"' => break eq + 2 + i,
                _ => value.push(ch),
            }
        };
        pairs.push((key.to_owned(), value));
        rest = &rest[close + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return None;
            }
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(pairs)
}

fn labeled_metric(name: &'static str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
    let key = (name, format_labels(labels));
    // The Metric enum only holds `&'static` leaked handles, so handing
    // a copy out from under the lock is fine.
    *labeled_registry().entry(key).or_insert_with(make)
}

/// Fetch (registering on first use) the counter named `name` with
/// label set `labels`. Label order does not matter; the canonical
/// sorted form identifies the series. Takes the labeled-registry lock
/// on every call — fine for per-request bookkeeping, wrong for inner
/// loops (use the unlabeled [`counter!`] there).
///
/// Panics if the series is already registered with another type.
pub fn labeled_counter(name: &'static str, labels: &[(&str, &str)]) -> &'static Counter {
    match labeled_metric(name, labels, || Metric::Counter(Box::leak(Box::default()))) {
        Metric::Counter(c) => c,
        _ => panic!("labeled metric {name:?} is already registered with another type"),
    }
}

/// Fetch (registering on first use) the histogram named `name` with
/// label set `labels`; see [`labeled_counter`] for the locking story.
///
/// Panics if the series is already registered with another type.
pub fn labeled_histogram(name: &'static str, labels: &[(&str, &str)]) -> &'static Histogram {
    match labeled_metric(name, labels, || Metric::Histogram(Box::leak(Box::default()))) {
        Metric::Histogram(h) => h,
        _ => panic!("labeled metric {name:?} is already registered with another type"),
    }
}

/// Fetch (registering on first use) the gauge named `name` with label
/// set `labels`; see [`labeled_counter`] for the locking story.
///
/// Panics if the series is already registered with another type.
pub fn labeled_gauge(name: &'static str, labels: &[(&str, &str)]) -> &'static Gauge {
    match labeled_metric(name, labels, || Metric::Gauge(Box::leak(Box::default()))) {
        Metric::Gauge(g) => g,
        _ => panic!("labeled metric {name:?} is already registered with another type"),
    }
}

/// Fetch (registering on first use) the counter named `name`.
///
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &'static str) -> &'static Counter {
    match registry().entry(name).or_insert_with(|| Metric::Counter(Box::leak(Box::default()))) {
        Metric::Counter(c) => c,
        _ => panic!("metric {name:?} is already registered with another type"),
    }
}

/// Fetch (registering on first use) the histogram named `name`.
///
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &'static str) -> &'static Histogram {
    match registry().entry(name).or_insert_with(|| Metric::Histogram(Box::leak(Box::default()))) {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name:?} is already registered with another type"),
    }
}

/// Fetch (registering on first use) the gauge named `name`.
///
/// Panics if `name` is already registered with another metric type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    match registry().entry(name).or_insert_with(|| Metric::Gauge(Box::leak(Box::default()))) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name:?} is already registered with another type"),
    }
}

/// Fetch the counter named `$name`, caching the handle at the call
/// site so repeat hits skip the registry lock.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Fetch the histogram named `$name`, caching the handle at the call
/// site so repeat hits skip the registry lock.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Fetch the gauge named `$name`, caching the handle at the call site
/// so repeat hits skip the registry lock.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Labeled counter values as `(name, canonical labels, value)`,
    /// sorted by name then label string.
    pub labeled_counters: Vec<(String, String, u64)>,
    /// Labeled histogram states, same ordering.
    pub labeled_histograms: Vec<(String, String, HistogramSnapshot)>,
    /// Labeled gauge levels, same ordering.
    pub labeled_gauges: Vec<(String, String, u64)>,
}

/// Snapshot every registered metric, labeled and unlabeled.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    for (&name, metric) in registry().iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push((name.to_owned(), c.get())),
            Metric::Histogram(h) => snap.histograms.push((name.to_owned(), h.snapshot())),
            Metric::Gauge(g) => snap.gauges.push((name.to_owned(), g.get())),
        }
    }
    for ((name, labels), metric) in labeled_registry().iter() {
        let (name, labels) = ((*name).to_owned(), labels.clone());
        match metric {
            Metric::Counter(c) => snap.labeled_counters.push((name, labels, c.get())),
            Metric::Histogram(h) => snap.labeled_histograms.push((name, labels, h.snapshot())),
            Metric::Gauge(g) => snap.labeled_gauges.push((name, labels, g.get())),
        }
    }
    snap
}

impl Snapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The state of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The level of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The value of the labeled counter series `name{labels}`, where
    /// `labels` is in [`format_labels`] canonical form.
    pub fn labeled_counter(&self, name: &str, labels: &str) -> Option<u64> {
        self.labeled_counters.iter().find(|(n, l, _)| n == name && l == labels).map(|&(_, _, v)| v)
    }

    /// The state of the labeled histogram series `name{labels}`.
    pub fn labeled_histogram(&self, name: &str, labels: &str) -> Option<&HistogramSnapshot> {
        self.labeled_histograms.iter().find(|(n, l, _)| n == name && l == labels).map(|(_, _, h)| h)
    }

    /// The level of the labeled gauge series `name{labels}`.
    pub fn labeled_gauge(&self, name: &str, labels: &str) -> Option<u64> {
        self.labeled_gauges.iter().find(|(n, l, _)| n == name && l == labels).map(|&(_, _, v)| v)
    }

    /// Is there anything to show?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.gauges.is_empty()
            && self.labeled_counters.is_empty()
            && self.labeled_histograms.is_empty()
            && self.labeled_gauges.is_empty()
    }

    /// Render a human-readable table (the `--metrics` output). Labeled
    /// series appear in the same sections as their unlabeled peers,
    /// displayed as `name{labels}`.
    pub fn render(&self) -> String {
        let series = |labels: &str| {
            if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            }
        };
        let counters: Vec<(String, u64)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .chain(self.labeled_counters.iter().map(|(n, l, v)| (format!("{n}{}", series(l)), *v)))
            .collect();
        let gauges: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), *v))
            .chain(self.labeled_gauges.iter().map(|(n, l, v)| (format!("{n}{}", series(l)), *v)))
            .collect();
        let histograms: Vec<(String, &HistogramSnapshot)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h))
            .chain(self.labeled_histograms.iter().map(|(n, l, h)| (format!("{n}{}", series(l)), h)))
            .collect();
        let width = counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(histograms.iter().map(|(n, _)| n.len()))
            .chain(gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        if !counters.is_empty() {
            let _ = writeln!(out, "{:width$}  {:>12}", "counter", "value");
            for (name, value) in &counters {
                let _ = writeln!(out, "{name:width$}  {value:>12}");
            }
        }
        if !gauges.is_empty() {
            if !counters.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:width$}  {:>12}", "gauge", "level");
            for (name, value) in &gauges {
                let _ = writeln!(out, "{name:width$}  {value:>12}");
            }
        }
        if !histograms.is_empty() {
            if !counters.is_empty() || !gauges.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:width$}  {:>10} {:>14} {:>12} {:>10} {:>10}",
                "histogram", "count", "sum", "mean", "p50<=", "max"
            );
            for (name, h) in &histograms {
                let _ = writeln!(
                    out,
                    "{name:width$}  {:>10} {:>14} {:>12.1} {:>10} {:>10}",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.max
                );
            }
        }
        out
    }

    /// Render as a single JSON object (embedded in `BENCH_*.json`):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum, max, buckets: {bound: n, ...}}}, "labeled_counters":
    /// {"name{labels}": v, ...}, "labeled_gauges": {...},
    /// "labeled_histograms": {...}}`. Labeled series are keyed by their
    /// exposition-style `name{labels}` series string.
    pub fn to_json(&self) -> String {
        fn histogram_body(out: &mut String, h: &HistogramSnapshot) {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": {{",
                h.count, h.sum, h.max
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{}\": {n}", bucket_bound(b));
            }
            out.push_str("}}");
        }
        let series = |name: &str, labels: &str| format!("{name}{{{labels}}}");
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, name);
            out.push_str(": ");
            histogram_body(&mut out, h);
        }
        out.push_str("}, \"labeled_counters\": {");
        for (i, (name, labels, value)) in self.labeled_counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, &series(name, labels));
            let _ = write!(out, ": {value}");
        }
        out.push_str("}, \"labeled_gauges\": {");
        for (i, (name, labels, value)) in self.labeled_gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, &series(name, labels));
            let _ = write!(out, ": {value}");
        }
        out.push_str("}, \"labeled_histograms\": {");
        for (i, (name, labels, h)) in self.labeled_histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::escape_into(&mut out, &series(name, labels));
            out.push_str(": ");
            histogram_body(&mut out, h);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_bound(i)), i);
            if i < 64 {
                assert_eq!(bucket_of(bucket_bound(i) + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_aggregates_track_samples() {
        let h = Histogram::default();
        for v in [0, 1, 1, 3, 100, 4096] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 4201);
        assert_eq!(s.max, 4096);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[7], 1);
        assert_eq!(s.buckets[13], 1);
        assert!((s.mean() - 4201.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.5), 1);
    }

    #[test]
    fn snapshot_json_is_valid() {
        counter("test.metrics.json_counter").add(7);
        histogram("test.metrics.json_hist").record(9);
        gauge("test.metrics.json_gauge").set(3);
        let snap = snapshot();
        assert!(crate::json::is_valid(&snap.to_json()), "{}", snap.to_json());
        assert_eq!(snap.counter("test.metrics.json_counter"), Some(7));
        assert_eq!(snap.gauge("test.metrics.json_gauge"), Some(3));
    }

    #[test]
    fn labels_canonicalize_sorted_and_escaped() {
        assert_eq!(format_labels(&[]), "");
        assert_eq!(
            format_labels(&[("op", "CHASE"), ("mapping", "flights")]),
            "mapping=\"flights\",op=\"CHASE\"",
            "keys sort, so label order at the call site is irrelevant"
        );
        let tricky = format_labels(&[("m", "a\"b\\c\nd")]);
        assert_eq!(tricky, "m=\"a\\\"b\\\\c\\nd\"");
        assert_eq!(parse_labels(&tricky).unwrap(), vec![("m".into(), "a\"b\\c\nd".into())]);
        let canon = format_labels(&[("b", "2"), ("a", "1")]);
        assert_eq!(parse_labels(&canon).unwrap().len(), 2);
        assert_eq!(parse_labels("").unwrap(), vec![]);
        for bad in ["=\"v\"", "k=v", "k=\"v", "k=\"v\",", "k=\"v\"x"] {
            assert!(parse_labels(bad).is_none(), "must reject {bad:?}");
        }
    }

    #[test]
    fn labeled_series_are_distinct_and_snapshot() {
        labeled_counter("test.metrics.labeled", &[("op", "A"), ("m", "x")]).add(2);
        labeled_counter("test.metrics.labeled", &[("m", "x"), ("op", "A")]).add(3);
        labeled_counter("test.metrics.labeled", &[("op", "B"), ("m", "x")]).inc();
        labeled_histogram("test.metrics.labeled_us", &[("m", "x")]).record(7);
        labeled_gauge("test.metrics.labeled_gauge", &[("m", "x")]).set(9);
        let snap = snapshot();
        assert_eq!(
            snap.labeled_counter("test.metrics.labeled", "m=\"x\",op=\"A\""),
            Some(5),
            "differently-ordered label slices hit the same series"
        );
        assert_eq!(snap.labeled_counter("test.metrics.labeled", "m=\"x\",op=\"B\""), Some(1));
        assert_eq!(
            snap.labeled_histogram("test.metrics.labeled_us", "m=\"x\"").map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.labeled_gauge("test.metrics.labeled_gauge", "m=\"x\""), Some(9));
        assert!(crate::json::is_valid(&snap.to_json()), "{}", snap.to_json());
        assert!(snap.render().contains("test.metrics.labeled{m=\"x\",op=\"A\"}"));
    }

    #[test]
    fn gauge_levels_move_both_ways_and_saturate() {
        let g = Gauge::default();
        g.set(5);
        g.add(3);
        assert_eq!(g.get(), 8);
        g.sub(6);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        let named = gauge("test.metrics.gauge_level");
        named.set(42);
        assert_eq!(snapshot().gauge("test.metrics.gauge_level"), Some(42));
        named.set(41);
        assert_eq!(snapshot().gauge("test.metrics.gauge_level"), Some(41), "last value wins");
    }
}
