//! Prometheus-style text exposition of a metrics [`Snapshot`].
//!
//! The `METRICS` wire op returns this format so any scrape-shaped
//! tool (or `curl`/`nc` plus eyeballs) can read a live daemon. The
//! grammar we emit is the text exposition subset:
//!
//! ```text
//! # TYPE serve_requests counter
//! serve_requests 42
//! serve_requests{mapping="flights",op="CHASE"} 17
//! # TYPE serve_request_us histogram
//! serve_request_us_bucket{mapping="flights",op="CHASE",le="127"} 9
//! serve_request_us_bucket{mapping="flights",op="CHASE",le="+Inf"} 17
//! serve_request_us_sum{mapping="flights",op="CHASE"} 1234
//! serve_request_us_count{mapping="flights",op="CHASE"} 17
//! ```
//!
//! Names are sanitized (`.` and `-` become `_`); label values are
//! escaped exactly as [`crate::metrics::format_labels`] renders them,
//! so the canonical label string passes through verbatim. Output
//! ordering is deterministic: by sanitized name, then by label string.
//! Histogram buckets are cumulative (`le` is an inclusive upper
//! bound); only non-empty buckets are emitted, plus the mandatory
//! `+Inf` bucket.
//!
//! [`parse_line`] and [`validate`] are the read side: `rde top` parses
//! scraped samples with the former, and tests/CI hold every exposition
//! to the latter.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_bound, parse_labels, HistogramSnapshot, Snapshot};

/// Sanitize a metric name for exposition: `[a-zA-Z0-9_:]` pass
/// through, everything else (the `.` in `serve.request.us`, dashes)
/// becomes `_`; a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        match ch {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(ch),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(ch);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn write_series(out: &mut String, name: &str, labels: &str, extra: Option<(&str, &str)>, v: u64) {
    out.push_str(name);
    match (labels.is_empty(), extra) {
        (true, None) => {}
        (true, Some((k, val))) => {
            let _ = write!(out, "{{{k}=\"{val}\"}}");
        }
        (false, None) => {
            let _ = write!(out, "{{{labels}}}");
        }
        (false, Some((k, val))) => {
            let _ = write!(out, "{{{labels},{k}=\"{val}\"}}");
        }
    }
    let _ = writeln!(out, " {v}");
}

type Grouped<T> = BTreeMap<String, Vec<(String, T)>>;

fn group<T: Clone>(unlabeled: &[(String, T)], labeled: &[(String, String, T)]) -> Grouped<T> {
    let mut groups: Grouped<T> = BTreeMap::new();
    for (name, v) in unlabeled {
        groups.entry(sanitize_name(name)).or_default().push((String::new(), v.clone()));
    }
    for (name, labels, v) in labeled {
        groups.entry(sanitize_name(name)).or_default().push((labels.clone(), v.clone()));
    }
    for series in groups.values_mut() {
        series.sort_by(|(a, _), (b, _)| a.cmp(b));
    }
    groups
}

/// Render `snap` in Prometheus text exposition format. Unlabeled and
/// labeled series of the same name share one `# TYPE` declaration.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, series) in group(&snap.counters, &snap.labeled_counters) {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, v) in series {
            write_series(&mut out, &name, &labels, None, v);
        }
    }
    for (name, series) in group(&snap.gauges, &snap.labeled_gauges) {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (labels, v) in series {
            write_series(&mut out, &name, &labels, None, v);
        }
    }
    for (name, series) in group(&snap.histograms, &snap.labeled_histograms) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (labels, h) in series {
            write_histogram(&mut out, &name, &labels, &h);
        }
    }
    out
}

fn write_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let bucket = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let bound = bucket_bound(i).to_string();
        write_series(out, &bucket, labels, Some(("le", &bound)), cumulative);
    }
    write_series(out, &bucket, labels, Some(("le", "+Inf")), h.count);
    write_series(out, &format!("{name}_sum"), labels, None, h.sum);
    write_series(out, &format!("{name}_count"), labels, None, h.count);
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The (sanitized) series name, including any `_bucket`/`_sum`/
    /// `_count` suffix.
    pub name: String,
    /// Decoded label pairs, in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value. `le="+Inf"` appears as a *label*, so values
    /// are always finite here.
    pub value: f64,
}

impl Sample {
    /// First value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one sample line (not a `#` comment line).
pub fn parse_line(line: &str) -> Result<Sample, String> {
    let (series, value) =
        line.rsplit_once(' ').ok_or_else(|| format!("no value separator in {line:?}"))?;
    let value: f64 =
        value.parse().map_err(|_| format!("unreadable value {value:?} in {line:?}"))?;
    if !value.is_finite() {
        return Err(format!("non-finite value in {line:?}"));
    }
    let (name, labels) = match series.split_once('{') {
        None => (series, Vec::new()),
        Some((name, rest)) => {
            let interior = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            let labels = parse_labels(interior)
                .ok_or_else(|| format!("malformed labels {interior:?} in {line:?}"))?;
            (name, labels)
        }
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(Sample { name: name.to_owned(), labels, value })
}

/// Validate a whole exposition blob line by line: every line is either
/// a well-formed `# TYPE`/`# HELP` comment or a parsable sample whose
/// name was declared by an earlier `# TYPE` (histogram samples may use
/// the `_bucket`/`_sum`/`_count` suffixes, and `_bucket` samples must
/// carry an `le` label). Returns the first offense with its line
/// number.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if line.is_empty() {
            return Err(at("empty line".to_owned()));
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment
                .strip_prefix(' ')
                .ok_or_else(|| at(format!("comment without space: {line:?}")))?;
            if comment.starts_with("HELP ") {
                continue;
            }
            let decl = comment
                .strip_prefix("TYPE ")
                .ok_or_else(|| at(format!("unrecognized comment {line:?}")))?;
            let mut words = decl.split(' ');
            let (Some(name), Some(ty), None) = (words.next(), words.next(), words.next()) else {
                return Err(at(format!("malformed TYPE line {line:?}")));
            };
            if !valid_name(name) {
                return Err(at(format!("invalid metric name {name:?}")));
            }
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(at(format!("unknown metric type {ty:?}")));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(at(format!("duplicate TYPE declaration for {name}")));
            }
            continue;
        }
        let sample = parse_line(line).map_err(at)?;
        let declared = if types.contains_key(&sample.name) {
            true
        } else {
            ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                sample
                    .name
                    .strip_suffix(suffix)
                    .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
            })
        };
        if !declared {
            return Err(at(format!("sample {} has no TYPE declaration", sample.name)));
        }
        if sample.name.ends_with("_bucket") && !types.contains_key(&sample.name) {
            let le = sample
                .label("le")
                .ok_or_else(|| at(format!("bucket sample without le label: {line:?}")))?;
            if le != "+Inf" && le.parse::<f64>().is_err() {
                return Err(at(format!("unreadable le bound {le:?}")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::format_labels;

    #[test]
    fn names_sanitize_to_the_exposition_charset() {
        assert_eq!(sanitize_name("serve.request.us"), "serve_request_us");
        assert_eq!(sanitize_name("odd-name.v2"), "odd_name_v2");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn empty_snapshots_render_empty_and_validate() {
        let text = render(&Snapshot::default());
        assert_eq!(text, "");
        validate(&text).unwrap();
    }

    #[test]
    fn rendering_is_deterministically_ordered_and_valid() {
        let mut snap = Snapshot::default();
        snap.counters.push(("serve.requests".into(), 42));
        // Deliberately pushed out of order: render must sort by labels.
        snap.labeled_counters.push((
            "serve.requests".into(),
            format_labels(&[("op", "PING"), ("mapping", "m")]),
            9,
        ));
        snap.labeled_counters.push((
            "serve.requests".into(),
            format_labels(&[("op", "CHASE"), ("mapping", "m")]),
            17,
        ));
        snap.gauges.push(("serve.inflight".into(), 3));
        let mut h =
            HistogramSnapshot { buckets: [0; crate::metrics::BUCKETS], count: 3, sum: 70, max: 60 };
        h.buckets[4] = 2; // two samples <= 15
        h.buckets[6] = 1; // one sample <= 63
        snap.labeled_histograms.push((
            "serve.request.us".into(),
            format_labels(&[("op", "CHASE")]),
            h,
        ));
        let text = render(&snap);
        validate(&text).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE serve_requests counter",
                "serve_requests 42",
                "serve_requests{mapping=\"m\",op=\"CHASE\"} 17",
                "serve_requests{mapping=\"m\",op=\"PING\"} 9",
                "# TYPE serve_inflight gauge",
                "serve_inflight 3",
                "# TYPE serve_request_us histogram",
                "serve_request_us_bucket{op=\"CHASE\",le=\"15\"} 2",
                "serve_request_us_bucket{op=\"CHASE\",le=\"63\"} 3",
                "serve_request_us_bucket{op=\"CHASE\",le=\"+Inf\"} 3",
                "serve_request_us_sum{op=\"CHASE\"} 70",
                "serve_request_us_count{op=\"CHASE\"} 3",
            ],
        );
    }

    #[test]
    fn label_escaping_survives_the_round_trip() {
        let mut snap = Snapshot::default();
        let labels = format_labels(&[("mapping", "we\"ird\\map\nname")]);
        snap.labeled_counters.push(("serve.requests".into(), labels, 1));
        let text = render(&snap);
        validate(&text).unwrap();
        let sample_line = text.lines().nth(1).unwrap();
        let sample = parse_line(sample_line).unwrap();
        assert_eq!(sample.label("mapping"), Some("we\"ird\\map\nname"));
        assert_eq!(sample.value, 1.0);
    }

    #[test]
    fn parse_line_handles_both_shapes_and_rejects_garbage() {
        let bare = parse_line("up 1").unwrap();
        assert_eq!((bare.name.as_str(), bare.value), ("up", 1.0));
        let labeled = parse_line("x_bucket{le=\"+Inf\",op=\"A\"} 12").unwrap();
        assert_eq!(labeled.label("le"), Some("+Inf"));
        assert_eq!(labeled.value, 12.0);
        for bad in [
            "",
            "novalue",
            "name notanumber",
            "name{unterminated 1",
            "name{k=v} 1",
            "9name 1",
            "na me 1 2",
        ] {
            assert!(parse_line(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn validator_wants_type_lines_first_and_flags_offenders() {
        validate("# TYPE up gauge\nup 1").unwrap();
        validate("# HELP up is the server up\n# TYPE up gauge\nup 1").unwrap();
        for (bad, why) in [
            ("up 1", "sample before TYPE"),
            ("# TYPE up gauge\n\nup 1", "empty line"),
            ("# TYPE up gauge\n# TYPE up counter\nup 1", "duplicate TYPE"),
            ("# TYPE up widget\nup 1", "unknown type"),
            ("# TYPE h histogram\nh_bucket{op=\"A\"} 1", "bucket without le"),
            ("# TYPE h histogram\nh_bucket{le=\"wide\"} 1", "unreadable le"),
            ("#TYPE up gauge\nup 1", "comment without space"),
        ] {
            assert!(validate(bad).is_err(), "must reject ({why}): {bad:?}");
        }
    }
}
