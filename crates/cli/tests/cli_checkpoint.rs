//! End-to-end checkpoint/resume checks against the real `rde` binary.
//!
//! `--checkpoint PATH --checkpoint-every N` makes the chase commands
//! write an atomic, resumable snapshot of the engine's round state;
//! `--resume PATH` restarts from one. The contract under test is the
//! strong one the engine pins internally: a run that is killed
//! mid-chase (SIGKILL — no cleanup, no cooperative anything) and then
//! resumed from its snapshot prints a final instance **bit-identical**
//! to an uninterrupted run's.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn rde() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rde"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-ckpt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A transitive-closure mapping over a long chain: a genuinely
/// multi-round chase (the closure doubles reach per semi-naive round),
/// so there are many round boundaries to checkpoint at and real work
/// left after any given one.
fn write_workload(dir: &Path, chain: usize) -> (String, String) {
    let map = dir.join("tc.map");
    std::fs::write(
        &map,
        "source: E/2, T/2\ntarget: T/2\nE(x,y) -> T(x,y)\nT(x,y) & T(y,z) -> T(x,z)\n",
    )
    .unwrap();
    let inst = dir.join("tc.inst");
    let mut f = std::fs::File::create(&inst).unwrap();
    for i in 0..chain {
        writeln!(f, "E(c{i},c{})", i + 1).unwrap();
    }
    (map.to_string_lossy().into_owned(), inst.to_string_lossy().into_owned())
}

#[test]
fn resume_after_clean_checkpointed_run_is_bit_identical() {
    let dir = tmpdir("clean");
    let (map, inst) = write_workload(&dir, 24);
    let ck = dir.join("clean.snap");
    let ck_str = ck.to_string_lossy().into_owned();

    let reference = rde().args(["chase", &map, &inst]).output().expect("spawn rde");
    assert_eq!(reference.status.code(), Some(0));

    let checkpointed = rde()
        .args(["chase", &map, &inst, "--checkpoint", &ck_str, "--checkpoint-every", "1"])
        .output()
        .expect("spawn rde");
    assert_eq!(checkpointed.status.code(), Some(0));
    assert_eq!(
        checkpointed.stdout, reference.stdout,
        "writing checkpoints must not change the result"
    );
    assert!(ck.exists(), "a multi-round chase with --checkpoint-every 1 must leave a snapshot");

    let resumed =
        rde().args(["chase", &map, &inst, "--resume", &ck_str]).output().expect("spawn rde");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(resumed.stdout, reference.stdout, "resumed run must be bit-identical");
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill -9 mid-chase, resume from the snapshot the victim left behind,
/// and compare against an uninterrupted run byte for byte. Race-free by
/// construction: snapshots are written atomically (tmp + rename), so
/// whenever the kill lands — mid-round, between rounds, or after the
/// run already finished — the snapshot on disk is a complete round
/// state and resuming from it replays to the same fixpoint.
#[test]
fn killed_run_resumes_bit_identical_to_an_uninterrupted_one() {
    let dir = tmpdir("kill");
    // Big enough that rounds take a while (the closure of a 96-chain is
    // ~4.6k facts with tens of thousands of premise matches per round).
    let (map, inst) = write_workload(&dir, 96);
    let ck = dir.join("kill.snap");
    let ck_str = ck.to_string_lossy().into_owned();

    let reference = rde().args(["chase", &map, &inst]).output().expect("spawn rde");
    assert_eq!(reference.status.code(), Some(0));

    let mut victim = rde()
        .args(["chase", &map, &inst, "--checkpoint", &ck_str, "--checkpoint-every", "1"])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn rde");
    // Wait for the first complete snapshot, then kill without mercy.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ck.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        if victim.try_wait().expect("poll victim").is_some() {
            break; // Finished before we could kill it; resume still must agree.
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    victim.kill().ok();
    victim.wait().expect("reap victim");
    assert!(ck.exists(), "the victim must have left a snapshot behind");

    let resumed =
        rde().args(["chase", &map, &inst, "--resume", &ck_str]).output().expect("spawn rde");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, reference.stdout,
        "kill-and-resume must land on the uninterrupted run's bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The same no-mercy contract under `--variant restricted`: the
/// Standard-mode chase consults the live instance before every firing,
/// so its round state is genuinely different from the oblivious one —
/// and a SIGKILLed restricted run resumed from its snapshot must still
/// land byte-identical on an uninterrupted restricted run.
#[test]
fn killed_restricted_run_resumes_bit_identical() {
    let dir = tmpdir("kill-restricted");
    let (map, inst) = write_workload(&dir, 96);
    let ck = dir.join("kill-restricted.snap");
    let ck_str = ck.to_string_lossy().into_owned();

    let reference =
        rde().args(["chase", &map, &inst, "--variant", "restricted"]).output().expect("spawn rde");
    assert_eq!(reference.status.code(), Some(0));

    let mut victim = rde()
        .args([
            "chase",
            &map,
            &inst,
            "--variant",
            "restricted",
            "--checkpoint",
            &ck_str,
            "--checkpoint-every",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn rde");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ck.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared within 60s");
        if victim.try_wait().expect("poll victim").is_some() {
            break; // Finished before we could kill it; resume still must agree.
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    victim.kill().ok();
    victim.wait().expect("reap victim");
    assert!(ck.exists(), "the victim must have left a snapshot behind");

    let resumed = rde()
        .args(["chase", &map, &inst, "--variant", "restricted", "--resume", &ck_str])
        .output()
        .expect("spawn rde");
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, reference.stdout,
        "restricted kill-and-resume must land on the uninterrupted run's bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A malformed snapshot is an ordinary, clearly-worded error — not a
/// panic, not silent recomputation.
#[test]
fn corrupt_snapshot_is_a_clean_error() {
    let dir = tmpdir("corrupt");
    let (map, inst) = write_workload(&dir, 8);
    let ck = dir.join("bad.snap");
    std::fs::write(&ck, "rde-chase-checkpoint v999\ngarbage\n").unwrap();
    let output = rde()
        .args(["chase", &map, &inst, "--resume", &ck.to_string_lossy()])
        .output()
        .expect("spawn rde");
    assert_eq!(output.status.code(), Some(1), "corrupt snapshot is an ordinary failure");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("checkpoint"), "error should mention the checkpoint: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
