//! End-to-end observability checks against the real `rde` binary.
//!
//! Each invocation is its own process, so the process-global journal
//! and metrics registry start clean — unlike in-process `run()` tests,
//! which share both with every other test thread.

use std::path::PathBuf;
use std::process::Command;

fn rde() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rde"))
}

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/data").join(name);
    path.to_string_lossy().into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rde-obs-e2e-{}-{name}", std::process::id()))
}

#[test]
fn trace_out_writes_one_valid_json_object_per_line() {
    let out = tmp("chase.jsonl");
    let _ = std::fs::remove_file(&out);
    let status = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--trace-out", &out.to_string_lossy()])
        .status()
        .expect("spawn rde");
    assert!(status.success());
    if cfg!(feature = "trace") {
        let text = std::fs::read_to_string(&out).expect("--trace-out file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "journal must record the chase");
        let mut opens = 0usize;
        let mut closes = 0usize;
        for line in &lines {
            assert!(rde_obs::json::is_valid(line), "malformed JSONL line: {line}");
            if line.contains("\"kind\":\"span_open\"") {
                opens += 1;
            }
            if line.contains("\"kind\":\"span_close\"") {
                closes += 1;
            }
        }
        assert!(opens > 0, "chase must open spans");
        assert_eq!(opens, closes, "every span must close:\n{text}");
        let _ = std::fs::remove_file(&out);
    } else {
        // trace compiled out: the flag is accepted but writes nothing.
        assert!(!out.exists(), "no-trace build must not create a journal file");
    }
}

#[test]
fn metrics_flag_prints_a_snapshot_table() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst"), "--metrics"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    // Metrics stay live even without the trace feature.
    assert!(stdout.contains("chase.rounds"), "missing chase counters:\n{stdout}");
    assert!(stdout.contains("chase.round.us"), "missing round histogram:\n{stdout}");
    assert!(stdout.contains("hom.search.nodes"), "missing hom counters:\n{stdout}");
}

#[test]
fn profile_prints_a_span_tree_consistent_with_stats() {
    let output = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .output()
        .expect("spawn rde");
    assert!(output.status.success(), "profile failed: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# chase:"), "missing chase totals:\n{stdout}");
    if cfg!(feature = "trace") {
        // cmd_profile errors out if the chase.run span totals disagree
        // with the returned stats, so success + tree implies consistency.
        assert!(stdout.contains("span tree"), "missing span tree:\n{stdout}");
        assert!(stdout.contains("chase.run"), "missing root span:\n{stdout}");
        assert!(stdout.contains("chase.round"), "missing round spans:\n{stdout}");
    } else {
        assert!(stdout.contains("tracing compiled out"), "{stdout}");
    }
}

#[test]
fn profile_reports_span_latency_quantiles() {
    let output = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    if cfg!(feature = "trace") {
        assert!(stdout.contains("span latency quantiles"), "missing quantile table:\n{stdout}");
        assert!(stdout.contains("p50"), "{stdout}");
        assert!(stdout.contains("p99"), "{stdout}");
    }
}

#[test]
fn profile_drives_other_workloads() {
    // `profile invertible <mapping>` runs the invertibility check
    // under the in-memory journal and prints its span breakdown.
    let output = rde()
        .args(["profile", "invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .output()
        .expect("spawn rde");
    assert!(
        output.status.success(),
        "profile invertible failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("homomorphism property"), "verdict still printed:\n{stdout}");
    if cfg!(feature = "trace") {
        assert!(stdout.contains("span tree"), "missing span tree:\n{stdout}");
    }
    // And `profile loss` likewise.
    let output = rde()
        .args(["profile", "loss", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("lost pairs"), "census still printed:\n{stdout}");
}

#[test]
fn profile_trace_out_dumps_the_memory_journal() {
    let out = tmp("profile.jsonl");
    let _ = std::fs::remove_file(&out);
    let status = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .args(["--trace-out", &out.to_string_lossy()])
        .status()
        .expect("spawn rde");
    assert!(status.success());
    if cfg!(feature = "trace") {
        let text = std::fs::read_to_string(&out).expect("profile --trace-out file");
        for line in text.lines() {
            assert!(rde_obs::json::is_valid(line), "malformed JSONL line: {line}");
        }
        assert!(text.lines().count() > 0);
        let _ = std::fs::remove_file(&out);
    }
}

#[test]
fn retry_and_time_budget_flags_run_end_to_end() {
    // A starved node budget answers UNKNOWN; --retries escalates it
    // until the check settles.
    let output = rde()
        .args(["invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .args(["--node-budget", "1", "--retries", "8", "--stats"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# retried with escalated budgets"), "{stdout}");
    assert!(!stdout.contains("UNKNOWN"), "escalation should settle the verdict:\n{stdout}");
    // A generous time budget changes nothing on a tiny scenario.
    let output = rde()
        .args(["invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1", "--time-budget-ms", "10000"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    assert!(!String::from_utf8_lossy(&output.stdout).contains("UNKNOWN"));
}
