//! End-to-end observability checks against the real `rde` binary.
//!
//! Each invocation is its own process, so the process-global journal
//! and metrics registry start clean — unlike in-process `run()` tests,
//! which share both with every other test thread.

use std::path::PathBuf;
use std::process::Command;

fn rde() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rde"))
}

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/data").join(name);
    path.to_string_lossy().into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rde-obs-e2e-{}-{name}", std::process::id()))
}

#[test]
fn trace_out_writes_one_valid_json_object_per_line() {
    let out = tmp("chase.jsonl");
    let _ = std::fs::remove_file(&out);
    let status = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--trace-out", &out.to_string_lossy()])
        .status()
        .expect("spawn rde");
    assert!(status.success());
    if cfg!(feature = "trace") {
        let text = std::fs::read_to_string(&out).expect("--trace-out file written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "journal must record the chase");
        let mut opens = 0usize;
        let mut closes = 0usize;
        for line in &lines {
            assert!(rde_obs::json::is_valid(line), "malformed JSONL line: {line}");
            if line.contains("\"kind\":\"span_open\"") {
                opens += 1;
            }
            if line.contains("\"kind\":\"span_close\"") {
                closes += 1;
            }
        }
        assert!(opens > 0, "chase must open spans");
        assert_eq!(opens, closes, "every span must close:\n{text}");
        let _ = std::fs::remove_file(&out);
    } else {
        // trace compiled out: the flag is accepted but writes nothing.
        assert!(!out.exists(), "no-trace build must not create a journal file");
    }
}

#[test]
fn metrics_flag_prints_a_snapshot_table() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst"), "--metrics"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    // Metrics stay live even without the trace feature.
    assert!(stdout.contains("chase.rounds"), "missing chase counters:\n{stdout}");
    assert!(stdout.contains("chase.round.us"), "missing round histogram:\n{stdout}");
    assert!(stdout.contains("hom.search.nodes"), "missing hom counters:\n{stdout}");
}

#[test]
fn profile_prints_a_span_tree_consistent_with_stats() {
    let output = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .output()
        .expect("spawn rde");
    assert!(output.status.success(), "profile failed: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# chase:"), "missing chase totals:\n{stdout}");
    if cfg!(feature = "trace") {
        // cmd_profile errors out if the chase.run span totals disagree
        // with the returned stats, so success + tree implies consistency.
        assert!(stdout.contains("span tree"), "missing span tree:\n{stdout}");
        assert!(stdout.contains("chase.run"), "missing root span:\n{stdout}");
        assert!(stdout.contains("chase.round"), "missing round spans:\n{stdout}");
    } else {
        assert!(stdout.contains("tracing compiled out"), "{stdout}");
    }
}

#[test]
fn profile_reports_span_latency_quantiles() {
    let output = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    if cfg!(feature = "trace") {
        assert!(stdout.contains("span latency quantiles"), "missing quantile table:\n{stdout}");
        assert!(stdout.contains("p50"), "{stdout}");
        assert!(stdout.contains("p99"), "{stdout}");
    }
}

#[test]
fn profile_drives_other_workloads() {
    // `profile invertible <mapping>` runs the invertibility check
    // under the in-memory journal and prints its span breakdown.
    let output = rde()
        .args(["profile", "invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .output()
        .expect("spawn rde");
    assert!(
        output.status.success(),
        "profile invertible failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("homomorphism property"), "verdict still printed:\n{stdout}");
    if cfg!(feature = "trace") {
        assert!(stdout.contains("span tree"), "missing span tree:\n{stdout}");
    }
    // And `profile loss` likewise.
    let output = rde()
        .args(["profile", "loss", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("lost pairs"), "census still printed:\n{stdout}");
}

#[test]
fn profile_trace_out_dumps_the_memory_journal() {
    let out = tmp("profile.jsonl");
    let _ = std::fs::remove_file(&out);
    let status = rde()
        .args(["profile", &example("two_step.map"), &example("flights.inst")])
        .args(["--trace-out", &out.to_string_lossy()])
        .status()
        .expect("spawn rde");
    assert!(status.success());
    if cfg!(feature = "trace") {
        let text = std::fs::read_to_string(&out).expect("profile --trace-out file");
        for line in text.lines() {
            assert!(rde_obs::json::is_valid(line), "malformed JSONL line: {line}");
        }
        assert!(text.lines().count() > 0);
        let _ = std::fs::remove_file(&out);
    }
}

/// Spawn `rde serve --addr 127.0.0.1:0 …` and wait for the readiness
/// line; the daemon is killed (and its catalog removed) on drop.
struct ServeGuard {
    child: std::process::Child,
    addr: String,
    dir: PathBuf,
}

impl ServeGuard {
    fn spawn(dir: PathBuf, extra: &[&str]) -> ServeGuard {
        use std::io::BufRead;
        let mut child = rde()
            .args(["serve", dir.to_str().unwrap(), "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn rde serve");
        let stdout = child.stdout.take().expect("serve stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve must print its readiness lines before accepting")
                .expect("read serve stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_owned();
            }
        };
        ServeGuard { child, addr, dir }
    }

    /// SIGINT (what Ctrl-C sends): the daemon drains, flushes the
    /// access log, and exits 0.
    fn interrupt_and_wait(&mut self) -> Option<i32> {
        let pid = self.child.id().to_string();
        let sent =
            Command::new("kill").args(["-INT", &pid]).status().expect("spawn kill").success();
        assert!(sent, "kill -INT must reach the daemon");
        self.child.wait().expect("wait for rde serve").code()
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn serve_telemetry_flows_from_access_log_to_top_and_profile() {
    let dir = std::env::temp_dir().join(format!("rde-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("split.map"),
        "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n",
    )
    .unwrap();
    let inst = dir.join("i.inst");
    std::fs::write(&inst, "P(a, b, c)\n").unwrap();
    let log = dir.join("access.jsonl");
    // Threshold 0: every request's span tree is replayed into the log.
    let mut guard = ServeGuard::spawn(
        dir.clone(),
        &["--access-log", log.to_str().unwrap(), "--trace-slow-ms", "0"],
    );

    let chase = rde()
        .args(["call", &guard.addr, "chase", "split", inst.to_str().unwrap()])
        .output()
        .expect("spawn rde call chase");
    assert_eq!(chase.status.code(), Some(0), "{}", String::from_utf8_lossy(&chase.stderr));

    // `rde call <addr> metrics` prints the Prometheus exposition.
    let metrics = rde().args(["call", &guard.addr, "metrics"]).output().expect("spawn rde call");
    assert_eq!(metrics.status.code(), Some(0));
    let exposition = String::from_utf8_lossy(&metrics.stdout);
    rde_obs::expo::validate(exposition.trim_end()).expect("exposition validates");
    assert!(
        exposition.contains("serve_requests{mapping=\"split\",op=\"CHASE\"}"),
        "labeled request series scraped:\n{exposition}"
    );

    // One `rde top` refresh renders the per-mapping table.
    let top =
        rde().args(["top", &guard.addr, "--iterations", "1"]).output().expect("spawn rde top");
    assert_eq!(top.status.code(), Some(0), "{}", String::from_utf8_lossy(&top.stderr));
    let table = String::from_utf8_lossy(&top.stdout);
    assert!(table.contains("rde top — uptime"), "header:\n{table}");
    assert!(table.contains("MAPPING"), "column row:\n{table}");
    assert!(
        table.lines().any(|l| l.starts_with("split")),
        "a live per-mapping row for `split`:\n{table}"
    );

    assert_eq!(guard.interrupt_and_wait(), Some(0), "clean drain on SIGINT");

    if cfg!(feature = "trace") {
        // The access log holds one valid JSONL access line per request
        // plus the replayed span trees (threshold 0 keeps them all).
        let text = std::fs::read_to_string(&log).expect("access log written");
        let mut chase_req = None;
        for line in text.lines() {
            let record = rde_obs::Record::parse_json_line(line).expect("valid access-log line");
            if record.name == "serve.access" {
                assert_ne!(record.req(), 0, "access lines are request-stamped: {line}");
                for key in ["op", "mapping", "backend", "outcome", "us"] {
                    assert!(record.field(key).is_some(), "missing {key}: {line}");
                }
            }
            if record.kind == "span_open" && record.name == "serve.request" {
                chase_req.get_or_insert(record.req());
            }
        }
        let req = chase_req.expect("a replayed span tree in the access log");

        // `rde profile <log> --request-id N` filters to that request.
        let profile = rde()
            .args(["profile", log.to_str().unwrap(), "--request-id", &req.to_string()])
            .output()
            .expect("spawn rde profile");
        assert_eq!(profile.status.code(), Some(0), "{}", String::from_utf8_lossy(&profile.stderr));
        let report = String::from_utf8_lossy(&profile.stdout);
        assert!(report.contains(&format!("# request {req}:")), "{report}");
        assert!(report.contains("serve.request"), "root span in the tree:\n{report}");

        // An unknown id is a clean error naming the ids that do exist.
        let missing = rde()
            .args(["profile", log.to_str().unwrap(), "--request-id", "999999"])
            .output()
            .expect("spawn rde profile");
        assert_eq!(missing.status.code(), Some(1));
        let err = String::from_utf8_lossy(&missing.stderr);
        assert!(err.contains("request id 999999 not found"), "{err}");
        assert!(err.contains("request id(s) present"), "{err}");
    } else {
        // Journal compiled out: the access-log flag is accepted but
        // writes nothing.
        assert!(
            !log.exists() || std::fs::read_to_string(&log).unwrap().is_empty(),
            "no-trace builds must not write access-log records"
        );
    }
}

#[test]
fn retry_and_time_budget_flags_run_end_to_end() {
    // A starved node budget answers UNKNOWN; --retries escalates it
    // until the check settles.
    let output = rde()
        .args(["invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1"])
        .args(["--node-budget", "1", "--retries", "8", "--stats"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("# retried with escalated budgets"), "{stdout}");
    assert!(!stdout.contains("UNKNOWN"), "escalation should settle the verdict:\n{stdout}");
    // A generous time budget changes nothing on a tiny scenario.
    let output = rde()
        .args(["invertible", &example("two_step.map")])
        .args(["--consts", "1", "--nulls", "0", "--facts", "1", "--time-budget-ms", "10000"])
        .output()
        .expect("spawn rde");
    assert!(output.status.success());
    assert!(!String::from_utf8_lossy(&output.stdout).contains("UNKNOWN"));
}
