//! End-to-end tests driving the built `rde` binary against the shipped
//! example data files (`examples/data/`).

use std::path::PathBuf;
use std::process::Command;

fn data(file: &str) -> String {
    // crates/cli → workspace root → examples/data.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("examples");
    p.push("data");
    p.push(file);
    assert!(p.exists(), "missing example data file {p:?}");
    p.to_string_lossy().into_owned()
}

fn rde(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rde")).args(args).output().expect("binary runs");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn chase_example_1_1_data() {
    let (ok, out) = rde(&["chase", &data("decomposition.map"), &data("employees.inst")]);
    assert!(ok, "{out}");
    assert!(out.contains("Q(ada, eng)"), "{out}");
    assert!(out.contains("R(eng, grace)"), "{out}");
    assert!(out.contains("R(math, ?unknown_mgr)"), "{out}");
}

#[test]
fn reverse_exchange_produces_nulls() {
    let (ok, out) = rde(&[
        "reverse",
        &data("decomposition.map"),
        &data("decomposition_reverse.map"),
        &data("employees.inst"),
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("# 1 leaf instance(s)"), "{out}");
    assert!(out.contains("?n"), "reverse exchange must invent nulls: {out}");
}

#[test]
fn invert_union_mapping_data() {
    let (ok, out) = rde(&["invert", &data("union.map")]);
    assert!(ok, "{out}");
    assert!(out.contains('|'), "the recovery must be disjunctive: {out}");
    assert!(out.contains("Customer"), "{out}");
    assert!(out.contains("Supplier"), "{out}");
}

#[test]
fn invertibility_verdicts_data() {
    let (ok, out) = rde(&["invertible", &data("union.map"), "--consts", "1", "--nulls", "0"]);
    assert!(ok, "{out}");
    assert!(out.contains("NOT extended-invertible"), "{out}");
    let (ok, out) = rde(&["invertible", &data("two_step.map"), "--consts", "2", "--nulls", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("HOLDS within bound"), "{out}");
}

#[test]
fn check_chase_inverse_data() {
    let (ok, out) = rde(&[
        "check-chase-inverse",
        &data("two_step.map"),
        &data("two_step_inverse.map"),
        "--consts",
        "2",
        "--nulls",
        "1",
        "--facts",
        "2",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("HOLDS within bound"), "{out}");
}

#[test]
fn certain_answers_data() {
    let (ok, out) = rde(&[
        "certain",
        &data("two_step.map"),
        &data("two_step_inverse.map"),
        &data("flights.inst"),
        "q(x, y) :- P(x, y)",
    ]);
    assert!(ok, "{out}");
    // Only the all-constant flight is certain.
    assert!(out.contains("# 1 certain answer(s)"), "{out}");
    assert!(out.contains("(sfo, jfk)"), "{out}");
}

#[test]
fn loss_report_data() {
    let (ok, out) =
        rde(&["loss", &data("union.map"), "--consts", "1", "--nulls", "1", "--facts", "1"]);
    assert!(ok, "{out}");
    assert!(out.contains("lost pairs:"), "{out}");
    assert!(!out.contains("lost pairs:       0 "), "the union mapping must lose pairs: {out}");
}
