//! End-to-end cancellation checks against the real `rde` binary.
//!
//! `--deadline-ms 0` is an already-expired deadline: every cancellable
//! command must notice it at its first round/search boundary and exit
//! with the dedicated cancellation status (3) — distinct from both
//! success (0) and ordinary failure (1) — without printing a partial
//! answer as if it were complete.

use std::path::PathBuf;
use std::process::Command;

fn rde() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rde"))
}

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/data").join(name);
    path.to_string_lossy().into_owned()
}

const EXIT_CANCELLED: i32 = 3;

#[test]
fn expired_deadline_cancels_the_chase_with_status_3() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--deadline-ms", "0"])
        .output()
        .expect("spawn rde");
    assert_eq!(output.status.code(), Some(EXIT_CANCELLED), "status: {:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cancelled"), "stderr should say why: {stderr}");

    // Control: the same command without a deadline succeeds.
    let status = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .status()
        .expect("spawn rde");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn expired_deadline_cancels_the_checkers_and_the_census() {
    let bound = ["--consts", "1", "--nulls", "0", "--facts", "1"];
    for cmd in [
        vec!["invertible", &example("two_step.map")[..]],
        vec!["loss", &example("two_step.map")],
        vec!["core", &example("two_step.map"), &example("flights.inst")],
    ] {
        let output =
            rde().args(&cmd).args(bound).args(["--deadline-ms", "0"]).output().expect("spawn rde");
        assert_eq!(
            output.status.code(),
            Some(EXIT_CANCELLED),
            "`{}` should cancel, got {:?}\nstdout: {}\nstderr: {}",
            cmd.join(" "),
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn generous_deadline_does_not_disturb_a_fast_run() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--deadline-ms", "60000"])
        .output()
        .expect("spawn rde");
    assert_eq!(output.status.code(), Some(0), "{:?}", output.status);
    assert!(!String::from_utf8_lossy(&output.stdout).is_empty());
}

#[test]
fn ordinary_failure_keeps_exit_status_1() {
    let status =
        rde().args(["chase", "/nonexistent.map", "/nonexistent.inst"]).status().expect("spawn rde");
    assert_eq!(status.code(), Some(1), "errors must stay distinct from cancellation");
}

// ---------------------------------------------------------------------------
// `rde serve` / `rde call` exit-code audit: a SHED or UNKNOWN reply is a
// retryable server decision (4), the client's own elapsed deadline is a
// cancellation (3), and only genuinely wrong input or a dead server is an
// ordinary failure (1).

const EXIT_SHED: i32 = 4;

/// Write a two-mapping catalog directory plus an instance file for it.
fn serve_catalog(tag: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("rde-cli-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("split.map"),
        "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("merge.map"),
        "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n",
    )
    .unwrap();
    let inst = dir.join("i.inst");
    std::fs::write(&inst, "P(a, b, c)\n").unwrap();
    (dir.clone(), inst.to_string_lossy().into_owned())
}

/// A running `rde serve` subprocess; killed (and its catalog removed)
/// on drop so a failing assertion cannot leak a daemon.
struct ServeGuard {
    child: std::process::Child,
    addr: String,
    dir: PathBuf,
}

impl ServeGuard {
    /// Spawn `rde serve --addr 127.0.0.1:0 <dir> [extra…]` and wait for
    /// the `listening on …` readiness line to learn the picked port.
    fn spawn(dir: PathBuf, extra: &[&str]) -> ServeGuard {
        use std::io::BufRead;
        let mut child = rde()
            .args(["serve", dir.to_str().unwrap(), "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn rde serve");
        let stdout = child.stdout.take().expect("serve stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve must print its readiness lines before accepting")
                .expect("read serve stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_owned();
            }
        };
        ServeGuard { child, addr, dir }
    }

    /// Deliver SIGINT (what Ctrl-C sends) and wait for the exit status.
    fn interrupt_and_wait(&mut self) -> Option<i32> {
        let pid = self.child.id().to_string();
        let sent =
            Command::new("kill").args(["-INT", &pid]).status().expect("spawn kill").success();
        assert!(sent, "kill -INT must reach the daemon");
        self.child.wait().expect("wait for rde serve").code()
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn serve_answers_calls_bit_identically_and_drains_on_sigint() {
    let (dir, inst) = serve_catalog("roundtrip");
    let map = dir.join("split.map").to_string_lossy().into_owned();
    let mut guard = ServeGuard::spawn(dir.clone(), &[]);

    let ping = rde().args(["call", &guard.addr, "ping"]).output().expect("spawn rde call");
    assert_eq!(ping.status.code(), Some(0), "{:?}", ping.status);
    assert_eq!(String::from_utf8_lossy(&ping.stdout), "pong\n");

    // The daemon's CHASE answer is bit-identical to the single-shot CLI.
    let served = rde()
        .args(["call", &guard.addr, "chase", "split", &inst])
        .output()
        .expect("spawn rde call chase");
    assert_eq!(served.status.code(), Some(0), "{:?}", served.status);
    let direct = rde().args(["chase", &map, &inst]).output().expect("spawn rde chase");
    assert_eq!(direct.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&served.stdout),
        String::from_utf8_lossy(&direct.stdout),
        "served answers must match a cold single-shot run byte for byte"
    );

    // A wrong mapping name is an ERR reply: plain failure, exit 1.
    let missing =
        rde().args(["call", &guard.addr, "chase", "nope", &inst]).output().expect("spawn rde call");
    assert_eq!(missing.status.code(), Some(1), "ERR replies are ordinary failures");

    // Ctrl-C drains and exits 0 — a clean shutdown is not an error.
    assert_eq!(guard.interrupt_and_wait(), Some(0), "SIGINT must shut the daemon down cleanly");
}

#[test]
fn shed_and_unknown_replies_exit_4_not_1() {
    // A zero ceiling sheds every request: retryable, so exit 4.
    let (dir, _) = serve_catalog("shed");
    let guard = ServeGuard::spawn(dir, &["--max-inflight", "0"]);
    let output = rde().args(["call", &guard.addr, "ping"]).output().expect("spawn rde call");
    assert_eq!(output.status.code(), Some(EXIT_SHED), "{:?}", output.status);
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("shed"),
        "stderr should say the server shed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    drop(guard);

    let (dir, _) = serve_catalog("unknown");
    let guard = ServeGuard::spawn(dir, &[]);
    // A starved node budget makes the check answer UNKNOWN: also 4.
    let output = rde()
        .args(["call", &guard.addr, "invertible", "merge", "--node-budget", "0"])
        .output()
        .expect("spawn rde call");
    assert_eq!(output.status.code(), Some(EXIT_SHED), "{:?}", output.status);
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("unknown"),
        "stderr should say the verdict was unknown: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // An already-elapsed *server-side* deadline is the server's SHED.
    let output = rde()
        .args(["call", &guard.addr, "invertible", "merge", "--server-deadline-ms", "0"])
        .output()
        .expect("spawn rde call");
    assert_eq!(output.status.code(), Some(EXIT_SHED), "{:?}", output.status);
    // The same request without the handicap succeeds on a fresh call.
    let output =
        rde().args(["call", &guard.addr, "invertible", "merge"]).output().expect("spawn rde call");
    assert_eq!(output.status.code(), Some(0), "{:?}", output.status);
}

#[test]
fn client_deadline_and_dead_servers_stay_distinct() {
    // A listener that never replies: the client's own --deadline-ms is
    // the only thing that can end the call, and that is a cancellation
    // (3), not a failure and not a shed.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let output = rde()
        .args(["call", &addr, "ping", "--deadline-ms", "50"])
        .output()
        .expect("spawn rde call");
    assert_eq!(output.status.code(), Some(EXIT_CANCELLED), "{:?}", output.status);
    drop(listener);

    // Nobody listening at all: a connection failure is an ordinary 1.
    let status = rde().args(["call", &addr, "ping"]).status().expect("spawn rde call");
    assert_eq!(status.code(), Some(1), "{status:?}");
}
