//! End-to-end cancellation checks against the real `rde` binary.
//!
//! `--deadline-ms 0` is an already-expired deadline: every cancellable
//! command must notice it at its first round/search boundary and exit
//! with the dedicated cancellation status (3) — distinct from both
//! success (0) and ordinary failure (1) — without printing a partial
//! answer as if it were complete.

use std::path::PathBuf;
use std::process::Command;

fn rde() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rde"))
}

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/data").join(name);
    path.to_string_lossy().into_owned()
}

const EXIT_CANCELLED: i32 = 3;

#[test]
fn expired_deadline_cancels_the_chase_with_status_3() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--deadline-ms", "0"])
        .output()
        .expect("spawn rde");
    assert_eq!(output.status.code(), Some(EXIT_CANCELLED), "status: {:?}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cancelled"), "stderr should say why: {stderr}");

    // Control: the same command without a deadline succeeds.
    let status = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .status()
        .expect("spawn rde");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn expired_deadline_cancels_the_checkers_and_the_census() {
    let bound = ["--consts", "1", "--nulls", "0", "--facts", "1"];
    for cmd in [
        vec!["invertible", &example("two_step.map")[..]],
        vec!["loss", &example("two_step.map")],
        vec!["core", &example("two_step.map"), &example("flights.inst")],
    ] {
        let output =
            rde().args(&cmd).args(bound).args(["--deadline-ms", "0"]).output().expect("spawn rde");
        assert_eq!(
            output.status.code(),
            Some(EXIT_CANCELLED),
            "`{}` should cancel, got {:?}\nstdout: {}\nstderr: {}",
            cmd.join(" "),
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn generous_deadline_does_not_disturb_a_fast_run() {
    let output = rde()
        .args(["chase", &example("two_step.map"), &example("flights.inst")])
        .args(["--deadline-ms", "60000"])
        .output()
        .expect("spawn rde");
    assert_eq!(output.status.code(), Some(0), "{:?}", output.status);
    assert!(!String::from_utf8_lossy(&output.stdout).is_empty());
}

#[test]
fn ordinary_failure_keeps_exit_status_1() {
    let status =
        rde().args(["chase", "/nonexistent.map", "/nonexistent.inst"]).status().expect("spawn rde");
    assert_eq!(status.code(), Some(1), "errors must stay distinct from cancellation");
}
