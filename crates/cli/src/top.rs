//! The `rde top` subcommand: poll a daemon's `METRICS` exposition and
//! render a live per-mapping table (req/s, latency quantiles, inflight,
//! sheds, cache occupancy).
//!
//! Everything here is pure text-in/text-out — the network loop lives in
//! `commands.rs` — so the table logic is unit-testable against canned
//! exposition snapshots.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Duration;

use rde_obs::expo::{parse_line, Sample};

/// One parsed `METRICS` poll.
pub struct Poll {
    samples: Vec<Sample>,
}

impl Poll {
    /// Parse the reply lines of a `METRICS` request (comment lines are
    /// skipped; any malformed sample line is an error).
    pub fn parse(lines: &[String]) -> Result<Poll, String> {
        let mut samples = Vec::new();
        for line in lines {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            samples.push(parse_line(line)?);
        }
        Ok(Poll { samples })
    }

    fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| s.label(k) == Some(*v))
                    && s.labels.len() == labels.len()
            })
            .map(|s| s.value)
    }

    /// Sum of every `name` sample carrying `label`, regardless of its
    /// other labels (e.g. total requests for a mapping across ops).
    /// The `+ 0.0` normalizes the empty sum: `Sum for f64` uses the
    /// additive identity `-0.0`, which `{:.0}` renders as `-0`.
    fn sum_where(&self, name: &str, label: (&str, &str)) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.label(label.0) == Some(label.1))
            .map(|s| s.value)
            .sum::<f64>()
            + 0.0
    }

    /// Every value of `key` appearing on `name` samples.
    fn label_values(&self, name: &str, key: &str) -> BTreeSet<String> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| s.label(key).map(str::to_owned))
            .collect()
    }

    /// Merge a mapping's cumulative `serve_request_us` bucket series
    /// (one per op; each emits only its non-empty bounds) into one step
    /// function: sorted `(le, cumulative count)` points.
    fn latency_steps(&self, mapping: &str) -> Vec<(f64, f64)> {
        // Group the bucket samples into per-series cumulative curves
        // keyed by their full label string minus `le`.
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for s in &self.samples {
            if s.name != "serve_request_us_bucket" || s.label("mapping") != Some(mapping) {
                continue;
            }
            let Some(le) = s.label("le") else { continue };
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
            if le.is_nan() {
                continue;
            }
            let mut key = String::new();
            for (k, v) in &s.labels {
                if k != "le" {
                    let _ = write!(key, "{k}={v},");
                }
            }
            series.entry(key).or_default().push((le, s.value));
        }
        // Cumulative curves are step functions; sum them pointwise at
        // the union of their bounds (each curve contributes its value
        // at the greatest bound ≤ the evaluation point).
        let mut bounds: BTreeSet<u64> = BTreeSet::new();
        for curve in series.values_mut() {
            curve.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(le, _) in curve.iter() {
                bounds.insert(le.to_bits());
            }
        }
        bounds
            .into_iter()
            .map(f64::from_bits)
            .map(|le| {
                let total: f64 = series
                    .values()
                    .map(|curve| {
                        curve
                            .iter()
                            .take_while(|(b, _)| *b <= le)
                            .last()
                            .map_or(0.0, |&(_, cum)| cum)
                    })
                    .sum();
                (le, total)
            })
            .collect()
    }

    /// Quantile upper bound (µs) from the merged bucket step function.
    fn latency_quantile(&self, mapping: &str, q: f64) -> Option<f64> {
        let steps = self.latency_steps(mapping);
        let total = steps.last().map(|&(_, cum)| cum)?;
        if total == 0.0 {
            return None;
        }
        let target = (q * total).ceil().max(1.0);
        steps.iter().find(|&&(_, cum)| cum >= target).map(|&(le, _)| le)
    }
}

fn fmt_quantile(v: Option<f64>) -> String {
    match v {
        None => "-".to_owned(),
        Some(le) if le.is_infinite() => "inf".to_owned(),
        Some(le) => format!("{le:.0}"),
    }
}

/// Render one refresh of the top table. `prev` is the previous poll
/// and the wall time since it, for the req/s column; the first refresh
/// has no rate yet.
pub fn render(prev: Option<(&Poll, Duration)>, cur: &Poll) -> String {
    let mut out = String::new();
    let uptime_s = cur.get("serve_uptime_ms", &[]).unwrap_or(0.0) / 1000.0;
    let total: f64 = cur.get("serve_requests", &[]).unwrap_or(0.0);
    let inflight = cur.get("serve_inflight", &[]).unwrap_or(0.0);
    // Generation only appears once the daemon publishes it (older
    // daemons don't); `gen 0` would be misleading, so omit it then.
    let generation = cur
        .get("serve_catalog_generation", &[])
        .map(|g| format!(", catalog gen {g:.0}"))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "rde top — uptime {uptime_s:.1}s, {total:.0} request(s) served, {inflight:.0} in \
         flight{generation}"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>7} {:>8}",
        "MAPPING", "REQS", "REQ/S", "P50(µs)", "P99(µs)", "INFLIGHT", "SHED", "MEMO", "CLASSES"
    );
    for mapping in cur.label_values("serve_requests", "mapping") {
        let m = mapping.as_str();
        let reqs = cur.sum_where("serve_requests", ("mapping", m));
        let rate = match prev {
            Some((before, elapsed)) if !elapsed.is_zero() => {
                let delta = reqs - before.sum_where("serve_requests", ("mapping", m));
                format!("{:.1}", delta.max(0.0) / elapsed.as_secs_f64())
            }
            _ => "-".to_owned(),
        };
        // `+ 0.0`: an empty sum is `-0.0`, which would render as `-0`.
        let sheds: f64 = cur
            .samples
            .iter()
            .filter(|s| {
                s.name == "serve_outcome"
                    && s.label("mapping") == Some(m)
                    && s.label("outcome") == Some("shed")
            })
            .map(|s| s.value)
            .sum::<f64>()
            + 0.0;
        let inflight = cur.get("serve_inflight", &[("mapping", m)]).unwrap_or(0.0);
        let memo = cur.get("serve_cache_memo", &[("mapping", m)]);
        let classes = cur.get("serve_cache_classes", &[("mapping", m)]);
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>7} {:>8}",
            m,
            format!("{reqs:.0}"),
            rate,
            fmt_quantile(cur.latency_quantile(m, 0.50)),
            fmt_quantile(cur.latency_quantile(m, 0.99)),
            format!("{inflight:.0}"),
            format!("{sheds:.0}"),
            memo.map_or("-".to_owned(), |v| format!("{v:.0}")),
            classes.map_or("-".to_owned(), |v| format!("{v:.0}")),
        );
    }
    // Per-tenant admission table, present once any request carried a
    // tenant identity (every admitted request does — anonymous ones
    // count under `default`).
    let tenants = cur.label_values("serve_tenant_requests", "tenant");
    if !tenants.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<16} {:>8} {:>8} {:>11} {:>11}",
            "TENANT", "REQS", "REQ/S", "SHED(quota)", "SHED(other)"
        );
        for tenant in tenants {
            let t = tenant.as_str();
            let reqs = cur.sum_where("serve_tenant_requests", ("tenant", t));
            let rate = match prev {
                Some((before, elapsed)) if !elapsed.is_zero() => {
                    let delta = reqs - before.sum_where("serve_tenant_requests", ("tenant", t));
                    format!("{:.1}", delta.max(0.0) / elapsed.as_secs_f64())
                }
                _ => "-".to_owned(),
            };
            let shed = |quota: bool| -> f64 {
                cur.samples
                    .iter()
                    .filter(|s| {
                        s.name == "serve_shed"
                            && s.label("tenant") == Some(t)
                            && (s.label("reason") == Some("quota")) == quota
                    })
                    .map(|s| s.value)
                    .sum::<f64>()
                    + 0.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>8} {:>11} {:>11}",
                t,
                format!("{reqs:.0}"),
                rate,
                format!("{:.0}", shed(true)),
                format!("{:.0}", shed(false)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll(text: &str) -> Poll {
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        Poll::parse(&lines).unwrap()
    }

    const FIRST: &str = "\
# TYPE serve_requests counter
serve_requests 12
serve_requests{mapping=\"flights\",op=\"CHASE\"} 8
serve_requests{mapping=\"flights\",op=\"ARROW\"} 2
serve_requests{mapping=\"-\",op=\"PING\"} 2
# TYPE serve_inflight gauge
serve_inflight 1
serve_inflight{mapping=\"flights\"} 1
# TYPE serve_uptime_ms gauge
serve_uptime_ms 2500
# TYPE serve_cache_memo gauge
serve_cache_memo{mapping=\"flights\"} 7
# TYPE serve_cache_classes gauge
serve_cache_classes{mapping=\"flights\"} 3
# TYPE serve_outcome counter
serve_outcome{mapping=\"flights\",op=\"CHASE\",outcome=\"ok\"} 7
serve_outcome{mapping=\"flights\",op=\"CHASE\",outcome=\"shed\"} 1
# TYPE serve_request_us histogram
serve_request_us_bucket{le=\"63\",mapping=\"flights\",op=\"CHASE\"} 6
serve_request_us_bucket{le=\"1023\",mapping=\"flights\",op=\"CHASE\"} 8
serve_request_us_bucket{le=\"+Inf\",mapping=\"flights\",op=\"CHASE\"} 8
serve_request_us_bucket{le=\"127\",mapping=\"flights\",op=\"ARROW\"} 2
serve_request_us_bucket{le=\"+Inf\",mapping=\"flights\",op=\"ARROW\"} 2
";

    #[test]
    fn quantiles_merge_bucket_series_across_ops() {
        let p = poll(FIRST);
        // Merged curve: ≤63 → 6, ≤127 → 8, ≤1023 → 10, +Inf → 10.
        // p50 of 10 needs cum ≥ 5 → le 63; p99 needs cum ≥ 10 → 1023.
        assert_eq!(p.latency_quantile("flights", 0.50), Some(63.0));
        assert_eq!(p.latency_quantile("flights", 0.99), Some(1023.0));
        assert_eq!(p.latency_quantile("nope", 0.50), None);
    }

    #[test]
    fn table_renders_rates_from_poll_deltas() {
        let before = poll(FIRST);
        let after = poll(
            &FIRST
                .replace(
                    "serve_requests{mapping=\"flights\",op=\"CHASE\"} 8",
                    "serve_requests{mapping=\"flights\",op=\"CHASE\"} 18",
                )
                .replace("serve_requests 12", "serve_requests 22"),
        );
        let table = render(Some((&before, Duration::from_secs(2))), &after);
        let flights = table.lines().find(|l| l.starts_with("flights")).unwrap();
        // 20 total flights requests now, 10 more than before over 2s.
        assert!(flights.contains(" 20 "), "{flights}");
        assert!(flights.contains("5.0"), "{flights}");
        assert!(flights.contains(" 63 ") && flights.contains("1023"), "{flights}");
        assert!(flights.ends_with("7        3"), "memo/classes columns: {flights}");
        // The bare-op pseudo-mapping row is present too.
        assert!(table.lines().any(|l| l.starts_with('-')), "{table}");
        assert!(table.contains("uptime 2.5s"), "{table}");
        // First poll has no rate to show.
        let first = render(None, &before);
        let row = first.lines().find(|l| l.starts_with("flights")).unwrap();
        assert!(row.contains(" - "), "{row}");
    }

    #[test]
    fn zero_sheds_render_as_zero_not_negative_zero() {
        // The `-` pseudo-mapping has no `serve_outcome` shed samples at
        // all; the empty f64 sum is `-0.0` and must not leak into the
        // table as `-0`.
        let table = render(None, &poll(FIRST));
        assert!(!table.contains("-0"), "{table}");
        let bare = table.lines().find(|l| l.starts_with('-')).unwrap();
        assert!(bare.split_whitespace().any(|c| c == "0"), "{bare}");
    }

    #[test]
    fn tenant_table_and_generation_render_when_published() {
        // A daemon without the hardening metrics renders no tenant
        // section and no generation note at all.
        let plain = render(None, &poll(FIRST));
        assert!(!plain.contains("TENANT") && !plain.contains("catalog gen"), "{plain}");

        let tenanted = format!(
            "{FIRST}\
# TYPE serve_catalog_generation gauge
serve_catalog_generation 3
# TYPE serve_tenant_requests counter
serve_tenant_requests{{tenant=\"default\"}} 10
serve_tenant_requests{{tenant=\"noisy\"}} 2
# TYPE serve_shed counter
serve_shed{{tenant=\"noisy\",reason=\"quota\"}} 5
serve_shed{{tenant=\"default\",reason=\"overloaded\"}} 1
"
        );
        let table = render(None, &poll(&tenanted));
        assert!(table.contains("catalog gen 3"), "{table}");
        assert!(table.contains("TENANT"), "{table}");
        let noisy = table.lines().find(|l| l.starts_with("noisy")).unwrap();
        let cols: Vec<&str> = noisy.split_whitespace().collect();
        assert_eq!(cols, vec!["noisy", "2", "-", "5", "0"], "{noisy}");
        let default = table.lines().find(|l| l.starts_with("default")).unwrap();
        let cols: Vec<&str> = default.split_whitespace().collect();
        assert_eq!(cols, vec!["default", "10", "-", "0", "1"], "{default}");

        // Rates come from tenant-request deltas like the mapping rows.
        let after = tenanted.replace(
            "serve_tenant_requests{tenant=\"noisy\"} 2",
            "serve_tenant_requests{tenant=\"noisy\"} 12",
        );
        let table = render(Some((&poll(&tenanted), Duration::from_secs(2))), &poll(&after));
        let noisy = table.lines().find(|l| l.starts_with("noisy")).unwrap();
        assert!(noisy.contains("5.0"), "{noisy}");
    }

    #[test]
    fn malformed_exposition_is_an_error() {
        assert!(Poll::parse(&["not a sample line at all }{".to_owned()]).is_err());
        assert!(Poll::parse(&["# a comment".to_owned()]).unwrap().samples.is_empty());
    }
}
