//! `rde` — the reverse-data-exchange command-line driver.
//!
//! Implements the workflows of the PODS 2009 paper over mapping and
//! instance text files: forward and reverse chase, recovery synthesis,
//! invertibility and recovery checking, information-loss censuses,
//! mapping comparison, and reverse certain-answer queries.

#![forbid(unsafe_code)]

use std::process::ExitCode;

mod commands;
mod options;
mod profile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rde: {e}");
            ExitCode::FAILURE
        }
    }
}
