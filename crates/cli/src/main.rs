//! `rde` — the reverse-data-exchange command-line driver.
//!
//! Implements the workflows of the PODS 2009 paper over mapping and
//! instance text files: forward and reverse chase, recovery synthesis,
//! invertibility and recovery checking, information-loss censuses,
//! mapping comparison, and reverse certain-answer queries.

#![forbid(unsafe_code)]

use std::process::ExitCode;

mod commands;
mod options;
mod profile;
mod top;

/// Exit status for cooperative cancellation (`--deadline-ms` elapsed
/// or Ctrl-C): distinct from ordinary failure so scripts can tell
/// "wrong" from "out of time".
const EXIT_CANCELLED: u8 = 3;

/// Exit status for a server-declined request (`call` got a SHED or
/// UNKNOWN reply): the work may succeed on retry, which is neither
/// "wrong input" (1) nor "this client ran out of time" (3).
const EXIT_SHED: u8 = 4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Cancelled) => {
            eprintln!("rde: {}", commands::CliError::Cancelled);
            ExitCode::from(EXIT_CANCELLED)
        }
        Err(e @ commands::CliError::Shed(_)) => {
            eprintln!("rde: {e}");
            ExitCode::from(EXIT_SHED)
        }
        Err(e) => {
            eprintln!("rde: {e}");
            ExitCode::FAILURE
        }
    }
}
