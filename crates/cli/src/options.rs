//! Flag parsing for the `rde` CLI.

use rde_chase::ChaseVariant;
use rde_model::BackendKind;

/// Parsed command-line options: positional arguments plus the bounded-
/// universe knobs shared by the checking commands.
#[derive(Debug, Clone)]
pub struct Options {
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// `--consts N`: constant-pool size for bounded universes.
    pub consts: usize,
    /// `--nulls N`: null-pool size.
    pub nulls: usize,
    /// `--facts N`: per-instance fact budget.
    pub facts: usize,
    /// `--examples N`: counterexample/example display budget.
    pub examples: usize,
    /// `--node-budget N`: cap each homomorphism search at N nodes;
    /// checks degrade to UNKNOWN instead of running unbounded.
    pub node_budget: Option<u64>,
    /// `--time-budget-ms N`: wall-clock cap per homomorphism search.
    pub time_budget_ms: Option<u64>,
    /// `--retries N`: on an UNKNOWN verdict, retry the check up to N
    /// more times with exponentially escalated budgets.
    pub retries: u32,
    /// `--deadline-ms N`: wall-clock cap for the whole command; on
    /// expiry the engines cancel cooperatively and the process exits
    /// with a distinct status instead of returning a partial answer.
    pub deadline_ms: Option<u64>,
    /// `--stats`: print search-work counters after the answer.
    pub stats: bool,
    /// `--trace-out PATH`: write the JSONL event journal to PATH.
    pub trace_out: Option<String>,
    /// `--metrics`: print a metrics-registry snapshot table at exit.
    pub metrics: bool,
    /// `--checkpoint PATH`: (chase/core) write a resumable snapshot of
    /// the chase round state to PATH while running.
    pub checkpoint: Option<String>,
    /// `--checkpoint-every N`: snapshot cadence in completed rounds
    /// (default 1; `0` disables writing even with `--checkpoint`).
    pub checkpoint_every: u64,
    /// `--resume PATH`: resume the chase from a snapshot written by a
    /// previous run of the same command; the result is bit-identical
    /// to an uninterrupted run.
    pub resume: Option<String>,
    /// `--backend {row,columnar}`: instance storage layout for every
    /// instance the command loads or builds. Results are bit-identical
    /// across backends; the layout only changes the work profile.
    pub backend: BackendKind,
    /// `--addr HOST:PORT`: (serve) listen address; port 0 picks a free
    /// port and prints it.
    pub addr: Option<String>,
    /// `--max-inflight N`: (serve) concurrent-request ceiling before
    /// requests are shed.
    pub max_inflight: Option<usize>,
    /// `--cache-memo N`: (serve) per-mapping memo-table entry cap.
    pub cache_memo: Option<usize>,
    /// `--cache-classes N`: (serve) per-mapping interned-class cap.
    pub cache_classes: Option<usize>,
    /// `--server-deadline-ms N`: (call) request deadline enforced *by
    /// the server* (sent as the `deadline-ms` header; an elapsed one
    /// comes back as a SHED reply). Distinct from `--deadline-ms`,
    /// which caps the client's own wait.
    pub server_deadline_ms: Option<u64>,
    /// `--access-log PATH`: (serve) stream the request journal — one
    /// `serve.access` JSONL line per request, plus any sampled span
    /// trees — to a rotating file at PATH.
    pub access_log: Option<String>,
    /// `--trace-slow-ms N`: (serve) buffer each request's span tree
    /// and write it to the journal only when the request took ≥ N ms
    /// (`0` keeps every tree).
    pub trace_slow_ms: Option<u64>,
    /// `--interval-ms N`: (top) polling cadence (default 1000).
    pub interval_ms: u64,
    /// `--iterations N`: (top) stop after N refreshes instead of
    /// running until interrupted.
    pub iterations: Option<u64>,
    /// `--request-id N`: (profile) filter a journal *file* down to one
    /// request's records before building the span breakdown.
    pub request_id: Option<u64>,
    /// `--tenant-quota NAME=rps[:burst]`: (serve) per-tenant
    /// token-bucket admission quota; repeatable. The name `default`
    /// covers the anonymous tenant and any tenant without its own
    /// quota.
    pub tenant_quotas: Vec<String>,
    /// `--conn-idle-ms N`: (serve) per-connection read deadline; a
    /// peer idle (or stalled mid-request) that long is disconnected.
    /// `0` disables the deadline.
    pub conn_idle_ms: Option<u64>,
    /// `--max-strikes N`: (serve) recoverable protocol violations a
    /// connection may accumulate before it is closed.
    pub max_strikes: Option<u32>,
    /// `--tenant NAME`: (call) tenant identity sent with each request
    /// (the server's quota buckets key on it).
    pub tenant: Option<String>,
    /// `--variant {naive,semi-naive,restricted}`: chase variant for
    /// every chase the command runs (and, for `call`, the `variant`
    /// header sent to the server). `None` = the build's default
    /// variant; `call` then sends no header and the server picks.
    pub variant: Option<ChaseVariant>,
    /// `--require-terminating`: (serve) reject catalog entries whose
    /// termination the static analyzer cannot prove.
    pub require_terminating: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            positional: Vec::new(),
            consts: 2,
            nulls: 1,
            facts: 2,
            examples: 5,
            node_budget: None,
            time_budget_ms: None,
            retries: 0,
            deadline_ms: None,
            stats: false,
            trace_out: None,
            metrics: false,
            checkpoint: None,
            checkpoint_every: 1,
            resume: None,
            backend: BackendKind::default(),
            addr: None,
            max_inflight: None,
            cache_memo: None,
            cache_classes: None,
            server_deadline_ms: None,
            access_log: None,
            trace_slow_ms: None,
            interval_ms: 1000,
            iterations: None,
            request_id: None,
            tenant_quotas: Vec::new(),
            conn_idle_ms: None,
            max_strikes: None,
            tenant: None,
            variant: None,
            require_terminating: false,
        }
    }
}

impl Options {
    /// Parse `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut flag = |name: &str| -> Result<usize, String> {
                it.next()
                    .ok_or_else(|| format!("{name} requires a value"))?
                    .parse::<usize>()
                    .map_err(|_| format!("{name} requires an integer value"))
            };
            match arg.as_str() {
                "--consts" => opts.consts = flag("--consts")?,
                "--nulls" => opts.nulls = flag("--nulls")?,
                "--facts" => opts.facts = flag("--facts")?,
                "--examples" => opts.examples = flag("--examples")?,
                "--node-budget" => {
                    opts.node_budget = Some(
                        it.next()
                            .ok_or_else(|| "--node-budget requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--node-budget requires an integer value".to_string())?,
                    );
                }
                "--time-budget-ms" => {
                    opts.time_budget_ms = Some(
                        it.next()
                            .ok_or_else(|| "--time-budget-ms requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| {
                                "--time-budget-ms requires an integer value".to_string()
                            })?,
                    );
                }
                "--retries" => {
                    opts.retries = it
                        .next()
                        .ok_or_else(|| "--retries requires a value".to_string())?
                        .parse::<u32>()
                        .map_err(|_| "--retries requires an integer value".to_string())?;
                }
                "--deadline-ms" => {
                    opts.deadline_ms = Some(
                        it.next()
                            .ok_or_else(|| "--deadline-ms requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--deadline-ms requires an integer value".to_string())?,
                    );
                }
                "--trace-out" => {
                    opts.trace_out = Some(
                        it.next().ok_or_else(|| "--trace-out requires a path".to_string())?.clone(),
                    );
                }
                "--checkpoint" => {
                    opts.checkpoint = Some(
                        it.next()
                            .ok_or_else(|| "--checkpoint requires a path".to_string())?
                            .clone(),
                    );
                }
                "--checkpoint-every" => {
                    opts.checkpoint_every = it
                        .next()
                        .ok_or_else(|| "--checkpoint-every requires a value".to_string())?
                        .parse::<u64>()
                        .map_err(|_| "--checkpoint-every requires an integer value".to_string())?;
                }
                "--resume" => {
                    opts.resume = Some(
                        it.next().ok_or_else(|| "--resume requires a path".to_string())?.clone(),
                    );
                }
                "--backend" => {
                    opts.backend = it
                        .next()
                        .ok_or_else(|| "--backend requires `row` or `columnar`".to_string())?
                        .parse::<BackendKind>()?;
                }
                "--addr" => {
                    opts.addr = Some(
                        it.next().ok_or_else(|| "--addr requires host:port".to_string())?.clone(),
                    );
                }
                "--max-inflight" => opts.max_inflight = Some(flag("--max-inflight")?),
                "--cache-memo" => opts.cache_memo = Some(flag("--cache-memo")?),
                "--cache-classes" => opts.cache_classes = Some(flag("--cache-classes")?),
                "--server-deadline-ms" => {
                    opts.server_deadline_ms = Some(
                        it.next()
                            .ok_or_else(|| "--server-deadline-ms requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| {
                                "--server-deadline-ms requires an integer value".to_string()
                            })?,
                    );
                }
                "--access-log" => {
                    opts.access_log = Some(
                        it.next()
                            .ok_or_else(|| "--access-log requires a path".to_string())?
                            .clone(),
                    );
                }
                "--trace-slow-ms" => {
                    opts.trace_slow_ms = Some(
                        it.next()
                            .ok_or_else(|| "--trace-slow-ms requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--trace-slow-ms requires an integer value".to_string())?,
                    );
                }
                "--interval-ms" => {
                    opts.interval_ms = it
                        .next()
                        .ok_or_else(|| "--interval-ms requires a value".to_string())?
                        .parse::<u64>()
                        .map_err(|_| "--interval-ms requires an integer value".to_string())?;
                }
                "--iterations" => {
                    opts.iterations = Some(
                        it.next()
                            .ok_or_else(|| "--iterations requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--iterations requires an integer value".to_string())?,
                    );
                }
                "--request-id" => {
                    opts.request_id = Some(
                        it.next()
                            .ok_or_else(|| "--request-id requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--request-id requires an integer value".to_string())?,
                    );
                }
                "--tenant-quota" => {
                    opts.tenant_quotas.push(
                        it.next()
                            .ok_or_else(|| "--tenant-quota requires NAME=rps[:burst]".to_string())?
                            .clone(),
                    );
                }
                "--conn-idle-ms" => {
                    opts.conn_idle_ms = Some(
                        it.next()
                            .ok_or_else(|| "--conn-idle-ms requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--conn-idle-ms requires an integer value".to_string())?,
                    );
                }
                "--max-strikes" => {
                    opts.max_strikes = Some(
                        it.next()
                            .ok_or_else(|| "--max-strikes requires a value".to_string())?
                            .parse::<u32>()
                            .map_err(|_| "--max-strikes requires an integer value".to_string())?,
                    );
                }
                "--tenant" => {
                    opts.tenant = Some(
                        it.next().ok_or_else(|| "--tenant requires a name".to_string())?.clone(),
                    );
                }
                "--variant" => {
                    opts.variant = Some(
                        it.next()
                            .ok_or_else(|| {
                                "--variant requires `naive`, `semi-naive`, or `restricted`"
                                    .to_string()
                            })?
                            .parse::<ChaseVariant>()?,
                    );
                }
                "--require-terminating" => opts.require_terminating = true,
                "--metrics" => opts.metrics = true,
                "--stats" => opts.stats = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag `{other}`"));
                }
                other => opts.positional.push(other.to_owned()),
            }
        }
        Ok(opts)
    }

    /// The `n`-th positional argument or an error naming it.
    pub fn positional(&self, n: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_positionals() {
        let o = Options::parse(&strings(&["a.map", "b.inst"])).unwrap();
        assert_eq!(o.positional, vec!["a.map", "b.inst"]);
        assert_eq!(o.consts, 2);
        assert_eq!(o.positional(0, "mapping").unwrap(), "a.map");
        assert!(o.positional(2, "query").is_err());
    }

    #[test]
    fn flags_interleave_with_positionals() {
        let o =
            Options::parse(&strings(&["--consts", "3", "a", "--nulls", "2", "b", "--facts", "4"]))
                .unwrap();
        assert_eq!((o.consts, o.nulls, o.facts), (3, 2, 4));
        assert_eq!(o.positional, vec!["a", "b"]);
    }

    #[test]
    fn stats_and_budget_flags() {
        let o = Options::parse(&strings(&["--stats", "m.map", "--node-budget", "5000"])).unwrap();
        assert!(o.stats);
        assert_eq!(o.node_budget, Some(5000));
        assert_eq!(o.positional, vec!["m.map"]);
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert!(!o.stats);
        assert_eq!(o.node_budget, None);
        assert!(Options::parse(&strings(&["--node-budget"])).is_err());
        assert!(Options::parse(&strings(&["--node-budget", "x"])).is_err());
    }

    #[test]
    fn observability_and_retry_flags() {
        let o = Options::parse(&strings(&[
            "m.map",
            "--time-budget-ms",
            "250",
            "--retries",
            "3",
            "--trace-out",
            "/tmp/t.jsonl",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(o.time_budget_ms, Some(250));
        assert_eq!(o.retries, 3);
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(o.metrics);
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert_eq!((o.time_budget_ms, o.retries, o.metrics), (None, 0, false));
        assert!(o.trace_out.is_none());
        assert!(Options::parse(&strings(&["--time-budget-ms"])).is_err());
        assert!(Options::parse(&strings(&["--retries", "x"])).is_err());
        assert!(Options::parse(&strings(&["--trace-out"])).is_err());
    }

    #[test]
    fn deadline_flag() {
        let o = Options::parse(&strings(&["m.map", "--deadline-ms", "500"])).unwrap();
        assert_eq!(o.deadline_ms, Some(500));
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert_eq!(o.deadline_ms, None);
        assert!(Options::parse(&strings(&["--deadline-ms"])).is_err());
        assert!(Options::parse(&strings(&["--deadline-ms", "soon"])).is_err());
    }

    #[test]
    fn checkpoint_flags() {
        let o = Options::parse(&strings(&[
            "m.map",
            "i.inst",
            "--checkpoint",
            "/tmp/c.ck",
            "--checkpoint-every",
            "3",
        ]))
        .unwrap();
        assert_eq!(o.checkpoint.as_deref(), Some("/tmp/c.ck"));
        assert_eq!(o.checkpoint_every, 3);
        assert!(o.resume.is_none());
        let o = Options::parse(&strings(&["m.map", "i.inst", "--resume", "/tmp/c.ck"])).unwrap();
        assert_eq!(o.resume.as_deref(), Some("/tmp/c.ck"));
        assert_eq!(o.checkpoint_every, 1, "default cadence is every round");
        assert!(Options::parse(&strings(&["--checkpoint"])).is_err());
        assert!(Options::parse(&strings(&["--checkpoint-every", "x"])).is_err());
        assert!(Options::parse(&strings(&["--resume"])).is_err());
    }

    #[test]
    fn backend_flag() {
        let o = Options::parse(&strings(&["m.map", "--backend", "columnar"])).unwrap();
        assert_eq!(o.backend, BackendKind::Columnar);
        let o = Options::parse(&strings(&["m.map", "--backend", "row"])).unwrap();
        assert_eq!(o.backend, BackendKind::Row);
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert_eq!(o.backend, BackendKind::default());
        assert!(Options::parse(&strings(&["--backend"])).is_err());
        assert!(Options::parse(&strings(&["--backend", "paged"])).is_err());
    }

    #[test]
    fn telemetry_flags() {
        let o = Options::parse(&strings(&[
            "dir",
            "--access-log",
            "/tmp/a.jsonl",
            "--trace-slow-ms",
            "25",
        ]))
        .unwrap();
        assert_eq!(o.access_log.as_deref(), Some("/tmp/a.jsonl"));
        assert_eq!(o.trace_slow_ms, Some(25));
        let o = Options::parse(&strings(&["addr", "--interval-ms", "200", "--iterations", "3"]))
            .unwrap();
        assert_eq!((o.interval_ms, o.iterations), (200, Some(3)));
        let o = Options::parse(&strings(&["j.jsonl", "--request-id", "42"])).unwrap();
        assert_eq!(o.request_id, Some(42));
        let o = Options::parse(&strings(&["x"])).unwrap();
        assert_eq!(o.interval_ms, 1000, "default polling cadence");
        assert!(o.access_log.is_none() && o.trace_slow_ms.is_none());
        assert!(o.iterations.is_none() && o.request_id.is_none());
        assert!(Options::parse(&strings(&["--access-log"])).is_err());
        assert!(Options::parse(&strings(&["--trace-slow-ms", "soon"])).is_err());
        assert!(Options::parse(&strings(&["--request-id", "x"])).is_err());
    }

    #[test]
    fn hardening_flags() {
        let o = Options::parse(&strings(&[
            "dir",
            "--tenant-quota",
            "noisy=5:10",
            "--tenant-quota",
            "default=50",
            "--conn-idle-ms",
            "30000",
            "--max-strikes",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.tenant_quotas, vec!["noisy=5:10", "default=50"], "repeatable, in order");
        assert_eq!(o.conn_idle_ms, Some(30000));
        assert_eq!(o.max_strikes, Some(5));
        let o = Options::parse(&strings(&["addr", "PING", "--tenant", "noisy"])).unwrap();
        assert_eq!(o.tenant.as_deref(), Some("noisy"));
        let o = Options::parse(&strings(&["dir"])).unwrap();
        assert!(o.tenant_quotas.is_empty());
        assert!(o.conn_idle_ms.is_none() && o.max_strikes.is_none() && o.tenant.is_none());
        assert!(Options::parse(&strings(&["--tenant-quota"])).is_err());
        assert!(Options::parse(&strings(&["--conn-idle-ms", "soon"])).is_err());
        assert!(Options::parse(&strings(&["--max-strikes"])).is_err());
        assert!(Options::parse(&strings(&["--tenant"])).is_err());
    }

    #[test]
    fn variant_and_termination_flags() {
        let o = Options::parse(&strings(&["m.map", "--variant", "restricted"])).unwrap();
        assert_eq!(o.variant, Some(ChaseVariant::Restricted));
        let o = Options::parse(&strings(&["m.map", "--variant", "naive"])).unwrap();
        assert_eq!(o.variant, Some(ChaseVariant::Naive));
        let o = Options::parse(&strings(&["m.map", "--variant", "semi-naive"])).unwrap();
        assert_eq!(o.variant, Some(ChaseVariant::SemiNaive));
        let o = Options::parse(&strings(&["dir", "--require-terminating"])).unwrap();
        assert!(o.require_terminating);
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert_eq!(o.variant, None, "no flag means the build default, no header");
        assert!(!o.require_terminating);
        assert!(Options::parse(&strings(&["--variant"])).is_err());
        assert!(Options::parse(&strings(&["--variant", "oblivious"])).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(Options::parse(&strings(&["--consts"])).is_err());
        assert!(Options::parse(&strings(&["--consts", "x"])).is_err());
        assert!(Options::parse(&strings(&["--wat", "1"])).is_err());
    }
}
