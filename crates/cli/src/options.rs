//! Flag parsing for the `rde` CLI.

/// Parsed command-line options: positional arguments plus the bounded-
/// universe knobs shared by the checking commands.
#[derive(Debug, Clone)]
pub struct Options {
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// `--consts N`: constant-pool size for bounded universes.
    pub consts: usize,
    /// `--nulls N`: null-pool size.
    pub nulls: usize,
    /// `--facts N`: per-instance fact budget.
    pub facts: usize,
    /// `--examples N`: counterexample/example display budget.
    pub examples: usize,
    /// `--node-budget N`: cap each homomorphism search at N nodes;
    /// checks degrade to UNKNOWN instead of running unbounded.
    pub node_budget: Option<u64>,
    /// `--stats`: print search-work counters after the answer.
    pub stats: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            positional: Vec::new(),
            consts: 2,
            nulls: 1,
            facts: 2,
            examples: 5,
            node_budget: None,
            stats: false,
        }
    }
}

impl Options {
    /// Parse `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut flag = |name: &str| -> Result<usize, String> {
                it.next()
                    .ok_or_else(|| format!("{name} requires a value"))?
                    .parse::<usize>()
                    .map_err(|_| format!("{name} requires an integer value"))
            };
            match arg.as_str() {
                "--consts" => opts.consts = flag("--consts")?,
                "--nulls" => opts.nulls = flag("--nulls")?,
                "--facts" => opts.facts = flag("--facts")?,
                "--examples" => opts.examples = flag("--examples")?,
                "--node-budget" => {
                    opts.node_budget = Some(
                        it.next()
                            .ok_or_else(|| "--node-budget requires a value".to_string())?
                            .parse::<u64>()
                            .map_err(|_| "--node-budget requires an integer value".to_string())?,
                    );
                }
                "--stats" => opts.stats = true,
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag `{other}`"));
                }
                other => opts.positional.push(other.to_owned()),
            }
        }
        Ok(opts)
    }

    /// The `n`-th positional argument or an error naming it.
    pub fn positional(&self, n: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_positionals() {
        let o = Options::parse(&strings(&["a.map", "b.inst"])).unwrap();
        assert_eq!(o.positional, vec!["a.map", "b.inst"]);
        assert_eq!(o.consts, 2);
        assert_eq!(o.positional(0, "mapping").unwrap(), "a.map");
        assert!(o.positional(2, "query").is_err());
    }

    #[test]
    fn flags_interleave_with_positionals() {
        let o =
            Options::parse(&strings(&["--consts", "3", "a", "--nulls", "2", "b", "--facts", "4"]))
                .unwrap();
        assert_eq!((o.consts, o.nulls, o.facts), (3, 2, 4));
        assert_eq!(o.positional, vec!["a", "b"]);
    }

    #[test]
    fn stats_and_budget_flags() {
        let o = Options::parse(&strings(&["--stats", "m.map", "--node-budget", "5000"])).unwrap();
        assert!(o.stats);
        assert_eq!(o.node_budget, Some(5000));
        assert_eq!(o.positional, vec!["m.map"]);
        let o = Options::parse(&strings(&["m.map"])).unwrap();
        assert!(!o.stats);
        assert_eq!(o.node_budget, None);
        assert!(Options::parse(&strings(&["--node-budget"])).is_err());
        assert!(Options::parse(&strings(&["--node-budget", "x"])).is_err());
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(Options::parse(&strings(&["--consts"])).is_err());
        assert!(Options::parse(&strings(&["--consts", "x"])).is_err());
        assert!(Options::parse(&strings(&["--wat", "1"])).is_err());
    }
}
