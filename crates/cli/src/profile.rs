//! The `profile` subcommand: run a chase scenario under an in-memory
//! journal and print the span tree as a time breakdown.
//!
//! The journal's memory sink keeps structured [`Record`]s, so the tree
//! is rebuilt from span ids directly — no JSON re-parsing. Sibling
//! spans with the same name aggregate into one line (`×count`), which
//! keeps the output readable when a chase performs thousands of
//! homomorphism searches.

use std::collections::BTreeMap;

use rde_model::fx::FxHashMap;
use rde_obs::journal::OwnedField;
use rde_obs::Record;

/// One reconstructed span.
struct Node {
    name: String,
    parent: u64,
    elapsed_us: u64,
}

/// Render the span tree of a drained journal as an indented table.
/// Returns `None` when the records contain no spans (e.g. the `trace`
/// feature is compiled out).
pub fn render_span_tree(records: &[Record]) -> Option<String> {
    let mut nodes: FxHashMap<u64, Node> = FxHashMap::default();
    let mut events: Vec<(u64, &str)> = Vec::new(); // (parent span, name)
    for rec in records {
        match rec.kind {
            "span_open" => {
                nodes.insert(
                    rec.span,
                    Node { name: rec.name.clone(), parent: rec.parent, elapsed_us: 0 },
                );
            }
            "span_close" => {
                if let Some(node) = nodes.get_mut(&rec.span) {
                    node.elapsed_us = rec.elapsed_us.unwrap_or(0);
                }
            }
            "event" => events.push((rec.span, &rec.name)),
            _ => {}
        }
    }
    if nodes.is_empty() {
        return None;
    }
    let mut children: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let mut roots: Vec<u64> = Vec::new();
    let mut ids: Vec<u64> = nodes.keys().copied().collect();
    ids.sort_unstable();
    for &id in &ids {
        let parent = nodes[&id].parent;
        if parent != 0 && nodes.contains_key(&parent) {
            children.entry(parent).or_default().push(id);
        } else {
            roots.push(id);
        }
    }
    let mut event_counts: FxHashMap<u64, BTreeMap<&str, u64>> = FxHashMap::default();
    for (span, name) in events {
        *event_counts.entry(span).or_default().entry(name).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("span tree (wall µs; siblings with equal names aggregated):\n");
    render_level(&mut out, &nodes, &children, &event_counts, &roots, 0);
    Some(out)
}

fn render_level(
    out: &mut String,
    nodes: &FxHashMap<u64, Node>,
    children: &FxHashMap<u64, Vec<u64>>,
    event_counts: &FxHashMap<u64, BTreeMap<&str, u64>>,
    ids: &[u64],
    depth: usize,
) {
    use std::fmt::Write as _;
    // Aggregate this level by span name, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: FxHashMap<&str, (u64, u64, Vec<u64>)> = FxHashMap::default();
    for &id in ids {
        let node = &nodes[&id];
        let entry = groups.entry(node.name.as_str()).or_insert_with(|| {
            order.push(node.name.as_str());
            (0, 0, Vec::new())
        });
        entry.0 += 1;
        entry.1 += node.elapsed_us;
        entry.2.push(id);
    }
    for name in order {
        let (count, total_us, members) = &groups[name];
        let label = if *count == 1 {
            format!("{:indent$}{name}", "", indent = depth * 2)
        } else {
            format!("{:indent$}{name} ×{count}", "", indent = depth * 2)
        };
        let _ = writeln!(out, "{label:<48} {total_us:>12}");
        // Merge the group's events and children across its members.
        let mut merged_events: BTreeMap<&str, u64> = BTreeMap::new();
        let mut merged_children: Vec<u64> = Vec::new();
        for id in members {
            if let Some(counts) = event_counts.get(id) {
                for (ev, n) in counts {
                    *merged_events.entry(ev).or_insert(0) += n;
                }
            }
            if let Some(kids) = children.get(id) {
                merged_children.extend_from_slice(kids);
            }
        }
        for (ev, n) in merged_events {
            let _ = writeln!(out, "{:indent$}· {ev} ×{n}", "", indent = depth * 2 + 2);
        }
        render_level(out, nodes, children, event_counts, &merged_children, depth + 1);
    }
}

/// Exact per-name latency quantiles over every `span_close` record:
/// `(name, count, p50_us, p99_us)`, sorted by name.
pub fn span_quantiles(records: &[Record]) -> Vec<(String, usize, u64, u64)> {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for rec in records {
        if rec.kind == "span_close" {
            by_name.entry(&rec.name).or_default().push(rec.elapsed_us.unwrap_or(0));
        }
    }
    by_name
        .into_iter()
        .map(|(name, mut samples)| {
            samples.sort_unstable();
            let p50 = percentile(&samples, 50);
            let p99 = percentile(&samples, 99);
            (name.to_owned(), samples.len(), p50, p99)
        })
        .collect()
}

/// Nearest-rank percentile: the smallest sample with at least `p`% of
/// the samples at or below it. Exact — no interpolation, no sketch.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Render [`span_quantiles`] as an aligned table. `None` when the
/// records hold no closed spans.
pub fn render_quantiles(records: &[Record]) -> Option<String> {
    use std::fmt::Write as _;
    let rows = span_quantiles(records);
    if rows.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str("span latency quantiles (µs per close):\n");
    let _ = writeln!(out, "  {:<40} {:>8} {:>12} {:>12}", "name", "count", "p50", "p99");
    for (name, count, p50, p99) in rows {
        let _ = writeln!(out, "  {name:<40} {count:>8} {p50:>12} {p99:>12}");
    }
    Some(out)
}

/// Sum of `elapsed_us` over all closed spans named `name`.
pub fn total_elapsed_us(records: &[Record], name: &str) -> u64 {
    records
        .iter()
        .filter(|r| r.kind == "span_close" && r.name == name)
        .filter_map(|r| r.elapsed_us)
        .sum()
}

/// Sum a `u64` close-field over all closed spans named `name` (used to
/// cross-check the span tree against `--stats` totals).
pub fn total_close_field(records: &[Record], name: &str, field: &str) -> u64 {
    records
        .iter()
        .filter(|r| r.kind == "span_close" && r.name == name)
        .filter_map(|r| match r.field(field) {
            Some(OwnedField::U64(v)) => Some(*v),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_obs::journal::{self, Sink};

    #[test]
    #[cfg_attr(not(feature = "trace"), ignore = "spans compile out without the trace feature")]
    fn tree_renders_nested_and_aggregated_spans() {
        journal::attach(Sink::Memory, 4096).unwrap();
        {
            let outer = rde_obs::span("t.outer", &[]);
            for i in 0..3u64 {
                let inner = rde_obs::span("t.inner", &[("i", i.into())]);
                rde_obs::event("t.tick", &[]);
                inner.close_with(&[]);
            }
            outer.close_with(&[("fired", 7u64.into())]);
        }
        let summary = journal::detach().unwrap();
        let tree = render_span_tree(&summary.records).expect("spans present");
        assert!(tree.contains("t.outer"), "{tree}");
        assert!(tree.contains("t.inner ×3"), "{tree}");
        assert!(tree.contains("t.tick ×3"), "{tree}");
        assert_eq!(total_close_field(&summary.records, "t.outer", "fired"), 7);
        assert!(
            total_elapsed_us(&summary.records, "t.outer")
                >= total_elapsed_us(&summary.records, "t.inner"),
            "a parent span covers its children"
        );
        assert!(render_span_tree(&[]).is_none());
    }

    fn close(name: &str, elapsed_us: u64) -> Record {
        Record {
            t_us: 0,
            kind: "span_close",
            name: name.to_owned(),
            span: 1,
            parent: 0,
            elapsed_us: Some(elapsed_us),
            fields: Vec::new(),
        }
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        // 100 closes with elapsed 1..=100: p50 = 50, p99 = 99.
        let mut records: Vec<Record> = (1..=100).map(|us| close("t.many", us)).collect();
        records.push(close("t.one", 42));
        let rows = span_quantiles(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("t.many".to_owned(), 100, 50, 99));
        // A single sample is every percentile of itself.
        assert_eq!(rows[1], ("t.one".to_owned(), 1, 42, 42));
        let table = render_quantiles(&records).expect("rows present");
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("t.many"), "{table}");
        assert!(render_quantiles(&[]).is_none());
    }
}
