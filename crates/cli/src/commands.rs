//! Subcommand implementations for the `rde` CLI.

use std::fs;
use std::time::Duration;

use rde_chase::{
    chase_mapping, disjunctive_chase, ChaseOptions, CheckpointPolicy, DisjunctiveChaseOptions,
};
use rde_core::compose::ComposeOptions;
use rde_core::quasi_inverse::{maximum_extended_recovery_full, QuasiInverseOptions};
use rde_core::retry::{retry_budgeted, RetryPolicy};
use rde_core::{CoreError, Universe};
use rde_deps::{parse_mapping, printer, SchemaMapping};
use rde_faults::{CancelToken, ExecContext};
use rde_hom::{Exhausted, HomConfig, HomStats};
use rde_model::{display, parse::parse_instance, Instance, Vocabulary};
use rde_obs::{journal, Record, Sink};
use rde_query::ConjunctiveQuery;

use crate::options::Options;

/// How a command line failed.
///
/// Cancellation (an elapsed `--deadline-ms` or a Ctrl-C) is kept apart
/// from ordinary errors so `main` can exit with a distinct status and
/// scripts can tell "wrong input" from "ran out of time".
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// An ordinary failure, rendered to stderr.
    Message(String),
    /// The command was cooperatively cancelled before it finished.
    Cancelled,
    /// The server declined the work (`SHED` reply — overload or the
    /// request's server-side deadline) or could not settle it within
    /// its budgets (`UNKNOWN` reply). The work may succeed on retry,
    /// so scripts get a status distinct from both "wrong input" (1)
    /// and "this client ran out of time" (3).
    Shed(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Message(message)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Message(m) | CliError::Shed(m) => f.write_str(m),
            CliError::Cancelled => f.write_str("cancelled (deadline elapsed or interrupted)"),
        }
    }
}

/// The execution context for one command invocation: a live cancel
/// token watching the process interrupt flag and carrying the
/// `--deadline-ms` budget when one was given. The CLI never installs a
/// fault injector — injection campaigns are a test-harness concern and
/// stay scoped to the contexts that opt in.
fn exec_context(opts: &Options) -> ExecContext {
    rde_faults::install_interrupt_handler();
    let token = match opts.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    ExecContext::default().with_cancel(token.watching_interrupt())
}

fn chase_err(e: rde_chase::ChaseError) -> CliError {
    match e {
        rde_chase::ChaseError::Cancelled => CliError::Cancelled,
        e => CliError::Message(e.to_string()),
    }
}

fn core_err(e: CoreError) -> CliError {
    match e {
        CoreError::Cancelled => CliError::Cancelled,
        e => CliError::Message(e.to_string()),
    }
}

/// Record bound for `--trace-out` journals and `profile` runs: large
/// enough for real scenarios, small enough that a runaway chase cannot
/// exhaust memory (the journal reports what it drops).
const JOURNAL_CAPACITY: usize = 1 << 20;

const USAGE: &str = "\
rde — reverse data exchange with nulls (Fagin, Kolaitis, Popa, Tan; PODS 2009)

USAGE:
    rde <command> [args] [--consts N] [--nulls N] [--facts N] [--examples N]
                  [--node-budget N] [--time-budget-ms N] [--retries N]
                  [--deadline-ms N] [--stats] [--metrics] [--trace-out PATH]
                  [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]
                  [--backend row|columnar] [--variant naive|semi-naive|restricted]

COMMANDS:
    chase    <mapping> <instance>             canonical universal solution chase_M(I)
    reverse  <mapping> <reverse> <instance>   reverse exchange: leaves of chase_M'(chase_M(I))
    invert   <mapping>                        maximum extended recovery of a full-tgd mapping
    check-chase-inverse <mapping> <reverse>   chase-inverse counterexample search (Thm 3.17)
    check-recovery <mapping> <reverse>        extended / maximum extended recovery check (Thm 4.13)
    invertible <mapping>                      homomorphism-property check (Thm 3.13)
    loss     <mapping>                        information-loss census (Cor 4.14)
    compare  <mapping1> <mapping2>            less-lossy comparison (Def 6.6)
    certain  <mapping> <reverse> <instance> <query>
                                              reverse certain answers (Thm 6.5);
                                              query syntax: 'q(x) :- P(x, y)'
    core     <mapping> <instance>             core universal solution (minimal chase)
    hom      <instance1> <instance2>          decide I1 -> I2, equivalence, isomorphism
    eval     <instance> <query>               q(I) and q(I)↓
    minimize-query <query>                    CQ minimization (core of the query)
    normalize <mapping>                       tgd normal form (split conclusions)
    analyze  <mapping>                        static chase-termination analysis: weak
                                              acyclicity / stratification verdict, the
                                              offending cycle if unproven, and suggested
                                              round/node budgets (exit 1 when unproven)
    compose  <mapping12> <mapping23>          syntactic composition (m12 full tgds)
    faithful <mapping> <reverse>              universal-faithfulness check (Def 6.1)
    profile  <mapping> <instance>             chase under tracing; print the span-tree
                                              time breakdown (µs per subsystem) and
                                              per-span p50/p99 latency quantiles
    profile  <workload> <args…>               same, for another command's engine run;
                                              workload ∈ chase|invertible|compare|loss
    profile  <journal.jsonl> --request-id N   span breakdown of one request extracted
                                              from an interleaved journal file
    serve    <catalog-dir>                    daemon: serve every NAME.map (+ optional
                                              NAME.rev) in the directory over TCP
                                              [--addr HOST:PORT] [--max-inflight N]
                                              [--cache-memo N] [--cache-classes N]
                                              [--access-log PATH] [--trace-slow-ms N]
                                              [--tenant-quota NAME=rps[:burst]]…
                                              [--conn-idle-ms N] [--max-strikes N]
                                              [--require-terminating]
    call     <addr> <op> [args…]              one request against a running daemon;
                                              op ∈ ping|list|stats|metrics|reload
                                              | invertible <mapping>
                                              | chase <mapping> <instance>
                                              | arrow <mapping> <inst1> <inst2>
                                              | certain <mapping> <instance> <query>
                                              [--retries N] [--tenant NAME]
    top      <addr>                           live per-mapping request table polled
                                              from the daemon's METRICS op
                                              [--interval-ms N] [--iterations N]
    help                                      this message

The --consts/--nulls/--facts flags size the bounded universe used by the
checking commands (defaults: 2/1/2). Counterexamples found are genuine;
a pass is exact within the bound.

--node-budget N caps every homomorphism search at N nodes, and
--time-budget-ms N caps it in wall-clock time: checks then answer
UNKNOWN instead of searching without bound (counterexamples reported
under a budget are still genuine). --retries N reruns an UNKNOWN check
up to N more times with exponentially escalated budgets. --stats prints
search-work counters after the answer (chase, invertible, compare,
check-recovery).

--deadline-ms N caps the whole command in wall-clock time: the engines
cancel cooperatively at the next round/search boundary and the process
exits with status 3 instead of printing a partial answer. Ctrl-C
cancels the same way (a second Ctrl-C kills the process).

--trace-out PATH streams the structured JSONL event journal (spans,
chase rounds, tgd firings, budget exhaustions) to PATH; --metrics
prints the process-wide metrics registry snapshot at exit.

--checkpoint PATH makes `chase` and `core` write a resumable snapshot
of the chase round state to PATH (atomically, every
--checkpoint-every N completed rounds; default 1). --resume PATH
restarts an interrupted run from such a snapshot; the resumed result
is bit-identical to an uninterrupted run.

--backend {row,columnar} picks the instance storage layout (default
row). The columnar backend dictionary-encodes values and buckets rows
by null pattern, pruning premise-match candidates; results are
bit-identical across backends — compare --metrics or `rde profile`
output to see the work difference (chase.bucket.scanned/skipped).

--variant {naive,semi-naive,restricted} picks the chase variant for
every chase the command runs. naive and semi-naive are oblivious (every
trigger fires; semi-naive only re-matches against each round's delta);
restricted skips a trigger whose conclusion is already satisfied in the
live instance, trading a satisfaction check per trigger for a smaller
result. All three produce hom-equivalent results with identical cores.
For `call`, the flag is forwarded as the `variant` request header.

`analyze MAPPING` proves chase termination statically when it can:
weakly-acyclic (no position-graph cycle through a null-inventing
special edge), else stratified (every firing-graph stratum weakly
acyclic on its own, with Constant guards breaking null-fed cycles),
else unproven — then the offending cycle is printed and the exit
status is 1. Suggested --max-rounds/--node-budget caps scale with the
proven rank. `serve --require-terminating` runs the same analysis at
catalog load and rejects unproven entries with a typed error.

`serve` prints `listening on HOST:PORT` once ready (`--addr` port 0
picks a free port) and runs until Ctrl-C, then drains in-flight
requests and exits 0. Each mapping gets a warm arrow cache bounded by
--cache-memo/--cache-classes; past --max-inflight concurrent requests
the daemon answers SHED instead of queueing without bound.

Serve hardening: SIGHUP or the RELOAD op re-scans the catalog and
atomically swaps a new generation in (in-flight requests finish on the
old one; unchanged mappings keep their warm caches; a broken catalog
rejects the swap and the old generation keeps serving). Repeatable
--tenant-quota NAME=rps[:burst] token-buckets requests by their
`tenant` header (the name `default` covers anonymous and unquoted
tenants); over-quota requests get SHED with a retry-after-ms hint.
--conn-idle-ms N closes connections idle or stalled past N ms (0
disables; default 60000), and --max-strikes N (default 3) closes a
connection after N protocol violations (oversized lines/headers/body,
malformed or duplicated headers — each answered with a typed ERR).

`call` exit status: 0 on an OK reply, 1 on an ERR reply or connection
failure, 3 when this client's own --deadline-ms elapsed first, 4 on a
SHED or UNKNOWN reply (retryable: the server shed load, enforced
--server-deadline-ms, or ran out of --node-budget/--time-budget-ms).
`call --retries N` retries those in-process: SHEDs wait the server's
retry-after-ms hint (else exponential backoff), UNKNOWNs escalate the
--node-budget/--time-budget-ms headers. `top` survives daemon
restarts: a lost connection renders a `disconnected` banner and
reconnects with backoff instead of exiting.

Serve telemetry: every request gets a monotonic id stamped as a `req`
field on all of its journal records, engine worker threads included.
--access-log PATH streams the request journal to a rotating JSONL file
(one `serve.access` line per request: op, mapping, backend, outcome,
elapsed µs, arrow-cache hit/miss). --trace-slow-ms N buffers each
request's span tree and journals it only when the request took ≥ N ms
(0 keeps every tree). `rde profile LOG --request-id N` then rebuilds
one request's span breakdown from the interleaved file, and `rde top
ADDR` renders a live per-mapping table (req/s, p50/p99, inflight,
sheds, cache occupancy) by polling the METRICS op.
";

/// Run a full command line (everything after `argv[0]`).
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let opts = Options::parse(rest)?;
    // `profile` drives its own in-memory journal; for every other
    // command --trace-out streams the journal straight to the file.
    let journal_attached = if cmd != "profile" && opts.trace_out.is_some() {
        let path = opts.trace_out.as_deref().unwrap();
        journal::attach(Sink::File(path.into()), JOURNAL_CAPACITY)
            .map_err(|e| format!("--trace-out `{path}`: {e}"))?;
        journal::enabled()
    } else {
        false
    };
    let result = match cmd.as_str() {
        "chase" => cmd_chase(&opts),
        "reverse" => cmd_reverse(&opts),
        "invert" => cmd_invert(&opts),
        "check-chase-inverse" => cmd_check_chase_inverse(&opts),
        "check-recovery" => cmd_check_recovery(&opts),
        "invertible" => cmd_invertible(&opts),
        "loss" => cmd_loss(&opts),
        "compare" => cmd_compare(&opts),
        "certain" => cmd_certain(&opts),
        "core" => cmd_core(&opts),
        "hom" => cmd_hom(&opts),
        "eval" => cmd_eval(&opts),
        "minimize-query" => cmd_minimize_query(&opts),
        "normalize" => cmd_normalize(&opts),
        "analyze" => cmd_analyze(&opts),
        "compose" => cmd_compose(&opts),
        "faithful" => cmd_faithful(&opts),
        "profile" => cmd_profile(&opts),
        "serve" => cmd_serve(&opts),
        "call" => cmd_call(&opts),
        "top" => cmd_top(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Message(format!("unknown command `{other}`; run `rde help`"))),
    };
    if journal_attached {
        if let Some(summary) = journal::detach() {
            if summary.dropped > 0 {
                eprintln!(
                    "# trace journal truncated: {} record(s) dropped past capacity",
                    summary.dropped
                );
            }
        }
    }
    if opts.metrics {
        let snap = rde_obs::snapshot();
        if snap.is_empty() {
            println!("# metrics: none recorded");
        } else {
            print!("{}", snap.render());
        }
    }
    result
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_mapping(vocab: &mut Vocabulary, path: &str) -> Result<SchemaMapping, String> {
    parse_mapping(vocab, &read(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Parse an instance file and land it on the backend selected by
/// `--backend` (every instance derived from it inherits the layout).
fn load_instance(vocab: &mut Vocabulary, opts: &Options, path: &str) -> Result<Instance, String> {
    parse_instance(vocab, &read(path)?)
        .map(|i| i.into_backend(opts.backend))
        .map_err(|e| format!("{path}: {e}"))
}

fn universe(vocab: &mut Vocabulary, opts: &Options) -> Universe {
    Universe::new(vocab, opts.consts, opts.nulls, opts.facts)
}

fn hom_config(opts: &Options) -> HomConfig {
    HomConfig {
        node_budget: opts.node_budget,
        time_budget: opts.time_budget_ms.map(Duration::from_millis),
        ctx: exec_context(opts),
        ..HomConfig::default()
    }
}

/// Chase options for the chase-driving commands: the command's context
/// plus any `--checkpoint`/`--resume` flags, on the `--variant` chase
/// (the build default when the flag is absent).
fn chase_options(opts: &Options) -> ChaseOptions {
    ChaseOptions {
        hom: hom_config(opts),
        ctx: exec_context(opts),
        checkpoint: opts
            .checkpoint
            .as_deref()
            .map(|path| CheckpointPolicy::new(path, opts.checkpoint_every)),
        resume_from: opts.resume.as_deref().map(Into::into),
        ..ChaseOptions::for_variant(opts.variant.unwrap_or_default())
    }
}

fn retry_policy(opts: &Options) -> RetryPolicy {
    RetryPolicy::with_retries(opts.retries)
}

fn print_retry_note(attempts: u32) {
    if attempts > 1 {
        println!("# retried with escalated budgets: {attempts} attempt(s)");
    }
}

fn print_hom_stats(stats: &HomStats) {
    println!(
        "# hom search: {} node(s), {} backtrack(s), {} hom(s) found",
        stats.nodes, stats.backtracks, stats.found
    );
}

fn cmd_chase(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let instance = load_instance(&mut vocab, opts, opts.positional(1, "instance file")?)?;
    let options = chase_options(opts);
    let result = rde_chase::chase(&instance, &mapping.dependencies, &mut vocab, &options)
        .map_err(chase_err)?;
    print!("{}", display::instance(&vocab, &result.instance.restrict_to(&mapping.target)));
    if opts.stats {
        println!("# chase: {} round(s), {} trigger(s) fired", result.rounds, result.fired);
        print_hom_stats(&result.hom);
    }
    Ok(())
}

fn cmd_reverse(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let reverse = load_mapping(&mut vocab, opts.positional(1, "reverse mapping file")?)?;
    let instance = load_instance(&mut vocab, opts, opts.positional(2, "instance file")?)?;
    let u = chase_mapping(&instance, &mapping, &mut vocab, &ChaseOptions::default())
        .map_err(|e| e.to_string())?;
    let result = disjunctive_chase(
        &u,
        &reverse.dependencies,
        &mut vocab,
        &DisjunctiveChaseOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("# {} leaf instance(s)", result.leaves.len());
    for (i, leaf) in result.leaves.iter().enumerate() {
        println!("# leaf {}", i + 1);
        print!("{}", display::instance(&vocab, &leaf.restrict_to(&mapping.source)));
    }
    Ok(())
}

fn cmd_invert(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let recovery =
        maximum_extended_recovery_full(&mapping, &mut vocab, &QuasiInverseOptions::default())
            .map_err(|e| e.to_string())?;
    print!("{}", printer::mapping(&vocab, &recovery));
    Ok(())
}

fn cmd_check_chase_inverse(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let reverse = load_mapping(&mut vocab, opts.positional(1, "reverse mapping file")?)?;
    let u = universe(&mut vocab, opts);
    let family = u.collect_instances(&vocab, &mapping.source).map_err(|e| e.to_string())?;
    println!("# checking {} source instance(s)", family.len());
    match rde_core::chase_inverse::find_chase_inverse_counterexample(
        &mapping,
        &reverse,
        family.iter(),
        &mut vocab,
    )
    .map_err(|e| e.to_string())?
    {
        None => println!("chase-inverse: HOLDS within bound (extended inverse by Thm 3.17)"),
        Some(cex) => {
            println!("chase-inverse: FAILS at source instance:");
            print!("{}", display::instance(&vocab, &cex));
        }
    }
    Ok(())
}

fn cmd_check_recovery(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let reverse = load_mapping(&mut vocab, opts.positional(1, "reverse mapping file")?)?;
    let u = universe(&mut vocab, opts);
    let family = u.collect_instances(&vocab, &mapping.source).map_err(|e| e.to_string())?;
    let copts = ComposeOptions::default();
    println!("# checking {} source instance(s)", family.len());
    match rde_core::recovery::find_extended_recovery_counterexample(
        &mapping,
        &reverse,
        family.iter(),
        &mut vocab,
        &copts,
    )
    .map_err(|e| e.to_string())?
    {
        Some(cex) => {
            println!("extended recovery: FAILS at source instance:");
            print!("{}", display::instance(&vocab, &cex));
            return Ok(());
        }
        None => println!("extended recovery: HOLDS within bound"),
    }
    let mut stats = HomStats::default();
    let (verdict, attempts) = retry_budgeted(
        &hom_config(opts),
        &retry_policy(opts),
        |cfg| {
            rde_core::recovery::check_maximum_extended_recovery_budgeted(
                &mapping, &reverse, &u, &mut vocab, &copts, cfg, &mut stats,
            )
        },
        |outcome| matches!(outcome, Ok(rde_core::recovery::MaxRecoveryVerdict::Unknown { .. })),
    );
    print_retry_note(attempts);
    match verdict.map_err(core_err)? {
        rde_core::recovery::MaxRecoveryVerdict::HoldsWithinBound => {
            println!("maximum extended recovery (e(M)∘e(M') = →_M): HOLDS within bound");
        }
        rde_core::recovery::MaxRecoveryVerdict::NotContainedInArrowM { i1, i2 } => {
            println!("maximum extended recovery: FAILS (composition exceeds →_M) at pair:");
            print!("{}", display::instance(&vocab, &i1));
            println!("--");
            print!("{}", display::instance(&vocab, &i2));
        }
        rde_core::recovery::MaxRecoveryVerdict::MissesArrowMPair { i1, i2 } => {
            println!("maximum extended recovery: FAILS (misses a →_M pair):");
            print!("{}", display::instance(&vocab, &i1));
            println!("--");
            print!("{}", display::instance(&vocab, &i2));
        }
        rde_core::recovery::MaxRecoveryVerdict::Unknown { budget: Exhausted::Cancelled } => {
            return Err(CliError::Cancelled);
        }
        rde_core::recovery::MaxRecoveryVerdict::Unknown { budget } => {
            println!(
                "maximum extended recovery: UNKNOWN ({budget}); raise --node-budget or --retries"
            );
        }
    }
    if opts.stats {
        print_hom_stats(&stats);
    }
    Ok(())
}

fn cmd_invertible(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let u = universe(&mut vocab, opts);
    let mut stats = HomStats::default();
    let (verdict, attempts) = retry_budgeted(
        &hom_config(opts),
        &retry_policy(opts),
        |cfg| {
            rde_core::invertibility::check_homomorphism_property_budgeted(
                &mapping, &u, &mut vocab, cfg, &mut stats,
            )
        },
        |outcome| matches!(outcome, Ok(rde_core::invertibility::BoundedVerdict::Unknown { .. })),
    );
    print_retry_note(attempts);
    match verdict.map_err(core_err)? {
        rde_core::invertibility::BoundedVerdict::HoldsWithinBound => {
            println!("homomorphism property: HOLDS within bound (extended-invertible evidence)");
        }
        rde_core::invertibility::BoundedVerdict::Counterexample { i1, i2 } => {
            println!("NOT extended-invertible; counterexample (I1 →_M I2 but I1 ↛ I2):");
            print!("{}", display::instance(&vocab, &i1));
            println!("--");
            print!("{}", display::instance(&vocab, &i2));
        }
        rde_core::invertibility::BoundedVerdict::Unknown { budget: Exhausted::Cancelled } => {
            return Err(CliError::Cancelled);
        }
        rde_core::invertibility::BoundedVerdict::Unknown { budget } => {
            println!("homomorphism property: UNKNOWN ({budget}); raise --node-budget or --retries");
        }
    }
    if opts.stats {
        print_hom_stats(&stats);
    }
    Ok(())
}

fn cmd_loss(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let u = universe(&mut vocab, opts);
    let report = rde_core::loss::information_loss_scoped(
        &mapping,
        &u,
        &mut vocab,
        opts.examples,
        &exec_context(opts),
    )
    .map_err(core_err)?;
    println!("universe size:    {}", report.universe_size);
    println!("pairs in →_M:     {}", report.arrow_m_pairs);
    println!("pairs in →:       {}", report.hom_pairs);
    println!(
        "lost pairs:       {} ({:.2}% of all pairs)",
        report.lost_pairs,
        100.0 * report.loss_fraction()
    );
    for (i1, i2) in &report.examples {
        println!(
            "lost: {} →_M {} (no homomorphism)",
            display::instance_inline(&vocab, i1),
            display::instance_inline(&vocab, i2)
        );
    }
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let m1 = load_mapping(&mut vocab, opts.positional(0, "first mapping file")?)?;
    let m2 = load_mapping(&mut vocab, opts.positional(1, "second mapping file")?)?;
    let u = universe(&mut vocab, opts);
    let mut stats = HomStats::default();
    let (cmp, attempts) = retry_budgeted(
        &hom_config(opts),
        &retry_policy(opts),
        |cfg| {
            rde_core::compare::compare_lossiness_budgeted(&m1, &m2, &u, &mut vocab, cfg, &mut stats)
        },
        |outcome| matches!(outcome, Ok(rde_core::compare::Comparison::Unknown { .. })),
    );
    print_retry_note(attempts);
    match cmp.map_err(core_err)? {
        rde_core::compare::Comparison::EquallyLossy => println!("equally lossy (within bound)"),
        rde_core::compare::Comparison::StrictlyLessLossy => {
            println!("mapping 1 is strictly less lossy than mapping 2");
        }
        rde_core::compare::Comparison::StrictlyMoreLossy => {
            println!("mapping 2 is strictly less lossy than mapping 1");
        }
        rde_core::compare::Comparison::Incomparable { only_in_m1, only_in_m2 } => {
            println!("incomparable:");
            println!(
                "  pair only in →_M1: {} / {}",
                display::instance_inline(&vocab, &only_in_m1.0),
                display::instance_inline(&vocab, &only_in_m1.1)
            );
            println!(
                "  pair only in →_M2: {} / {}",
                display::instance_inline(&vocab, &only_in_m2.0),
                display::instance_inline(&vocab, &only_in_m2.1)
            );
        }
        rde_core::compare::Comparison::Unknown { budget: Exhausted::Cancelled } => {
            return Err(CliError::Cancelled);
        }
        rde_core::compare::Comparison::Unknown { budget } => {
            println!("comparison: UNKNOWN ({budget}); raise --node-budget or --retries");
        }
    }
    if opts.stats {
        print_hom_stats(&stats);
    }
    Ok(())
}

fn cmd_certain(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let reverse = load_mapping(&mut vocab, opts.positional(1, "reverse mapping file")?)?;
    let instance = load_instance(&mut vocab, opts, opts.positional(2, "instance file")?)?;
    let query_text = opts.positional(3, "query")?;
    let q = ConjunctiveQuery::parse(&mut vocab, query_text).map_err(|e| e.to_string())?;
    let answers = rde_query::reverse_certain_answers(
        &q,
        &instance,
        &mapping,
        &reverse,
        &mut vocab,
        &DisjunctiveChaseOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("# {} certain answer(s)", answers.len());
    for tuple in &answers {
        let rendered: Vec<String> = tuple.iter().map(|&v| vocab.value_name(v)).collect();
        println!("({})", rendered.join(", "));
    }
    Ok(())
}

fn cmd_core(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let instance = load_instance(&mut vocab, opts, opts.positional(1, "instance file")?)?;
    let options = chase_options(opts);
    let core = rde_chase::core_chase_mapping(&instance, &mapping, &mut vocab, &options)
        .map_err(chase_err)?;
    print!("{}", display::instance(&vocab, &core));
    Ok(())
}

fn cmd_hom(opts: &Options) -> Result<(), CliError> {
    // Both instances share one vocabulary: `?name` in either file
    // denotes the same labeled null.
    let mut vocab = Vocabulary::new();
    let i1 = load_instance(&mut vocab, opts, opts.positional(0, "first instance file")?)?;
    let i2 = load_instance(&mut vocab, opts, opts.positional(1, "second instance file")?)?;
    match rde_hom::find_hom(&i1, &i2) {
        Some(h) => {
            println!("I1 -> I2: YES");
            let mut bindings: Vec<(rde_model::NullId, rde_model::Value)> = h.iter().collect();
            bindings.sort();
            for (n, img) in bindings {
                println!("  {} |-> {}", vocab.null_name(n), vocab.value_name(img));
            }
        }
        None => println!("I1 -> I2: NO"),
    }
    println!("I2 -> I1: {}", if rde_hom::exists_hom(&i2, &i1) { "YES" } else { "NO" });
    println!(
        "hom-equivalent: {}; isomorphic: {}",
        rde_hom::hom_equivalent(&i1, &i2),
        rde_hom::is_isomorphic(&i1, &i2)
    );
    Ok(())
}

fn cmd_eval(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let instance = load_instance(&mut vocab, opts, opts.positional(0, "instance file")?)?;
    let q = ConjunctiveQuery::parse(&mut vocab, opts.positional(1, "query")?)
        .map_err(|e| e.to_string())?;
    let all = rde_query::evaluate(&q, &instance);
    let certain = rde_query::drop_nulls(&all);
    println!("# {} answer(s), {} null-free", all.len(), certain.len());
    for tuple in &all {
        let rendered: Vec<String> = tuple.iter().map(|&v| vocab.value_name(v)).collect();
        let mark = if tuple.iter().all(|v| v.is_const()) { "" } else { "   (has nulls)" };
        println!("({}){mark}", rendered.join(", "));
    }
    Ok(())
}

fn cmd_minimize_query(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let q = ConjunctiveQuery::parse(&mut vocab, opts.positional(0, "query")?)
        .map_err(|e| e.to_string())?;
    let min = rde_query::minimize(&q, &vocab).map_err(|e| e.to_string())?;
    let dep = min.as_dependency();
    println!(
        "{} body atom(s) (from {})",
        dep.premise.atoms.len(),
        q.as_dependency().premise.atoms.len()
    );
    println!("{}", rde_deps::printer::dependency(&vocab, dep));
    Ok(())
}

fn cmd_normalize(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let normalized = SchemaMapping::new(
        mapping.source.clone(),
        mapping.target.clone(),
        rde_deps::normalize_all(&mapping.dependencies),
    );
    print!("{}", printer::mapping(&vocab, &normalized));
    Ok(())
}

fn cmd_compose(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let m12 = load_mapping(&mut vocab, opts.positional(0, "first mapping file")?)?;
    let m23 = load_mapping(&mut vocab, opts.positional(1, "second mapping file")?)?;
    let composed = rde_core::unfold::compose_mappings(
        &m12,
        &m23,
        &vocab,
        &rde_core::unfold::UnfoldOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    print!("{}", printer::mapping(&vocab, &composed));
    Ok(())
}

fn cmd_faithful(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let reverse = load_mapping(&mut vocab, opts.positional(1, "reverse mapping file")?)?;
    let u = universe(&mut vocab, opts);
    match rde_core::faithful::check_universal_faithful(&mapping, &reverse, &u, &mut vocab)
        .map_err(|e| e.to_string())?
    {
        None => println!("universal-faithful: HOLDS within bound (Def 6.1)"),
        Some((source, report)) => {
            println!("universal-faithful: FAILS at source instance:");
            print!("{}", display::instance(&vocab, &source));
            println!(
                "condition (1) every-leaf-exports-at-least: {}",
                report.every_leaf_exports_at_least
            );
            println!(
                "condition (2) some-leaf-exports-at-most:   {}",
                report.some_leaf_exports_at_most
            );
            println!(
                "condition (3) universality:                {}",
                report.universality_within_bound
            );
            if let Some(cex) = report.universality_counterexample {
                println!("unreachable I':");
                print!("{}", display::instance(&vocab, &cex));
            }
        }
    }
    Ok(())
}

/// Rotating access-log sink bounds: 64 MiB per file, 4 rotated files
/// kept — enough history to debug an incident, bounded on disk.
const ACCESS_LOG_MAX_BYTES: u64 = 64 << 20;
const ACCESS_LOG_KEEP: usize = 4;

/// `rde serve <catalog-dir>` — run the mapping daemon until Ctrl-C.
fn cmd_analyze(opts: &Options) -> Result<(), CliError> {
    let mut vocab = Vocabulary::new();
    let path = opts.positional(0, "mapping file")?;
    let mapping = load_mapping(&mut vocab, path)?;
    let ctx = exec_context(opts);
    let report = rde_deps::analyze_mapping(&mapping, &ctx).map_err(|e| match e {
        rde_deps::AnalyzeError::Cancelled => CliError::Cancelled,
        e => CliError::Message(e.to_string()),
    })?;
    print!("{}", report.render(&vocab));
    if !report.verdict.is_terminating() {
        return Err(CliError::Message(format!(
            "termination unproven for `{path}`; chase it only with explicit budgets \
             (e.g. --node-budget {})",
            report.suggested_node_budget
        )));
    }
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), CliError> {
    use std::io::Write as _;
    let catalog = opts.positional(0, "catalog directory")?;
    rde_faults::install_interrupt_handler();
    // SIGHUP asks for a catalog reload (same path as the RELOAD op);
    // the accept loop polls the latch between accepts.
    rde_faults::install_reload_handler();
    let shutdown = CancelToken::new().watching_interrupt();
    let defaults = rde_serve::ServeOptions::default();
    let tenant_quotas = opts
        .tenant_quotas
        .iter()
        .map(|spec| rde_serve::TenantQuota::parse(spec))
        .collect::<Result<Vec<_>, _>>()
        .map_err(CliError::Message)?;
    let idle_timeout = match opts.conn_idle_ms {
        Some(0) => None, // 0 disables the read/idle deadline entirely
        Some(ms) => Some(Duration::from_millis(ms)),
        None => defaults.idle_timeout,
    };
    let serve_options = rde_serve::ServeOptions {
        addr: opts.addr.clone().unwrap_or_else(|| "127.0.0.1:7643".to_owned()),
        catalog: catalog.into(),
        backend: opts.backend,
        dims: rde_serve::UniverseDims { consts: opts.consts, nulls: opts.nulls, facts: opts.facts },
        policy: rde_core::arrow::CachePolicy::bounded(
            opts.cache_memo.unwrap_or(defaults.policy.max_memo),
            opts.cache_classes.unwrap_or(defaults.policy.max_interned),
        ),
        max_inflight: opts.max_inflight.unwrap_or(defaults.max_inflight),
        trace_slow_ms: opts.trace_slow_ms,
        tenant_quotas,
        idle_timeout,
        max_strikes: opts.max_strikes.unwrap_or(defaults.max_strikes),
        require_terminating: opts.require_terminating,
        ..defaults
    };
    // --access-log points the process journal at a rotating file: one
    // `serve.access` JSONL line per request, plus any span trees the
    // slow-request sampler keeps. The journal is process-global, so it
    // and --trace-out cannot both own the sink.
    let access_log_attached = match (&opts.access_log, &opts.trace_out) {
        (Some(_), Some(_)) => {
            return Err(CliError::Message(
                "--access-log and --trace-out both claim the journal; pass one".into(),
            ));
        }
        (Some(path), None) => {
            journal::attach(
                Sink::rotating(path.as_str(), ACCESS_LOG_MAX_BYTES, ACCESS_LOG_KEEP),
                JOURNAL_CAPACITY,
            )
            .map_err(|e| format!("--access-log `{path}`: {e}"))?;
            journal::enabled()
        }
        _ => false,
    };
    let served: Result<(), CliError> = (|| {
        let server = rde_serve::Server::bind(serve_options).map_err(|e| e.to_string())?;
        let addr = server.local_addr().map_err(|e| format!("bound address: {e}"))?;
        println!("serving {}", server.mapping_names().join(", "));
        println!("listening on {addr}");
        // The readiness lines are the startup handshake (tests and the
        // quickstart read the port from them); make sure they leave the
        // process before the accept loop blocks.
        let _ = std::io::stdout().flush();
        server.serve(&shutdown).map_err(|e| e.to_string())?;
        Ok(())
    })();
    if access_log_attached {
        if let Some(summary) = journal::detach() {
            if summary.dropped > 0 || summary.io_errors > 0 {
                eprintln!(
                    "# access log: {} record(s) dropped past capacity, {} io error(s)",
                    summary.dropped, summary.io_errors
                );
            }
        }
    }
    served?;
    eprintln!("rde serve: drained and shut down");
    Ok(())
}

/// `rde top <addr>` — poll `METRICS` and render a live per-mapping
/// table until interrupted (or for `--iterations N` refreshes).
fn cmd_top(opts: &Options) -> Result<(), CliError> {
    use std::io::{IsTerminal as _, Write as _};
    let addr = opts.positional(0, "server address")?;
    rde_faults::install_interrupt_handler();
    let token = CancelToken::new().watching_interrupt();
    // Reconnect ceiling: a restarting daemon is back within seconds;
    // past the cap we keep trying at the cap rather than giving up.
    const RECONNECT_BASE_MS: u64 = 100;
    const RECONNECT_CAP_MS: u64 = 2_000;
    let connect = |deadline: Option<u64>| -> Result<rde_serve::Client, CliError> {
        let mut c = rde_serve::Client::connect(addr).map_err(|e| e.to_string())?;
        c.set_deadline(deadline.map(Duration::from_millis)).map_err(|e| e.to_string())?;
        Ok(c)
    };
    // Sleep in short slices so Ctrl-C lands between refreshes; true
    // means the token cancelled mid-sleep.
    let sleep_cancellable = |ms: u64| -> bool {
        let mut left = ms;
        while left > 0 {
            if token.is_cancelled() {
                return true;
            }
            let slice = left.min(50);
            std::thread::sleep(Duration::from_millis(slice));
            left -= slice;
        }
        token.is_cancelled()
    };
    let mut client: Option<rde_serve::Client> = Some(connect(opts.deadline_ms)?);
    let mut reconnect_wait = RECONNECT_BASE_MS;
    let mut prev: Option<(crate::top::Poll, std::time::Instant)> = None;
    let mut remaining = opts.iterations;
    loop {
        // A dead connection (server restarting, mid-poll EOF) renders
        // a `disconnected` banner and retries with backoff instead of
        // exiting: `top` is a monitor, restarts are what it watches.
        let poll_result = match client.as_mut() {
            Some(c) => match c.request(&rde_serve::Request::bare("METRICS")) {
                Ok(rde_serve::Reply::Ok(lines)) => Some(crate::top::Poll::parse(&lines)?),
                Ok(reply) => return Err(CliError::Message(format!("METRICS: {reply:?}"))),
                Err(rde_serve::ClientError::Deadline) => return Err(CliError::Cancelled),
                Err(rde_serve::ClientError::Io(_)) => None,
            },
            None => match connect(opts.deadline_ms) {
                Ok(mut c) => match c.request(&rde_serve::Request::bare("METRICS")) {
                    Ok(rde_serve::Reply::Ok(lines)) => {
                        client = Some(c);
                        Some(crate::top::Poll::parse(&lines)?)
                    }
                    Ok(reply) => return Err(CliError::Message(format!("METRICS: {reply:?}"))),
                    Err(rde_serve::ClientError::Deadline) => return Err(CliError::Cancelled),
                    Err(rde_serve::ClientError::Io(_)) => None,
                },
                Err(_) => None,
            },
        };
        let Some(poll) = poll_result else {
            client = None;
            // Rate deltas across an outage would mix two server
            // lifetimes (counters reset on restart); drop the anchor.
            prev = None;
            if std::io::stdout().is_terminal() {
                print!("\x1b[2J\x1b[H");
            }
            println!("disconnected from {addr}; retrying in {reconnect_wait}ms");
            let _ = std::io::stdout().flush();
            // Banner refreshes count against --iterations too, so a
            // scripted `top --iterations N` terminates even when the
            // server never comes back.
            if let Some(n) = remaining.as_mut() {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    return Ok(());
                }
            }
            if sleep_cancellable(reconnect_wait) {
                return Ok(());
            }
            reconnect_wait = reconnect_wait.saturating_mul(2).min(RECONNECT_CAP_MS);
            continue;
        };
        reconnect_wait = RECONNECT_BASE_MS;
        let now = std::time::Instant::now();
        let table =
            crate::top::render(prev.as_ref().map(|(p, at)| (p, now.duration_since(*at))), &poll);
        // Only a live terminal gets the clear-screen dance; piped
        // output stays an appendable log of refreshes.
        if std::io::stdout().is_terminal() {
            print!("\x1b[2J\x1b[H");
        }
        print!("{table}");
        let _ = std::io::stdout().flush();
        prev = Some((poll, now));
        if let Some(n) = remaining.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                return Ok(());
            }
        }
        if sleep_cancellable(opts.interval_ms) {
            return Ok(());
        }
    }
}

/// `rde call <addr> <op> [args…]` — one request against a daemon.
fn cmd_call(opts: &Options) -> Result<(), CliError> {
    let addr = opts.positional(0, "server address")?;
    let op = opts.positional(1, "op")?.to_ascii_lowercase();
    let mut request = match op.as_str() {
        "ping" | "list" | "stats" | "metrics" | "reload" => rde_serve::Request::bare(&op),
        "invertible" => rde_serve::Request::on(&op, opts.positional(2, "mapping name")?),
        "chase" => rde_serve::Request::on(&op, opts.positional(2, "mapping name")?)
            .body_text(&read(opts.positional(3, "instance file")?)?),
        "arrow" => {
            let body = format!(
                "{}--\n{}",
                read(opts.positional(3, "first instance file")?)?,
                read(opts.positional(4, "second instance file")?)?
            );
            rde_serve::Request::on(&op, opts.positional(2, "mapping name")?).body_text(&body)
        }
        "certain" => rde_serve::Request::on(&op, opts.positional(2, "mapping name")?)
            .header("query", opts.positional(4, "query")?)
            .body_text(&read(opts.positional(3, "instance file")?)?),
        other => return Err(CliError::Message(format!("unknown call op `{other}`"))),
    };
    if let Some(ms) = opts.server_deadline_ms {
        request = request.header("deadline-ms", ms);
    }
    if let Some(n) = opts.node_budget {
        request = request.header("node-budget", n);
    }
    if let Some(ms) = opts.time_budget_ms {
        request = request.header("time-budget-ms", ms);
    }
    if let Some(tenant) = &opts.tenant {
        request = request.header("tenant", tenant);
    }
    if let Some(variant) = opts.variant {
        request = request.header("variant", variant.name());
    }
    let mut client = rde_serve::Client::connect(addr).map_err(|e| e.to_string())?;
    client.set_deadline(opts.deadline_ms.map(Duration::from_millis)).map_err(|e| e.to_string())?;
    // --retries N maps onto the client's retry loop: SHEDs wait out
    // the server's retry-after hint, UNKNOWNs escalate the budget
    // headers — same policy shape the local checks use.
    let policy = rde_core::retry::RetryPolicy::with_retries(opts.retries);
    match client.call_with_retry(&request, &policy) {
        Ok(rde_serve::Reply::Ok(lines)) => {
            for line in lines {
                println!("{line}");
            }
            Ok(())
        }
        Ok(rde_serve::Reply::Err(m)) => Err(CliError::Message(format!("server: {m}"))),
        Ok(rde_serve::Reply::Shed { reason, .. }) => {
            Err(CliError::Shed(format!("server shed: {reason}")))
        }
        Ok(rde_serve::Reply::Unknown(m)) => Err(CliError::Shed(format!("server unknown: {m}"))),
        Err(rde_serve::ClientError::Deadline) => Err(CliError::Cancelled),
        Err(e) => Err(CliError::Message(e.to_string())),
    }
}

/// The chase workload for `profile`: run it, print its totals, and
/// return `(fired, rounds)` for the span-tree cross-check.
fn profile_chase(opts: &Options) -> Result<(u64, u64), CliError> {
    let mut vocab = Vocabulary::new();
    let mapping = load_mapping(&mut vocab, opts.positional(0, "mapping file")?)?;
    let instance = load_instance(&mut vocab, opts, opts.positional(1, "instance file")?)?;
    let options = chase_options(opts);
    let result = rde_chase::chase(&instance, &mapping.dependencies, &mut vocab, &options)
        .map_err(chase_err)?;
    println!(
        "# chase: {} round(s), {} trigger(s) fired, {} fact(s)",
        result.rounds,
        result.fired,
        result.instance.len()
    );
    print_hom_stats(&result.hom);
    Ok((result.fired, result.rounds))
}

/// `rde profile <journal.jsonl> --request-id N` — analyze a journal
/// file written by another process (a serve access log with sampled
/// span trees, a `--trace-out` capture), filtered down to one
/// request's records.
fn profile_journal_file(opts: &Options, id: u64) -> Result<(), CliError> {
    let path = opts.positional(0, "journal file")?;
    let text = read(path)?;
    let mut records = Vec::new();
    let mut requests = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            Record::parse_json_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let req = record.req();
        if req != 0 {
            requests.insert(req);
        }
        if req == id {
            records.push(record);
        }
    }
    if records.is_empty() {
        let hint = match (requests.first(), requests.last()) {
            (Some(lo), Some(hi)) => {
                format!("{} request id(s) present, spanning {lo}..={hi}", requests.len())
            }
            _ => "no request-stamped records at all".to_owned(),
        };
        return Err(CliError::Message(format!("request id {id} not found in `{path}` ({hint})")));
    }
    println!("# request {id}: {} record(s)", records.len());
    match crate::profile::render_span_tree(&records) {
        Some(tree) => {
            print!("{tree}");
            if let Some(table) = crate::profile::render_quantiles(&records) {
                print!("{table}");
            }
        }
        None => println!("# no spans recorded for request {id} (events only)"),
    }
    Ok(())
}

fn cmd_profile(opts: &Options) -> Result<(), CliError> {
    if let Some(id) = opts.request_id {
        return profile_journal_file(opts, id);
    }
    // `profile <workload> …` profiles another command's engine run
    // (`chase`, `invertible`, `compare`, `loss`); the original
    // `profile <mapping> <instance>` form still means the chase.
    let (workload, inner) = match opts.positional.first().map(String::as_str) {
        Some(w @ ("chase" | "invertible" | "compare" | "loss")) => {
            let mut shifted = opts.clone();
            shifted.positional.remove(0);
            (w, shifted)
        }
        _ => ("chase", opts.clone()),
    };
    journal::attach(Sink::Memory, JOURNAL_CAPACITY).map_err(|e| format!("profile journal: {e}"))?;
    let ran = match workload {
        "chase" => profile_chase(&inner).map(Some),
        "invertible" => cmd_invertible(&inner).map(|()| None),
        "compare" => cmd_compare(&inner).map(|()| None),
        _ => cmd_loss(&inner).map(|()| None),
    };
    let summary = journal::detach();
    // The journal is torn down either way; only then propagate the
    // workload's own error.
    let chase_totals = ran?;
    let Some(summary) = summary else {
        println!("# tracing compiled out; rebuild with the `trace` feature to profile");
        return Ok(());
    };
    match crate::profile::render_span_tree(&summary.records) {
        Some(tree) => {
            print!("{tree}");
            if let Some((fired, rounds)) = chase_totals {
                println!(
                    "# chase.run wall time: {} µs",
                    crate::profile::total_elapsed_us(&summary.records, "chase.run")
                );
                // Cross-check: the chase.run span's close fields must
                // agree with the stats the engine returned.
                let span_fired =
                    crate::profile::total_close_field(&summary.records, "chase.run", "fired");
                let span_rounds =
                    crate::profile::total_close_field(&summary.records, "chase.run", "rounds");
                if span_fired != fired || span_rounds != rounds {
                    return Err(CliError::Message(format!(
                        "span tree disagrees with chase stats: span fired={span_fired} \
                         rounds={span_rounds}, stats fired={fired} rounds={rounds}"
                    )));
                }
            }
            if let Some(table) = crate::profile::render_quantiles(&summary.records) {
                print!("{table}");
            }
        }
        None => println!("# no spans recorded"),
    }
    if summary.dropped > 0 {
        println!("# journal truncated: {} record(s) dropped past capacity", summary.dropped);
    }
    if let Some(path) = &opts.trace_out {
        let mut out = String::with_capacity(summary.records.len() * 96);
        for rec in &summary.records {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        fs::write(path, out).map_err(|e| format!("--trace-out `{path}`: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
        let path = dir.join(name);
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rde-cli-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).is_ok());
        assert!(run(&strings(&["help"])).is_ok());
        assert!(run(&strings(&["frobnicate"])).is_err());
    }

    #[test]
    fn chase_and_reverse_roundtrip() {
        let dir = tmpdir("chase");
        let m =
            write(&dir, "m.map", "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n");
        let rev = write(
            &dir,
            "rev.map",
            "source: Q/2, R/2\ntarget: P/3\nQ(x,y) -> exists z . P(x,y,z)\nR(y,z) -> exists x . P(x,y,z)\n",
        );
        let i = write(&dir, "i.inst", "P(a,b,c)\n");
        run(&strings(&["chase", &m, &i])).unwrap();
        run(&strings(&["reverse", &m, &rev, &i])).unwrap();
        run(&strings(&[
            "check-recovery",
            &m,
            &rev,
            "--consts",
            "1",
            "--nulls",
            "1",
            "--facts",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn invert_and_checks() {
        let dir = tmpdir("invert");
        let m = write(&dir, "m.map", "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)\n");
        run(&strings(&["invert", &m])).unwrap();
        run(&strings(&["invertible", &m, "--consts", "1", "--nulls", "0", "--facts", "1"]))
            .unwrap();
        run(&strings(&["loss", &m, "--consts", "1", "--nulls", "1", "--facts", "1"])).unwrap();
    }

    #[test]
    fn stats_and_node_budget_flags_run_end_to_end() {
        let dir = tmpdir("stats");
        let m = write(&dir, "m.map", "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)\n");
        let i = write(&dir, "i.inst", "P(a)\nQ(b)\n");
        run(&strings(&["chase", &m, &i, "--stats"])).unwrap();
        // A starved budget must surface as a clean chase error, not a
        // panic.
        assert!(run(&strings(&["chase", &m, &i, "--node-budget", "0"])).is_err());
        // The checkers degrade to an UNKNOWN verdict instead.
        let common = ["--consts", "1", "--nulls", "0", "--facts", "1", "--stats"];
        let mut args = strings(&["invertible", &m]);
        args.extend(strings(&common));
        run(&args).unwrap();
        let mut args = strings(&["invertible", &m, "--node-budget", "1"]);
        args.extend(strings(&common));
        run(&args).unwrap();
        let mut args = strings(&["compare", &m, &m, "--node-budget", "1"]);
        args.extend(strings(&common));
        run(&args).unwrap();
    }

    #[test]
    fn compare_command() {
        let dir = tmpdir("compare");
        let m1 = write(&dir, "m1.map", "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\n");
        let m2 = write(
            &dir,
            "m2.map",
            "source: P/2\ntarget: Pp/2\nP(x,y) -> exists z . Pp(x,z)\nP(x,y) -> exists u . Pp(u,y)\n",
        );
        run(&strings(&["compare", &m1, &m2, "--consts", "2", "--nulls", "1", "--facts", "1"]))
            .unwrap();
    }

    #[test]
    fn certain_command() {
        let dir = tmpdir("certain");
        let m = write(
            &dir,
            "m.map",
            "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)\n",
        );
        let rev = write(&dir, "rev.map", "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)\n");
        let i = write(&dir, "i.inst", "P(a,b)\n");
        run(&strings(&["certain", &m, &rev, &i, "q(x, y) :- P(x, y)"])).unwrap();
    }

    #[test]
    fn core_hom_eval_commands() {
        let dir = tmpdir("corehom");
        let m = write(&dir, "m.map", "source: P/2\ntarget: Q/2\nP(x, y) -> exists z . Q(x, z)\n");
        let i = write(&dir, "i.inst", "P(a, b)\nP(a, c)\n");
        let i2 = write(&dir, "i2.inst", "P(a, ?w)\n");
        run(&strings(&["core", &m, &i])).unwrap();
        run(&strings(&["hom", &i2, &i])).unwrap();
        run(&strings(&["eval", &i, "q(x) :- P(x, y)"])).unwrap();
        run(&strings(&["minimize-query", "q(x) :- P(x, y) & P(x, z)"])).unwrap();
    }

    #[test]
    fn compose_command() {
        let dir = tmpdir("compose");
        let m12 = write(&dir, "m12.map", "source: A/2\ntarget: B/2\nA(x,y) -> B(x,y)\n");
        let m23 = write(&dir, "m23.map", "source: B/2\ntarget: C/2\nB(x,y) -> C(y,x)\n");
        run(&strings(&["compose", &m12, &m23])).unwrap();
        // Non-full first mapping: clean error.
        let bad = write(&dir, "bad.map", "source: A/2\ntarget: B/2\nA(x,y) -> exists z . B(x,z)\n");
        assert!(run(&strings(&["compose", &bad, &m23])).is_err());
    }

    #[test]
    fn normalize_and_faithful_commands() {
        let dir = tmpdir("normfaith");
        let m =
            write(&dir, "m.map", "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n");
        run(&strings(&["normalize", &m])).unwrap();
        let mu =
            write(&dir, "mu.map", "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\n");
        let rec = write(&dir, "rec.map", "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x) | B(x)\n");
        run(&strings(&["faithful", &mu, &rec, "--consts", "1", "--nulls", "1", "--facts", "1"]))
            .unwrap();
        let bad = write(&dir, "bad.map", "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x)\n");
        run(&strings(&["faithful", &mu, &bad, "--consts", "1", "--nulls", "0", "--facts", "1"]))
            .unwrap();
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run(&strings(&["chase", "/nonexistent.map", "/nonexistent.inst"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn invert_rejects_non_full_mappings_cleanly() {
        let dir = tmpdir("invert-nonfull");
        let m = write(&dir, "m.map", "source: P/1\ntarget: Q/2\nP(x) -> exists y . Q(x, y)\n");
        let err = run(&strings(&["invert", &m])).unwrap_err();
        assert!(err.to_string().contains("full"));
    }
}
