//! Theorem grid: the paper's main results verified across a matrix of
//! mapping families on bounded universes. One test per theorem, looping
//! over the families — broad, uniform coverage that complements the
//! example-specific unit tests.

use rde_chase::{chase_mapping, ChaseOptions};
use rde_core::arrow::ArrowMCache;
use rde_core::compose::ComposeOptions;
use rde_core::invertibility::check_homomorphism_property;
use rde_core::loss::information_loss;
use rde_core::quasi_inverse::{maximum_extended_recovery_full, QuasiInverseOptions};
use rde_core::recovery::check_maximum_extended_recovery;
use rde_core::Universe;
use rde_deps::{parse_mapping, printer, SchemaMapping};
use rde_hom::exists_hom;
use rde_model::Vocabulary;

/// The mapping families of the grid. `full` marks eligibility for the
/// quasi-inverse synthesizer.
const FAMILIES: &[(&str, &str, bool)] = &[
    ("copy", "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)", true),
    ("swap", "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(y,x)", true),
    ("union", "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)", true),
    (
        "union3",
        "source: A/1, B/1, C/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\nC(x) -> R(x)",
        true,
    ),
    ("projection", "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)", true),
    ("diagonal", "source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)", true),
    (
        "join-export",
        "source: S/2\ntarget: T/2, U/1\nS(x,y) -> T(x,y)\nS(x,y) & S(y,x) -> U(x)",
        true,
    ),
    ("two-step", "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)", false),
    ("decomposition", "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)", true),
];

fn load(text: &str) -> (Vocabulary, SchemaMapping) {
    let mut v = Vocabulary::new();
    let m = parse_mapping(&mut v, text).unwrap();
    (v, m)
}

/// Corollary 4.15 across the grid: zero information loss on the bounded
/// universe iff the homomorphism property holds there.
#[test]
fn corollary_4_15_grid() {
    for &(name, text, _) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        let report = information_loss(&m, &u, &mut v, 0).unwrap();
        let hp = check_homomorphism_property(&m, &u, &mut v).unwrap().holds();
        assert_eq!(report.is_lossless_within_bound(), hp, "family {name}");
    }
}

/// Proposition 3.11 across the grid: the chase is an extended universal
/// solution for every bounded source.
#[test]
fn proposition_3_11_grid() {
    for &(name, text, _) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        for i in u.instances(&v, &m.source).unwrap() {
            let chased = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
            assert!(
                rde_core::extended::is_extended_universal_solution(&i, &chased, &m, &mut v)
                    .unwrap(),
                "family {name}, source {i:?}"
            );
        }
    }
}

/// Proposition 4.11's ingredients across the grid: `→ ⊆ →_M` and `→_M`
/// is a preorder on the bounded universe.
#[test]
fn proposition_4_11_grid() {
    for &(name, text, _) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = family.len();
        for a in 0..n {
            assert!(cache.arrow(a, a), "family {name}: reflexivity");
            for b in 0..n {
                if exists_hom(&family[a], &family[b]) {
                    assert!(cache.arrow(a, b), "family {name}: → ⊆ →_M");
                }
                for c in 0..n {
                    if cache.arrow(a, b) && cache.arrow(b, c) {
                        assert!(cache.arrow(a, c), "family {name}: transitivity");
                    }
                }
            }
        }
    }
}

/// Theorem 5.1 + Theorem 4.13 across every full family: synthesis
/// succeeds and the output verifies as a maximum extended recovery.
#[test]
fn theorem_5_1_grid() {
    for &(name, text, full) in FAMILIES {
        if !full {
            continue;
        }
        let (mut v, m) = load(text);
        let rec = maximum_extended_recovery_full(&m, &mut v, &QuasiInverseOptions::default())
            .unwrap_or_else(|e| panic!("family {name}: synthesis failed: {e}"));
        assert!(!rec.uses_constant_guards(), "family {name}: Thm 5.1 language");
        let u = Universe::new(&mut v, 1, 1, 2);
        let verdict =
            check_maximum_extended_recovery(&m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(
            verdict.holds(),
            "family {name}: {verdict:?}\nrecovery:\n{}",
            printer::mapping(&v, &rec)
        );
    }
}

/// Lemma 4.12 across the grid: `e(M) ∘ e(M*) = →_M` for the canonical
/// recovery, on the bounded universe.
#[test]
fn lemma_4_12_grid() {
    for &(name, text, _) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        assert!(rde_core::mstar::check_lemma_4_12(&m, &u, &mut v).unwrap(), "family {name}");
    }
}

/// Theorem 6.4 forward direction across extended-invertible families:
/// reverse certain answers through a chase-inverse equal `q(I)↓`.
#[test]
fn theorem_6_4_grid() {
    // (mapping, chase-inverse, source query) triples for the
    // extended-invertible members of the grid.
    let cases = [
        (
            "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)",
            "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)",
            "q(x, y) :- P(x, y)",
        ),
        (
            "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(y,x)",
            "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(y,x)",
            "q(x) :- P(x, y)",
        ),
        (
            "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)",
            "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)",
            "q(x, z) :- P(x, y) & P(y, z)",
        ),
    ];
    for (m_text, rev_text, q_text) in cases {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, m_text).unwrap();
        let rev = parse_mapping(&mut v, rev_text).unwrap();
        let q = rde_query::ConjunctiveQuery::parse(&mut v, q_text).unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        for i in u.instances(&v, &m.source).unwrap() {
            let direct = rde_query::evaluate_null_free(&q, &i);
            let reversed = rde_query::reverse_certain_answers(
                &q,
                &i,
                &m,
                &rev,
                &mut v,
                &rde_chase::DisjunctiveChaseOptions::default(),
            )
            .unwrap();
            assert_eq!(direct, reversed, "mapping {m_text}, source {i:?}");
        }
    }
}

/// The less-lossy order of Section 6.3 is consistent with the loss
/// censuses across comparable grid members (same source schema).
#[test]
fn section_6_3_order_is_consistent_with_censuses() {
    let comparable = [
        (
            "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)",
            "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)",
        ),
        (
            "source: A/1, B/1\ntarget: R/1, TA/1, TB/1\nA(x) -> R(x) & TA(x)\nB(x) -> R(x) & TB(x)",
            "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)",
        ),
    ];
    for (less_text, more_text) in comparable {
        let mut v = Vocabulary::new();
        let m_less = parse_mapping(&mut v, less_text).unwrap();
        let m_more = parse_mapping(&mut v, more_text).unwrap();
        let u = Universe::new(&mut v, 2, 1, 1);
        let cmp = rde_core::compare::compare_lossiness(&m_less, &m_more, &u, &mut v).unwrap();
        assert_eq!(cmp, rde_core::compare::Comparison::StrictlyLessLossy, "{less_text}");
        let loss_less = information_loss(&m_less, &u, &mut v, 0).unwrap().lost_pairs;
        let loss_more = information_loss(&m_more, &u, &mut v, 0).unwrap().lost_pairs;
        assert!(loss_less < loss_more, "census order must agree ({loss_less} < {loss_more})");
    }
}
