//! The shared-cache concurrency contract (the daemon's load-bearing
//! assumption): one [`ArrowMCache`] serving many threads, each request
//! carrying its **own** `ExecContext`.
//!
//! Two properties must hold:
//!
//! 1. **No cancellation bleed.** A request whose token is already
//!    cancelled may get `Unknown(Cancelled)` — or a definite verdict
//!    straight from the memo — but it must never poison the cache:
//!    neighbours with live contexts, and every later request, still
//!    get definite answers.
//! 2. **Warm == cold.** Every verdict produced through the shared,
//!    concurrently-hammered cache is identical to what a cold cache
//!    (and the uncached reference) computes for the same pair.

use std::sync::Arc;

use rde_core::arrow::{arrow_m, ArrowMCache, CachePolicy};
use rde_core::invertibility::{check_homomorphism_property_cached, BoundedVerdict};
use rde_core::Universe;
use rde_deps::parse_mapping;
use rde_faults::{CancelToken, ExecContext};
use rde_hom::{Exhausted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

/// The union mapping (not invertible: it forgets which of A/B held) —
/// small enough to scan exhaustively, rich enough to have both YES and
/// NO arrow pairs.
fn setup() -> (Vocabulary, rde_deps::SchemaMapping, Vec<Instance>) {
    let mut vocab = Vocabulary::new();
    let mapping =
        parse_mapping(&mut vocab, "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n")
            .unwrap();
    let universe = Universe::new(&mut vocab, 2, 1, 2);
    let family = universe.collect_instances(&vocab, &mapping.source).unwrap();
    assert!(family.len() >= 8, "need a real family to scan, got {}", family.len());
    (vocab, mapping, family)
}

/// A config whose token is already cancelled when the request starts.
fn cancelled_config() -> HomConfig {
    let token = CancelToken::new();
    token.cancel();
    HomConfig { ctx: ExecContext::default().with_cancel(token), ..HomConfig::default() }
}

#[test]
fn cancelled_requests_do_not_bleed_into_neighbours() {
    let (mut vocab, mapping, family) = setup();
    // Cold reference verdict, computed before any sharing.
    let reference = {
        let cache = ArrowMCache::new(&mapping, &family, &mut vocab.clone()).unwrap();
        check_homomorphism_property_cached(
            &cache,
            &family,
            &HomConfig::default(),
            &mut HomStats::default(),
        )
    };
    assert!(
        matches!(reference, BoundedVerdict::Counterexample { .. }),
        "the union mapping must fail the homomorphism property: {reference:?}"
    );

    let cache = Arc::new(ArrowMCache::new(&mapping, &family, &mut vocab).unwrap());
    let family = Arc::new(family);
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let family = Arc::clone(&family);
            let reference = reference.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let mut stats = HomStats::default();
                    if i % 2 == 0 {
                        // Live context: always the reference verdict.
                        let got = check_homomorphism_property_cached(
                            &cache,
                            &family,
                            &HomConfig::default(),
                            &mut stats,
                        );
                        assert_eq!(got, reference, "live thread {i} must match the cold run");
                    } else {
                        // Dead-on-arrival context: an honest
                        // Unknown(Cancelled), or a definite verdict the
                        // memo already held — never a wrong answer.
                        let got = check_homomorphism_property_cached(
                            &cache,
                            &family,
                            &cancelled_config(),
                            &mut stats,
                        );
                        match got {
                            BoundedVerdict::Unknown { budget: Exhausted::Cancelled } => {}
                            ref defin if *defin == reference => {}
                            other => panic!(
                                "cancelled thread {i} saw a verdict that is neither \
                                 Cancelled nor the reference: {other:?}"
                            ),
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // The cache must not have memoized any cancellation: a fresh
    // context still gets the exact reference verdict.
    let after = check_homomorphism_property_cached(
        &cache,
        &family,
        &HomConfig::default(),
        &mut HomStats::default(),
    );
    assert_eq!(after, reference, "a cancelled request must never poison the memo");
}

#[test]
fn shared_cache_verdicts_match_cold_and_uncached_runs() {
    let (mut vocab, mapping, family) = setup();
    // Uncached ground truth for every pair.
    let truth: Vec<Vec<bool>> = (0..family.len())
        .map(|a| {
            (0..family.len())
                .map(|b| arrow_m(&mapping, &family[a], &family[b], &mut vocab.clone()).unwrap())
                .collect()
        })
        .collect();

    let cache = Arc::new(
        ArrowMCache::with_policy(
            &mapping,
            &family,
            &mut vocab,
            &HomConfig::default(),
            CachePolicy::bounded(1 << 12, 256),
        )
        .unwrap(),
    );
    let n = family.len();
    let workers: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let truth = truth.clone();
            std::thread::spawn(move || {
                // Each thread sweeps the matrix from a different offset
                // so memo writes and reads interleave across threads.
                for step in 0..2 * n * n {
                    let k = (step + t * 7) % (n * n);
                    let (a, b) = (k / n, k % n);
                    match cache.arrow_budgeted(a, b, &HomConfig::default()) {
                        Verdict::Holds => assert!(truth[a][b], "({a},{b}) holds but truth says no"),
                        Verdict::Fails => {
                            assert!(!truth[a][b], "({a},{b}) fails but truth says yes");
                        }
                        Verdict::Unknown { budget } => {
                            panic!("unbudgeted sweep cannot be unknown: {budget}")
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "concurrent sweeps must actually share the memo: {stats:?}");
}
