//! Ground baselines vs extended notions, side by side — the paper's
//! central narrative (Sections 1, 3.1, 4.2) as executable comparisons.

use rde_chase::{chase_mapping, ChaseOptions};
use rde_core::compose::ComposeOptions;
use rde_core::ground::{check_subset_property, ground_information_loss, is_witness_solution};
use rde_core::invertibility::check_homomorphism_property;
use rde_core::loss::information_loss;
use rde_core::Universe;
use rde_deps::{parse_mapping, SchemaMapping};
use rde_model::{Instance, Vocabulary};

const FAMILIES: &[(&str, &str)] = &[
    ("copy", "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)"),
    ("union", "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)"),
    ("projection", "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)"),
    ("two-step", "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)"),
    (
        "cross-null",
        "source: P/1, Q/1\ntarget: R/2\nP(x) -> exists y . R(x, y)\nQ(y) -> exists x . R(x, y)",
    ),
];

fn load(text: &str) -> (Vocabulary, SchemaMapping) {
    let mut v = Vocabulary::new();
    let m = parse_mapping(&mut v, text).unwrap();
    (v, m)
}

/// Theorem 3.15(1), observed: the homomorphism property (extended
/// invertibility) implies the subset property (invertibility) — on
/// every family, if the extended check passes so does the ground one,
/// and any family failing the ground check also fails the extended one.
#[test]
fn homomorphism_property_implies_subset_property() {
    for &(name, text) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 2);
        let extended_ok = check_homomorphism_property(&m, &u, &mut v).unwrap().holds();
        let ground_ok = check_subset_property(&m, &u, &mut v).unwrap().holds();
        if extended_ok {
            assert!(ground_ok, "family {name}: Thm 3.15(1) violated within bound");
        }
        if !ground_ok {
            assert!(!extended_ok, "family {name}: contrapositive violated");
        }
    }
}

/// The gap between the two notions is real and located exactly where
/// the paper says: the cross-null family passes the ground check but
/// fails the extended one.
#[test]
fn cross_null_family_separates_the_notions() {
    let (mut v, m) = load(FAMILIES[4].1);
    let u = Universe::new(&mut v, 2, 1, 2);
    assert!(check_subset_property(&m, &u, &mut v).unwrap().holds());
    assert!(!check_homomorphism_property(&m, &u, &mut v).unwrap().holds());
}

/// Ground information loss is bounded by the all-instance loss on
/// matching universes: every ground lost pair is also an extended lost
/// pair (`Id ⊆ →` and `→_{M,g} ⊆ →_M` on ground instances).
#[test]
fn ground_loss_embeds_into_extended_loss() {
    for &(name, text) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        let ground = ground_information_loss(&m, &u, &mut v, usize::MAX).unwrap();
        let extended = information_loss(&m, &u, &mut v, usize::MAX).unwrap();
        assert!(
            ground.lost_pairs <= extended.lost_pairs,
            "family {name}: ground loss {} > extended loss {}",
            ground.lost_pairs,
            extended.lost_pairs
        );
        // Each ground example reappears among the extended examples.
        for pair in &ground.examples {
            assert!(
                extended.examples.contains(pair),
                "family {name}: ground lost pair missing from extended census"
            );
        }
    }
}

/// Witness solutions: on ground candidate families the chase is a
/// witness solution for the copy mapping; adding null candidates kills
/// witnesses for the two-step mapping (Prop 4.2's phenomenon) while the
/// copy mapping's witnesses survive.
#[test]
fn witnesses_die_with_nulls_where_the_paper_says() {
    // Copy: witnesses survive nulls.
    let (mut v, copy) = load(FAMILIES[0].1);
    let u = Universe::new(&mut v, 2, 1, 2);
    let candidates: Vec<Instance> = u.collect_instances(&v, &copy.source).unwrap();
    let source = candidates.iter().find(|i| i.is_ground() && i.len() == 1).unwrap().clone();
    let chase = chase_mapping(&source, &copy, &mut v, &ChaseOptions::default()).unwrap();
    assert!(is_witness_solution(&copy, &chase, &source, &candidates, &mut v).unwrap());

    // Two-step: the chase of the paper's instance is NOT a witness once
    // sources with its nulls are admitted as candidates.
    let (mut v, two_step) = load(FAMILIES[3].1);
    let source = rde_model::parse::parse_instance(&mut v, "P(0, 1)\nP(1, 0)").unwrap();
    let chase = chase_mapping(&source, &two_step, &mut v, &ChaseOptions::default()).unwrap();
    // Ground-only candidates: the chase IS a witness solution.
    let ground_univ = Universe::new(&mut v, 2, 0, 2);
    let mut ground_candidates: Vec<Instance> =
        ground_univ.ground_instances(&v, &two_step.source).unwrap().collect();
    ground_candidates.push(source.clone());
    assert!(
        is_witness_solution(&two_step, &chase, &source, &ground_candidates, &mut v).unwrap(),
        "ground candidates cannot refute the chase"
    );
    // Add candidates over the chase's own nulls: witness refuted.
    let p = v.find_relation("P").unwrap();
    let mut null_candidates = ground_candidates.clone();
    let adom = chase.active_domain();
    for &a in &adom {
        for &b in &adom {
            null_candidates.push([rde_model::Fact::new(p, vec![a, b])].into_iter().collect());
        }
    }
    assert!(
        !is_witness_solution(&two_step, &chase, &source, &null_candidates, &mut v).unwrap(),
        "null-mentioning candidates must refute the witness (Prop 4.2)"
    );
}

/// Maximum extended recoveries exist for every family (Theorem 4.10's
/// promise, realized syntactically where the synthesizer applies and
/// semantically via M* everywhere): Lemma 4.12 holds on every family.
#[test]
fn lemma_4_12_holds_on_every_family() {
    for &(name, text) in FAMILIES {
        let (mut v, m) = load(text);
        let u = Universe::new(&mut v, 2, 1, 1);
        assert!(rde_core::mstar::check_lemma_4_12(&m, &u, &mut v).unwrap(), "family {name}");
    }
}

/// The semantic extended-inverse check agrees with the chase-inverse
/// characterization on the two-step family (Theorem 3.17 meets
/// Proposition 4.16).
#[test]
fn semantic_and_chase_characterizations_agree() {
    let (mut v, m) = load(FAMILIES[3].1);
    let minv =
        parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
    let u = Universe::new(&mut v, 1, 1, 1);
    // Chase-inverse on the universe...
    let family = u.collect_instances(&v, &m.source).unwrap();
    let cex = rde_core::chase_inverse::find_chase_inverse_counterexample(
        &m,
        &minv,
        family.iter(),
        &mut v,
    )
    .unwrap();
    assert_eq!(cex, None);
    // ...and semantically an extended inverse on the same universe.
    let verdict = rde_core::recovery::check_extended_inverse_semantically(
        &m,
        &minv,
        &u,
        &mut v,
        &ComposeOptions::default(),
    )
    .unwrap();
    assert!(verdict.holds());
}
