//! Bounded universes of instances.
//!
//! The paper's universal notions quantify over all instances with values
//! in `Const ∪ Var`. A [`Universe`] fixes finite pools of constants and
//! nulls and a fact budget; quantifying over its instances is an exact
//! finite check *within the bound*. By genericity of the definitions
//! (everything in the paper is invariant under renaming constants and
//! nulls), small pools already distinguish the paper's examples — e.g.
//! two constants and two nulls expose every counterexample used in
//! Sections 3–6.

use rde_model::enumerate::InstanceEnumerator;
use rde_model::{Instance, ModelError, Schema, Value, Vocabulary};

/// A finite universe of instances: value pools plus a fact budget.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Constant pool.
    pub constants: Vec<Value>,
    /// Null pool.
    pub nulls: Vec<Value>,
    /// Maximum number of facts per instance.
    pub max_facts: usize,
}

impl Universe {
    /// A universe with `n_consts` constants (`u0`, `u1`, …) and
    /// `n_nulls` named nulls (`?w0`, `?w1`, …) interned into `vocab`.
    pub fn new(vocab: &mut Vocabulary, n_consts: usize, n_nulls: usize, max_facts: usize) -> Self {
        let constants = (0..n_consts).map(|i| vocab.const_value(&format!("u{i}"))).collect();
        let nulls = (0..n_nulls).map(|i| vocab.null_value(&format!("w{i}"))).collect();
        Universe { constants, nulls, max_facts }
    }

    /// The default universe used by the experiment suite: 2 constants,
    /// 2 nulls, up to 2 facts. Big enough for every counterexample in
    /// the paper, small enough for exhaustive pair enumeration.
    pub fn small(vocab: &mut Vocabulary) -> Self {
        Universe::new(vocab, 2, 2, 2)
    }

    /// All values (constants then nulls).
    pub fn values(&self) -> Vec<Value> {
        self.constants.iter().chain(self.nulls.iter()).copied().collect()
    }

    /// Enumerate all instances over `schema` (constants *and* nulls).
    pub fn instances(
        &self,
        vocab: &Vocabulary,
        schema: &Schema,
    ) -> Result<InstanceEnumerator, ModelError> {
        InstanceEnumerator::new(vocab, schema, &self.values(), self.max_facts)
    }

    /// Enumerate only the ground instances over `schema`.
    pub fn ground_instances(
        &self,
        vocab: &Vocabulary,
        schema: &Schema,
    ) -> Result<InstanceEnumerator, ModelError> {
        InstanceEnumerator::new(vocab, schema, &self.constants, self.max_facts)
    }

    /// Collect all instances (convenience for pair loops).
    pub fn collect_instances(
        &self,
        vocab: &Vocabulary,
        schema: &Schema,
    ) -> Result<Vec<Instance>, ModelError> {
        Ok(self.instances(vocab, schema)?.collect())
    }

    /// Total number of instances in this universe over `schema`.
    pub fn size(&self, vocab: &Vocabulary, schema: &Schema) -> Result<u128, ModelError> {
        Ok(self.instances(vocab, schema)?.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universes_enumerate_both_kinds_of_values() {
        let mut v = Vocabulary::new();
        let s = Schema::declare(&mut v, &[("P", 1)]).unwrap();
        let u = Universe::new(&mut v, 1, 1, 1);
        let all: Vec<Instance> = u.collect_instances(&v, &s).unwrap();
        // {} , {P(u0)}, {P(?w0)}.
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|i| !i.is_ground() && i.len() == 1));
        let ground: Vec<Instance> = u.ground_instances(&v, &s).unwrap().collect();
        assert_eq!(ground.len(), 2);
        assert!(ground.iter().all(Instance::is_ground));
    }

    #[test]
    fn size_matches_enumeration() {
        let mut v = Vocabulary::new();
        let s = Schema::declare(&mut v, &[("P", 2)]).unwrap();
        let u = Universe::small(&mut v);
        assert_eq!(u.size(&v, &s).unwrap(), u.collect_instances(&v, &s).unwrap().len() as u128);
    }

    #[test]
    fn values_order_constants_first() {
        let mut v = Vocabulary::new();
        let u = Universe::new(&mut v, 2, 1, 1);
        let vals = u.values();
        assert_eq!(vals.len(), 3);
        assert!(vals[0].is_const() && vals[1].is_const() && vals[2].is_null());
    }
}
