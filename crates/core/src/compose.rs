//! Exact pointwise membership in compositions of schema mappings.
//!
//! The paper's operators are compositions of binary relations on
//! instances: `M ∘ M′` (inverses, Section 2), `e(M) ∘ e(M′)` (extended
//! inverses and recoveries, Sections 3–4). Deciding membership requires
//! eliminating the existentially quantified *middle* instance. Two
//! observations make this effective for `M` specified by s-t tgds:
//!
//! 1. `Sol_M(I) = { J : chase_M(I) → J }`, so the middle instance can
//!    be taken to be a **homomorphic collapse** `h(chase_M(I))` — any
//!    larger `J` only adds premise matches for the reverse mapping, and
//!    the relevant collapses form a finite set: each null of the chase
//!    maps into the active domains involved, the constants mentioned by
//!    the reverse dependencies, or a fresh constant (one per null
//!    suffices, since only the equality pattern and const/null kind of
//!    an image can matter to guards and joins).
//!
//! 2. For a fixed middle instance `J`, "∃ I′ : (J, I′) ⊨ Σ′ ∧ I′ → I₂"
//!    is decided by the **disjunctive chase**: its leaf set is
//!    universal, so the condition holds iff some leaf (restricted to
//!    the reverse mapping's target schema) maps into `I₂`.
//!
//! When the reverse mapping is **guard-free** (plain or disjunctive
//! tgds — the paper's own language for recoveries), triggers transfer
//! along homomorphisms and the identity collapse subsumes all others;
//! [`in_e_composition`] then needs a single disjunctive chase. With
//! `Constant`/inequality guards (e.g. `M″` of Example 3.19) the
//! collapses are enumerated explicitly.

use rde_chase::{chase_mapping, disjunctive_chase, ChaseOptions, DisjunctiveChaseOptions};
use rde_deps::{SchemaMapping, Term};
use rde_hom::exists_hom;
use rde_model::fx::FxHashSet;
use rde_model::{Instance, NullId, Substitution, Value, Vocabulary};

use crate::semantics::satisfies;
use crate::CoreError;

/// Limits for collapse enumeration.
#[derive(Debug, Clone)]
pub struct ComposeOptions {
    /// Maximum number of collapse substitutions to enumerate.
    pub max_collapses: usize,
    /// Options for the inner disjunctive chases.
    pub chase: DisjunctiveChaseOptions,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions { max_collapses: 250_000, chase: DisjunctiveChaseOptions::default() }
    }
}

/// Constants literally occurring in a mapping's dependencies.
fn dependency_constants(mapping: &SchemaMapping) -> Vec<Value> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for dep in &mapping.dependencies {
        let atoms =
            dep.premise.atoms.iter().chain(dep.disjuncts.iter().flat_map(|d| d.atoms.iter()));
        for atom in atoms {
            for t in &atom.args {
                if let Term::Const(c) = *t {
                    let v = Value::Const(c);
                    if seen.insert(v) {
                        out.push(v);
                    }
                }
            }
        }
    }
    out
}

/// Enumerate the homomorphic collapses of `middle` that are complete for
/// deciding "(∃ J ⊇ h(middle)) …" against `reverse` and `other_side`:
/// every null **except those in `rigid`** maps into `adom(middle) ∪
/// consts(reverse) ∪ consts(adom(other_side)) ∪ {fresh constants}` (one
/// fresh constant per null).
///
/// `rigid` carries the nulls that standard (non-extended) satisfaction
/// treats as fixed values — for `M ∘ M′` these are the nulls of the
/// source instance, whose images in `chase_M(I)` must stay put; for
/// `e(M) ∘ e(M′)` the set is empty (the extended semantics is the whole
/// point of erasing that rigidity).
pub fn enumerate_collapses(
    middle: &Instance,
    reverse: &SchemaMapping,
    other_side: &Instance,
    rigid: &FxHashSet<NullId>,
    vocab: &mut Vocabulary,
    max_collapses: usize,
) -> Result<Vec<Substitution>, CoreError> {
    let nulls: Vec<NullId> = middle.nulls().into_iter().filter(|n| !rigid.contains(n)).collect();
    let mut pool: Vec<Value> = middle.active_domain();
    for v in dependency_constants(reverse) {
        if !pool.contains(&v) {
            pool.push(v);
        }
    }
    for v in other_side.active_domain() {
        if v.is_const() && !pool.contains(&v) {
            pool.push(v);
        }
    }
    for i in 0..nulls.len() {
        pool.push(vocab.const_value(&format!("__collapse{i}")));
    }
    // Count check before materializing.
    let mut count: u128 = 1;
    for _ in &nulls {
        count = count.saturating_mul(pool.len() as u128);
        if count > max_collapses as u128 {
            return Err(CoreError::SearchLimitExceeded {
                what: "collapse enumeration",
                limit: max_collapses,
            });
        }
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut idx = vec![0usize; nulls.len()];
    loop {
        let sub: Substitution = nulls.iter().zip(&idx).map(|(&n, &i)| (n, pool[i])).collect();
        out.push(sub);
        let mut pos = nulls.len();
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < pool.len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// `(I, K) ∈ M ∘ M′` for `M` specified by (possibly guarded,
/// non-disjunctive) s-t tgds and `M′` an arbitrary dependency set from
/// `M`'s target schema: ∃ J with `(I, J) ⊨ Σ` and `(J, K) ⊨ Σ′`.
///
/// Decided exactly by collapse enumeration (observation 1 above): the
/// candidate middles are the homomorphic collapses of `chase_M(I)`.
pub fn in_composition(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    other: &Instance,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<bool, CoreError> {
    let u = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    // Standard satisfaction treats the source's nulls as rigid values:
    // only the chase-invented nulls may collapse.
    let rigid: FxHashSet<NullId> = source.nulls().into_iter().collect();
    for h in enumerate_collapses(&u, reverse, other, &rigid, vocab, options.max_collapses)? {
        let j = h.apply_instance(&u);
        if satisfies(&j, other, reverse) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// `(I₁, I₂) ∈ e(M) ∘ e(M′)` for `M` specified by **guard-free** s-t
/// tgds and `M′` by arbitrary dependencies from `M`'s target schema.
///
/// Fast path (guard-free `M′`): some leaf of
/// `disjChase_{M′}(chase_M(I₁))`, restricted to `M′`'s target schema,
/// maps homomorphically into `I₂`. General path (guards in `M′`): the
/// same test over every homomorphic collapse of the chase.
pub fn in_e_composition(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<bool, CoreError> {
    if !mapping.is_tgd_mapping() {
        return Err(CoreError::UnsupportedMapping {
            required: "a guard-free tgd-specified forward mapping",
        });
    }
    let u = chase_mapping(i1, mapping, vocab, &ChaseOptions::default())?;
    if reverse.is_disjunctive_tgd_mapping() {
        return leaf_maps_into(&u, reverse, i2, vocab, options);
    }
    for h in
        enumerate_collapses(&u, reverse, i2, &FxHashSet::default(), vocab, options.max_collapses)?
    {
        let j = h.apply_instance(&u);
        if leaf_maps_into(&j, reverse, i2, vocab, options)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Does some leaf of the disjunctive chase of `middle` with `reverse`,
/// restricted to `reverse.target`, map homomorphically into `i2`?
fn leaf_maps_into(
    middle: &Instance,
    reverse: &SchemaMapping,
    i2: &Instance,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<bool, CoreError> {
    let result = disjunctive_chase(middle, &reverse.dependencies, vocab, &options.chase)?;
    Ok(result.leaves.iter().any(|leaf| exists_hom(&leaf.restrict_to(&reverse.target), i2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// Thm 3.15(2): M′ with Constant guards IS an inverse of
    /// P(x) → ∃y R(x,y), Q(y) → ∃x R(x,y): M ∘ M′ = Id on ground pairs.
    #[test]
    fn constant_guard_inverse_composition_is_identity_on_ground() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/1, Q/1\ntarget: R/2\nP(x) -> exists y . R(x, y)\nQ(y) -> exists x . R(x, y)",
        )
        .unwrap();
        let minv = parse_mapping(
            &mut v,
            "source: R/2\ntarget: P/1, Q/1\nR(x, y) & Constant(x) -> P(x)\nR(x, y) & Constant(y) -> Q(y)",
        )
        .unwrap();
        let u = Universe::new(&mut v, 2, 0, 2);
        let sources = u.ground_instances(&v, &m.source).unwrap().collect::<Vec<_>>();
        for i1 in &sources {
            for i2 in &sources {
                let in_comp =
                    in_composition(&m, &minv, i1, i2, &mut v, &ComposeOptions::default()).unwrap();
                let in_id = i1.is_subset_of(i2);
                assert_eq!(in_comp, in_id, "composition must be Id on ({i1:?}, {i2:?})");
            }
        }
    }

    /// The same middle-collapse machinery sees that the plain copy-back
    /// of the union mapping is NOT an inverse.
    #[test]
    fn union_mapping_copyback_is_not_an_inverse() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let back =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) & Q(x)").unwrap();
        let i1 = parse_instance(&mut v, "P(u0)").unwrap();
        let i2 = parse_instance(&mut v, "P(u0)").unwrap();
        // (I1, I1) ∈ M ∘ M″? The middle {R(u0)} forces P(u0) AND Q(u0) ⊆ I2.
        assert!(!in_composition(&m, &back, &i1, &i2, &mut v, &ComposeOptions::default()).unwrap());
    }

    /// e-composition fast path vs collapse path agree on guard-free
    /// reverse mappings (cross-validation of the two algorithms).
    #[test]
    fn fast_and_slow_e_composition_agree_when_guard_free() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let rev =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 1);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let opts = ComposeOptions::default();
        for i1 in &family {
            for i2 in &family {
                let fast = in_e_composition(&m, &rev, i1, i2, &mut v, &opts).unwrap();
                // Force the slow path by running collapse enumeration.
                let uu = chase_mapping(i1, &m, &mut v, &ChaseOptions::default()).unwrap();
                let mut slow = false;
                for h in enumerate_collapses(
                    &uu,
                    &rev,
                    i2,
                    &FxHashSet::default(),
                    &mut v,
                    opts.max_collapses,
                )
                .unwrap()
                {
                    let j = h.apply_instance(&uu);
                    if leaf_maps_into(&j, &rev, i2, &mut v, &opts).unwrap() {
                        slow = true;
                        break;
                    }
                }
                assert_eq!(fast, slow, "disagreement on ({i1:?}, {i2:?})");
            }
        }
    }

    /// Example 3.19's guarded M″ is **not an extended inverse**:
    /// `e(M) ∘ e(M″)` leaks the pair `({P(W, Z)}, ∅)` — on all-null
    /// sources M″ may recover nothing (the middle instance can collapse
    /// away every constant guard) although `{P(W, Z)} ↛ ∅`. The
    /// guard-free M′ of Example 3.18 does not leak that pair.
    #[test]
    fn guarded_inverse_is_not_an_extended_inverse() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let m2 = parse_mapping(
            &mut v,
            "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)",
        )
        .unwrap();
        let i = parse_instance(&mut v, "P(?w, ?z)").unwrap();
        let empty = Instance::new();
        let opts = ComposeOptions::default();
        assert!(in_e_composition(&m, &m2, &i, &empty, &mut v, &opts).unwrap());
        assert!(!exists_hom(&i, &empty), "the leaked pair is outside e(Id)");
        // (I, I) itself still holds — M″ is an extended *recovery*, the
        // failure is maximality/inversehood, matching Example 3.19's
        // chase-inverse refutation.
        assert!(in_e_composition(&m, &m2, &i, &i, &mut v, &opts).unwrap());
        // The guard-free M′ does not leak (I, ∅).
        let m1 =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        assert!(!in_e_composition(&m, &m1, &i, &empty, &mut v, &opts).unwrap());
        assert!(in_e_composition(&m, &m1, &i, &i, &mut v, &opts).unwrap());
    }

    #[test]
    fn collapse_enumeration_respects_limits() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let rev = parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,y) -> P(x,y)").unwrap();
        let i = parse_instance(&mut v, "P(a,b)\nP(b,c)\nP(c,d)").unwrap();
        let u = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
        let err = enumerate_collapses(&u, &rev, &i, &FxHashSet::default(), &mut v, 10).unwrap_err();
        assert!(matches!(err, CoreError::SearchLimitExceeded { .. }));
    }

    #[test]
    fn collapse_pool_includes_fresh_constants() {
        let mut v = Vocabulary::new();
        let rev = parse_mapping(&mut v, "source: Q/1\ntarget: P/1\nQ(x) -> P(x)").unwrap();
        let i = parse_instance(&mut v, "Q(?n)").unwrap();
        let subs =
            enumerate_collapses(&i, &rev, &Instance::new(), &FxHashSet::default(), &mut v, 1000)
                .unwrap();
        // Pool: {?n (self), one fresh constant} → 2 collapses.
        assert_eq!(subs.len(), 2);
        assert!(subs.iter().any(|s| s.iter().all(|(_, img)| img.is_const())));
    }
}
