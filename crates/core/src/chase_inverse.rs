//! Chase-inverses (Definition 3.16) and their equivalence with extended
//! inverses for tgd-specified reverse mappings (Theorem 3.17).

use rde_chase::{chase, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::hom_equivalent;
use rde_model::{Instance, Vocabulary};

use crate::CoreError;

/// One round trip of reverse data exchange:
/// `chase_{M′}(chase_M(I))`, restricted to the source schema.
///
/// `M′` may be specified by tgds or tgds with constants/inequalities
/// (the extension discussed after Theorem 3.17); it must not be
/// disjunctive — use the disjunctive chase for recoveries.
pub fn roundtrip(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    vocab: &mut Vocabulary,
) -> Result<Instance, CoreError> {
    let opts = ChaseOptions::default();
    let u = rde_chase::chase_mapping(source, mapping, vocab, &opts)?;
    let back = chase(&u, &reverse.dependencies, vocab, &opts)?;
    Ok(back.instance.restrict_to(&mapping.source))
}

/// Does the round trip through `(M, M′)` recover `I` up to homomorphic
/// equivalence (the chase-inverse condition at one instance)?
pub fn roundtrip_recovers(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let recovered = roundtrip(mapping, reverse, source, vocab)?;
    Ok(hom_equivalent(source, &recovered))
}

/// Is `M′` a chase-inverse of `M` over the given family of source
/// instances (Definition 3.16 quantifies over *all* sources; a
/// counterexample refutes unconditionally, passing the family is
/// bounded evidence)? Returns the first failing source, if any.
///
/// By Theorem 3.17, for `M` and `M′` specified by s-t tgds this is
/// exactly the extended-inverse condition; the extension to `M′` with
/// `Constant` guards is the one used in Example 3.19.
pub fn find_chase_inverse_counterexample<'a>(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    sources: impl IntoIterator<Item = &'a Instance>,
    vocab: &mut Vocabulary,
) -> Result<Option<Instance>, CoreError> {
    for i in sources {
        if !roundtrip_recovers(mapping, reverse, i, vocab)? {
            return Ok(Some(i.clone()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    fn two_step(v: &mut Vocabulary) -> SchemaMapping {
        parse_mapping(v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()
    }

    /// Example 3.18: M′ : Q(x,z) ∧ Q(z,y) → P(x,y) is a chase-inverse
    /// of P(x,y) → ∃z(Q(x,z) ∧ Q(z,y)) — hence an extended inverse.
    #[test]
    fn example_3_18_chase_inverse() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let minv =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        // The paper's own walkthrough instance plus a bounded family.
        let i = parse_instance(&mut v, "P(a,b)\nP(b,c)\nP(a,a)").unwrap();
        assert!(roundtrip_recovers(&m, &minv, &i, &mut v).unwrap());
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cex = find_chase_inverse_counterexample(&m, &minv, family.iter(), &mut v).unwrap();
        assert_eq!(cex, None);
    }

    /// Example 3.18's fine structure: I ⊆ V and V → I.
    #[test]
    fn example_3_18_containment_and_retraction() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let minv =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        let i = parse_instance(&mut v, "P(a,b)\nP(b,c)").unwrap();
        let recovered = roundtrip(&m, &minv, &i, &mut v).unwrap();
        assert!(i.is_subset_of(&recovered), "I ⊆ chase_M′(chase_M(I))");
        // The extra facts are of the form P(Z_ab, Z_bc) — nulls only.
        for f in recovered.facts() {
            if !i.contains(&f) {
                assert!(f.args().iter().all(|a| a.is_null()), "extra fact {f:?} must be all-null");
            }
        }
        assert!(rde_hom::exists_hom(&recovered, &i));
    }

    /// Example 3.19: the Constant-guarded inverse M″ is NOT a
    /// chase-inverse — it fails on I = {P(W, Z)} with nulls.
    #[test]
    fn example_3_19_constant_inverse_fails() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let minv2 = parse_mapping(
            &mut v,
            "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)",
        )
        .unwrap();
        let i = parse_instance(&mut v, "P(?w, ?z)").unwrap();
        let recovered = roundtrip(&m, &minv2, &i, &mut v).unwrap();
        assert!(recovered.is_empty(), "no constants in U ⇒ empty reverse chase");
        assert!(!roundtrip_recovers(&m, &minv2, &i, &mut v).unwrap());
        // On ground instances M″ does recover (it is an inverse).
        let ground = parse_instance(&mut v, "P(a, b)").unwrap();
        assert!(roundtrip_recovers(&m, &minv2, &ground, &mut v).unwrap());
    }

    /// A wrong reverse mapping is caught by the counterexample search.
    #[test]
    fn wrong_reverse_mapping_is_refuted() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> Q(x,y)").unwrap();
        let bad = parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,y) -> P(y,x)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 1);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cex = find_chase_inverse_counterexample(&m, &bad, family.iter(), &mut v).unwrap();
        assert!(cex.is_some());
    }

    /// The copy mapping with its transposed copy-back is a chase-inverse.
    #[test]
    fn copy_mapping_roundtrip() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let back = parse_mapping(&mut v, "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)").unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cex = find_chase_inverse_counterexample(&m, &back, family.iter(), &mut v).unwrap();
        assert_eq!(cex, None);
    }
}
