//! Extended solutions and the homomorphic extension `e(M)` (Section 3).

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::{exists_hom, exists_hom_budgeted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

use crate::semantics::satisfies;
use crate::{CoreError, Universe};

/// The extended identity: `(I₁, I₂) ∈ e(Id)` iff `I₁ → I₂`
/// (Definition 3.7 — `e(Id)` *is* the homomorphism relation).
pub fn in_extended_identity(i1: &Instance, i2: &Instance) -> bool {
    exists_hom(i1, i2)
}

/// Is `J` an extended solution for `I` w.r.t. a **tgd-specified** `M`
/// (Definition 3.2)?
///
/// Computed via Proposition 3.11: `chase_M(I)` is an extended universal
/// solution, so `J ∈ eSol_M(I)` iff `chase_M(I) → J`. (Soundness:
/// `(I, chase_M(I)) ∈ M` and `chase_M(I) → J` exhibit the middle pair;
/// completeness: from `I → I′`, `(I′, J′) ⊨ Σ`, `J′ → J` follows
/// `chase_M(I) → chase_M(I′) → J′ → J` by chase monotonicity and
/// universality.)
pub fn is_extended_solution(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(&canonical, target))
}

/// Budgeted form of [`is_extended_solution`]: the chase runs unbounded
/// (it is polynomial for s-t tgds), the NP-hard `chase_M(I) → J` search
/// obeys `config` and degrades to [`Verdict::Unknown`].
pub fn is_extended_solution_budgeted(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<Verdict, CoreError> {
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom_budgeted(&canonical, target, config, stats))
}

/// Is `J` an extended **universal** solution for `I` (Definition 3.5):
/// an extended solution with `J → J′` for every extended solution `J′`?
///
/// Since `chase_M(I)` is one (Prop 3.11) and extended solutions are
/// up-closed under `→`, this holds iff `J ∈ eSol_M(I)` and
/// `J → chase_M(I)` — i.e. `J` is hom-equivalent to the chase.
pub fn is_extended_universal_solution(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(&canonical, target) && exists_hom(target, &canonical))
}

/// Budgeted form of [`is_extended_universal_solution`]: the two
/// hom-equivalence searches combine by Kleene conjunction, so a definite
/// failure on either side dominates a cut search on the other.
pub fn is_extended_universal_solution_budgeted(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<Verdict, CoreError> {
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    let fwd = exists_hom_budgeted(&canonical, target, config, stats);
    if fwd.fails() {
        return Ok(Verdict::Fails);
    }
    Ok(fwd.and(exists_hom_budgeted(target, &canonical, config, stats)))
}

/// Definition-level extended-solution check for **arbitrary**
/// dependencies, quantifying the middle pair `(I′, J′)` over a bounded
/// universe: `∃ I′, J′ : I → I′, (I′, J′) ⊨ Σ, J′ → J`.
///
/// Exact within the bound; use [`is_extended_solution`] (chase-based,
/// exact) for tgd mappings. Exposed for cross-validation tests and for
/// mappings with guards, where the chase shortcut is unsound.
pub fn is_extended_solution_bounded(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &Vocabulary,
) -> Result<bool, CoreError> {
    let sources = universe.collect_instances(vocab, &mapping.source).map_err(invalid)?;
    let targets = universe.collect_instances(vocab, &mapping.target).map_err(invalid)?;
    for i_prime in &sources {
        if !exists_hom(source, i_prime) {
            continue;
        }
        for j_prime in &targets {
            if satisfies(i_prime, j_prime, mapping) && exists_hom(j_prime, target) {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn invalid(e: rde_model::ModelError) -> CoreError {
    // Universe construction errors indicate an unusable request, not a
    // chase failure; surface them as unsupported.
    let _ = e;
    CoreError::UnsupportedMapping { required: "a non-empty schema for universe enumeration" }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    fn decomposition(v: &mut Vocabulary) -> SchemaMapping {
        parse_mapping(v, "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)").unwrap()
    }

    /// Example 3.3: U is an extended solution for V although not a
    /// solution.
    #[test]
    fn example_3_3_extended_solution() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let vi = parse_instance(&mut v, "P(a, b, ?z)\nP(?x, b, c)").unwrap();
        let u = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
        assert!(!crate::semantics::is_solution(&vi, &u, &m));
        assert!(is_extended_solution(&vi, &u, &m, &mut v).unwrap());
    }

    /// Proposition 3.4: for ground `I` and tgd-specified `M`,
    /// `eSol_M(I) = Sol_M(I)` — verified exhaustively on a bounded
    /// universe of targets.
    #[test]
    fn proposition_3_4_ground_esol_equals_sol() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let i = parse_instance(&mut v, "P(a, b, c)").unwrap();
        let universe = Universe::new(&mut v, 3, 1, 3);
        for j in universe.instances(&v, &m.target).unwrap() {
            let sol = crate::semantics::is_solution(&i, &j, &m);
            let esol = is_extended_solution(&i, &j, &m, &mut v).unwrap();
            assert_eq!(sol, esol, "disagreement on {j:?}");
        }
    }

    /// On non-ground sources the two notions genuinely differ.
    #[test]
    fn esol_strictly_contains_sol_on_null_sources() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let i = parse_instance(&mut v, "P(?x, b, c)").unwrap();
        let u = parse_instance(&mut v, "Q(d, b)\nR(b, c)").unwrap();
        assert!(!crate::semantics::is_solution(&i, &u, &m));
        assert!(is_extended_solution(&i, &u, &m, &mut v).unwrap());
    }

    #[test]
    fn chase_is_an_extended_universal_solution() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let i = parse_instance(&mut v, "P(a, b, ?z)\nP(c, d, e)").unwrap();
        let u = rde_chase::chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(is_extended_universal_solution(&i, &u, &m, &mut v).unwrap());
        // A strictly more specific solution is extended but not universal.
        let ground = parse_instance(&mut v, "Q(a,b)\nR(b,a)\nQ(c,d)\nR(d,e)").unwrap();
        assert!(is_extended_solution(&i, &ground, &m, &mut v).unwrap());
        assert!(!is_extended_universal_solution(&i, &ground, &m, &mut v).unwrap());
    }

    /// The chase shortcut agrees with the definition-level bounded check
    /// on a small universe (cross-validation of Prop 3.11).
    #[test]
    fn chase_shortcut_agrees_with_definition() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let universe = Universe::new(&mut v, 1, 1, 1);
        let sources = universe.collect_instances(&v, &m.source).unwrap();
        let targets = universe.collect_instances(&v, &m.target).unwrap();
        for i in &sources {
            for j in &targets {
                let fast = is_extended_solution(i, j, &m, &mut v).unwrap();
                let slow = is_extended_solution_bounded(i, j, &m, &universe, &v).unwrap();
                assert_eq!(fast, slow, "disagree on I={i:?} J={j:?}");
            }
        }
    }

    #[test]
    fn extended_identity_is_the_hom_relation() {
        let mut v = Vocabulary::new();
        let a = parse_instance(&mut v, "P(?x)").unwrap();
        let b = parse_instance(&mut v, "P(k)").unwrap();
        assert!(in_extended_identity(&a, &b));
        assert!(!in_extended_identity(&b, &a));
    }
}
