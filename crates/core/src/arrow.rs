//! The relations `→_M` (Definition 4.6 / Proposition 4.7) and `→_{M,g}`
//! (Definition 4.18).

use std::collections::VecDeque;
use std::sync::Mutex;

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_faults::ExecContext;
use rde_hom::{core_of_budgeted, exists_hom, exists_hom_budgeted, HomConfig, HomStats, Verdict};
use rde_model::fx::FxHashMap;
use rde_model::{Fact, Instance, NullId, Value, Vocabulary};

use crate::CoreError;

/// `I₁ →_M I₂` for a tgd-specified mapping: by Proposition 4.7 this is
/// `chase_M(I₁) → chase_M(I₂)` (equivalently, `eSol_M(I₂) ⊆
/// eSol_M(I₁)` — `I₂` exports at least as much information as `I₁`).
pub fn arrow_m(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let c1 = chase_mapping(i1, mapping, vocab, &ChaseOptions::default())?;
    let c2 = chase_mapping(i2, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(&c1, &c2))
}

/// `I₁ →_{M,g} I₂` for **ground** `I₁`, `I₂` (Definition 4.18):
/// `Sol_M(I₂) ⊆ Sol_M(I₁)`. For tgd mappings `Sol_M(I) = {J :
/// chase_M(I) → J}`, so the containment is again
/// `chase_M(I₁) → chase_M(I₂)`; the difference from [`arrow_m`] is only
/// the ground domain of applicability.
pub fn arrow_m_ground(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    debug_assert!(i1.is_ground() && i2.is_ground(), "→_{{M,g}} is defined on ground instances");
    arrow_m(mapping, i1, i2, vocab)
}

/// Work counters of an [`ArrowMCache`]: how far canonicalization
/// compressed the family, how often memoization answered a query, and
/// how much the eviction policy has had to discard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Instances in the family.
    pub instances: usize,
    /// Distinct hom-equivalence classes detected by core fingerprinting
    /// (an upper bound: isomorphic cores with different value labellings
    /// may land in separate classes).
    pub classes: usize,
    /// Arrow queries answered from the memo table.
    pub hits: u64,
    /// Arrow queries that ran a homomorphism search.
    pub misses: u64,
    /// Total homomorphism-search work (chase-time core minimization plus
    /// all memo misses).
    pub hom: HomStats,
    /// Interned instances resolved to an already-known class.
    pub intern_hits: u64,
    /// Interned instances that created a new class.
    pub intern_misses: u64,
    /// Memo entries discarded to stay under [`CachePolicy::max_memo`].
    pub memo_evictions: u64,
    /// Interned classes discarded to stay under
    /// [`CachePolicy::max_interned`].
    pub class_evictions: u64,
    /// Memoized verdicts currently resident.
    pub memo_entries: usize,
    /// Interned (non-family) classes currently resident.
    pub interned: usize,
}

/// Size bounds for an [`ArrowMCache`]. The default is unbounded — the
/// bounded checkers build a cache, sweep a fixed family quadratically,
/// and drop it, so nothing accumulates. A long-lived cache (the `rde
/// serve` daemon keeps one warm per mapping) must set both caps or
/// request churn grows the memo table and the interned-class store
/// without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Maximum resident memoized verdicts; inserting past the cap
    /// evicts in insertion order (FIFO). `0` disables memoization.
    pub max_memo: usize,
    /// Maximum resident interned classes (family classes from
    /// construction are pinned and do not count); interning past the
    /// cap evicts the least-recently-used class together with every
    /// memo entry that mentions it.
    pub max_interned: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy { max_memo: usize::MAX, max_interned: usize::MAX }
    }
}

impl CachePolicy {
    /// A policy with explicit caps on both stores.
    pub fn bounded(max_memo: usize, max_interned: usize) -> Self {
        CachePolicy { max_memo, max_interned }
    }
}

/// Opaque key of a hom-equivalence class known to an [`ArrowMCache`]:
/// either a pinned family class (from construction) or an interned
/// class added at query time. Obtained from [`ArrowMCache::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassKey(u64);

/// A resolved class: the key plus its core representative. Holding the
/// representative keeps [`ArrowMCache::arrow_classes`] usable even if
/// churn evicts the class underneath the caller — the search then runs
/// on the handle's own copy and simply skips memoization.
#[derive(Debug, Clone)]
pub struct ClassHandle {
    key: ClassKey,
    rep: Instance,
}

impl ClassHandle {
    /// The class key.
    pub fn key(&self) -> ClassKey {
        self.key
    }

    /// The core representative of the class.
    pub fn rep(&self) -> &Instance {
        &self.rep
    }
}

/// Memo table with FIFO eviction: the map holds the verdicts, the
/// queue remembers insertion order. Entries removed early by a class
/// purge leave stale queue slots that are skipped when popped.
#[derive(Debug, Default)]
struct MemoTable {
    map: FxHashMap<(ClassKey, ClassKey), bool>,
    order: VecDeque<(ClassKey, ClassKey)>,
}

/// The query-time class store: fingerprint-deduplicated representatives
/// with least-recently-used eviction. Keys are monotonic, never reused,
/// so a handle to an evicted class can never alias a later one.
#[derive(Debug, Default)]
struct InternStore {
    by_fp: FxHashMap<Vec<Fact>, ClassKey>,
    reps: FxHashMap<ClassKey, Instance>,
    lru: VecDeque<ClassKey>,
    next: u64,
}

/// Fingerprint of an instance up to null renaming: the canonical fact
/// list with nulls renumbered in first-occurrence order. Equal
/// fingerprints imply isomorphic instances (each side is isomorphic to
/// the common renumbered instance); the converse can fail, which only
/// costs an extra equivalence class, never a wrong answer.
// The expect is a capacity invariant, not a reachable failure: distinct
// nulls are `NullId(u32)`, so `rename` can never hold more than 2³²
// entries, and an instance that large cannot exist in memory.
#[allow(clippy::expect_used)]
fn fingerprint(instance: &Instance) -> Vec<Fact> {
    let mut rename: FxHashMap<NullId, NullId> = FxHashMap::default();
    instance
        .canonical_facts()
        .iter()
        .map(|f| {
            f.map_values(|v| match v {
                Value::Null(n) => {
                    let next = NullId(u32::try_from(rename.len()).expect("instance too large"));
                    Value::Null(*rename.entry(n).or_insert(next))
                }
                c => c,
            })
        })
        .collect()
}

/// A cache of chase results for evaluating `→_M` over many pairs from a
/// fixed instance family (the bounded checkers and the information-loss
/// census do quadratically many `→_M` queries).
///
/// Construction chases every instance once and **core-canonicalizes**
/// the result: instances whose chase cores share a [`fingerprint`] are
/// hom-equivalent, so they collapse into one equivalence class with a
/// single representative (the core — also the cheapest instance to
/// search). Arrow queries then memoize per *class pair*, so a family
/// with `k` classes answers its `n²` queries with at most `k²` searches,
/// each on a minimized instance.
#[derive(Debug)]
pub struct ArrowMCache {
    chased: Vec<Instance>,
    /// `class[a]` = equivalence class of `family[a]`.
    class: Vec<usize>,
    /// One core representative per pinned (construction-time) class.
    reps: Vec<Instance>,
    /// Fingerprint → pinned class, so interning can land request
    /// instances on a family class.
    family_fp: FxHashMap<Vec<Fact>, usize>,
    /// Classes interned at query time, evictable per [`CachePolicy`].
    interned: Mutex<InternStore>,
    /// Memoized `class → class` answers. `Mutex`, not `RefCell`: the
    /// loss census and the serve daemon share one cache across threads.
    memo: Mutex<MemoTable>,
    stats: Mutex<CacheStats>,
    policy: CachePolicy,
    /// The execution context the cache was built under. Unbudgeted
    /// arrow queries take no config, so the construction-time context
    /// also scopes their fault-injection decisions
    /// (`core.arrow.poison`).
    ctx: ExecContext,
}

impl ArrowMCache {
    /// Chase every instance of the family once and canonicalize the
    /// results into hom-equivalence classes.
    pub fn new(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
    ) -> Result<Self, CoreError> {
        Self::new_budgeted(mapping, family, vocab, &HomConfig::default())
    }

    /// Like [`Self::new`], but construction runs under `config`'s
    /// budgets, threaded differently into the two construction phases
    /// to match their failure modes:
    ///
    /// * the **chase** gets `config`'s *time* budget only — premise
    ///   matching is strict (a truncated enumeration is a
    ///   [`CoreError`], not a degraded result), and these searches are
    ///   tiny, so a node budget meant for the checker's hom decisions
    ///   would only inject spurious hard failures;
    /// * **core minimization** gets the full `config` — it degrades
    ///   gracefully (a budget-cut fold test leaves a sound, possibly
    ///   non-minimal representative, never a wrong class).
    pub fn new_budgeted(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
        config: &HomConfig,
    ) -> Result<Self, CoreError> {
        Self::with_policy(mapping, family, vocab, config, CachePolicy::default())
    }

    /// Like [`Self::new_budgeted`], with explicit size caps. A
    /// long-lived cache must bound both stores; see [`CachePolicy`].
    pub fn with_policy(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
        config: &HomConfig,
        policy: CachePolicy,
    ) -> Result<Self, CoreError> {
        let span = rde_obs::span("core.arrow.build", &[("instances", family.len().into())]);
        let chase_options = ChaseOptions {
            hom: HomConfig { node_budget: None, ..config.clone() },
            ctx: config.ctx.clone(),
            ..ChaseOptions::default()
        };
        let mut chased = Vec::with_capacity(family.len());
        let mut class = Vec::with_capacity(family.len());
        let mut reps: Vec<Instance> = Vec::new();
        let mut by_fp: FxHashMap<Vec<Fact>, usize> = FxHashMap::default();
        let mut hom = HomStats::default();
        for i in family {
            // Construction chases the whole family; per-instance checks
            // make a deadline or Ctrl-C cut between chases too, not
            // just inside one.
            if config.ctx.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            let c = chase_mapping(i, mapping, vocab, &chase_options)?;
            let outcome = core_of_budgeted(&c, config);
            hom += outcome.stats;
            let core = outcome.result.core;
            let cid = *by_fp.entry(fingerprint(&core)).or_insert_with(|| {
                reps.push(core);
                reps.len() - 1
            });
            class.push(cid);
            chased.push(c);
        }
        let mut class_sizes = vec![0u64; reps.len()];
        for &cid in &class {
            class_sizes[cid] += 1;
        }
        for &size in &class_sizes {
            rde_obs::histogram!("core.arrow.class_size").record(size);
        }
        span.close_with(&[("classes", reps.len().into())]);
        let stats = CacheStats {
            instances: family.len(),
            classes: reps.len(),
            hom,
            ..CacheStats::default()
        };
        let cache = ArrowMCache {
            chased,
            class,
            reps,
            family_fp: by_fp,
            interned: Mutex::new(InternStore::default()),
            memo: Mutex::new(MemoTable::default()),
            stats: Mutex::new(stats),
            policy,
            ctx: config.ctx.clone(),
        };
        cache.publish_occupancy();
        Ok(cache)
    }

    /// `family[a] →_M family[b]`: `chase_M(a) → chase_M(b)`, answered on
    /// the core representatives and memoized per class pair.
    pub fn arrow(&self, a: usize, b: usize) -> bool {
        self.arrow_budgeted(a, b, &HomConfig::default()).holds()
    }

    /// Budgeted form of [`Self::arrow`]: decides on the core
    /// representatives under `config`, memoizing definite verdicts only
    /// (an `Unknown` must stay retryable with a larger budget).
    pub fn arrow_budgeted(&self, a: usize, b: usize, config: &HomConfig) -> Verdict {
        let (ka, kb) = (ClassKey(self.class[a] as u64), ClassKey(self.class[b] as u64));
        self.decide(ka, &self.reps[self.class[a]], kb, &self.reps[self.class[b]], config).0
    }

    /// Resolve an arbitrary instance to its hom-equivalence class:
    /// chase it under `config`, core-minimize, and land it on a pinned
    /// family class or the interned store (least-recently-used eviction
    /// past [`CachePolicy::max_interned`]). The returned handle carries
    /// the core representative, so later [`Self::arrow_classes`] calls
    /// survive the class being evicted underneath them.
    pub fn intern(
        &self,
        mapping: &SchemaMapping,
        instance: &Instance,
        vocab: &mut Vocabulary,
        config: &HomConfig,
    ) -> Result<ClassHandle, CoreError> {
        let chase_options = ChaseOptions {
            hom: HomConfig { node_budget: None, ..config.clone() },
            ctx: config.ctx.clone(),
            ..ChaseOptions::default()
        };
        let c = chase_mapping(instance, mapping, vocab, &chase_options)?;
        let outcome = core_of_budgeted(&c, config);
        self.lock_stats().hom += outcome.stats;
        let core = outcome.result.core;
        let fp = fingerprint(&core);
        if let Some(&pinned) = self.family_fp.get(&fp) {
            self.lock_stats().intern_hits += 1;
            rde_obs::counter!("core.arrow.intern.hits").inc();
            return Ok(ClassHandle {
                key: ClassKey(pinned as u64),
                rep: self.reps[pinned].clone(),
            });
        }
        let mut store = self.lock_interned();
        if let Some(&key) = store.by_fp.get(&fp) {
            // LRU touch: most recently seen moves to the back.
            store.lru.retain(|&k| k != key);
            store.lru.push_back(key);
            drop(store);
            self.lock_stats().intern_hits += 1;
            rde_obs::counter!("core.arrow.intern.hits").inc();
            return Ok(ClassHandle { key, rep: core });
        }
        while store.reps.len() >= self.policy.max_interned.max(1) {
            let Some(victim) = store.lru.pop_front() else { break };
            store.by_fp.retain(|_, k| *k != victim);
            store.reps.remove(&victim);
            self.purge_memo_mentioning(victim);
            self.lock_stats().class_evictions += 1;
            rde_obs::counter!("core.arrow.evictions").inc();
        }
        let key = ClassKey(self.reps.len() as u64 + store.next);
        store.next += 1;
        if self.policy.max_interned > 0 {
            store.by_fp.insert(fp, key);
            store.reps.insert(key, core.clone());
            store.lru.push_back(key);
        }
        drop(store);
        self.lock_stats().intern_misses += 1;
        rde_obs::counter!("core.arrow.intern.misses").inc();
        self.publish_occupancy();
        Ok(ClassHandle { key, rep: core })
    }

    /// `a →_M b` between two interned (or family) classes: decided on
    /// the handles' core representatives under `config`, memoized per
    /// class pair like every other arrow query.
    pub fn arrow_classes(&self, a: &ClassHandle, b: &ClassHandle, config: &HomConfig) -> Verdict {
        self.decide(a.key, &a.rep, b.key, &b.rep, config).0
    }

    /// Like [`Self::arrow_classes`], but also report whether the
    /// verdict came from the memo (`true` = hit). The serve access log
    /// wants an exact per-request cache flag; deriving one from the
    /// global hit counters would misattribute under concurrency.
    pub fn arrow_classes_probed(
        &self,
        a: &ClassHandle,
        b: &ClassHandle,
        config: &HomConfig,
    ) -> (Verdict, bool) {
        self.decide(a.key, &a.rep, b.key, &b.rep, config)
    }

    /// Shared decision path: memo lookup, budgeted search on the
    /// representatives, memo insert (definite verdicts only, with FIFO
    /// eviction past the cap, and only while both classes are live so a
    /// retired key can never leave an unpurgeable entry behind).
    /// Returns the verdict and whether the memo answered it.
    fn decide(
        &self,
        ka: ClassKey,
        rep_a: &Instance,
        kb: ClassKey,
        rep_b: &Instance,
        config: &HomConfig,
    ) -> (Verdict, bool) {
        // Resilience-suite injection: a worker that panicked while
        // holding these locks must not wedge every later query —
        // `lock_memo`/`lock_stats` recover from the poison.
        if self.ctx.should_inject("core.arrow.poison") {
            rde_faults::poison_mutex(&self.memo);
            rde_faults::poison_mutex(&self.stats);
        }
        let key = (ka, kb);
        if let Some(&cached) = self.lock_memo().map.get(&key) {
            self.lock_stats().hits += 1;
            rde_obs::counter!("core.arrow.hits").inc();
            return (Verdict::from_bool(cached), true);
        }
        rde_obs::counter!("core.arrow.misses").inc();
        let mut search = HomStats::default();
        let verdict = exists_hom_budgeted(rep_a, rep_b, config, &mut search);
        let mut stats = self.lock_stats();
        stats.misses += 1;
        stats.hom += search;
        drop(stats);
        if !verdict.is_unknown() {
            self.memoize(key, verdict.holds());
        } else {
            rde_obs::counter!("core.arrow.unknown").inc();
        }
        (verdict, false)
    }

    /// True while `key` names a pinned family class or a live interned
    /// class.
    fn is_live(&self, key: ClassKey) -> bool {
        key.0 < self.reps.len() as u64 || self.lock_interned().reps.contains_key(&key)
    }

    /// Insert one memoized verdict, evicting in FIFO order past
    /// [`CachePolicy::max_memo`]. Pairs naming a retired class are not
    /// inserted: their purge already ran, and nothing would ever remove
    /// them again.
    fn memoize(&self, key: (ClassKey, ClassKey), holds: bool) {
        if self.policy.max_memo == 0 || !self.is_live(key.0) || !self.is_live(key.1) {
            return;
        }
        let mut evicted = 0u64;
        let mut memo = self.lock_memo();
        if memo.map.contains_key(&key) {
            return; // a racing query already answered this pair
        }
        while memo.map.len() >= self.policy.max_memo {
            // Skip queue slots whose entries a class purge removed.
            let Some(oldest) = memo.order.pop_front() else { break };
            if memo.map.remove(&oldest).is_some() {
                evicted += 1;
            }
        }
        memo.map.insert(key, holds);
        memo.order.push_back(key);
        drop(memo);
        if evicted > 0 {
            self.lock_stats().memo_evictions += evicted;
            rde_obs::counter!("core.arrow.evictions").add(evicted);
        }
        self.publish_occupancy();
    }

    /// Drop every memo entry that mentions a retired class. Stale queue
    /// slots are left behind and skipped on pop.
    fn purge_memo_mentioning(&self, victim: ClassKey) {
        let mut memo = self.lock_memo();
        memo.map.retain(|&(a, b), _| a != victim && b != victim);
    }

    /// Refresh the occupancy gauges (`rde profile --metrics` renders
    /// them, so a leak — or the eviction policy holding the line — is
    /// visible without a debugger).
    fn publish_occupancy(&self) {
        let memo = self.lock_memo().map.len() as u64;
        let interned = self.lock_interned().reps.len() as u64;
        rde_obs::gauge!("core.arrow.memo.occupancy").set(memo);
        rde_obs::gauge!("core.arrow.classes.occupancy").set(self.reps.len() as u64 + interned);
    }

    /// The cached chase of `family[a]`.
    pub fn chased(&self, a: usize) -> &Instance {
        &self.chased[a]
    }

    /// Current counters (pinned class count is fixed at construction;
    /// hit/miss/eviction tallies and occupancy move as queries arrive).
    pub fn stats(&self) -> CacheStats {
        let mut stats = *self.lock_stats();
        stats.memo_entries = self.lock_memo().map.len();
        stats.interned = self.lock_interned().reps.len();
        stats
    }

    /// The size caps this cache enforces.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn lock_memo(&self) -> std::sync::MutexGuard<'_, MemoTable> {
        self.memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_interned(&self) -> std::sync::MutexGuard<'_, InternStore> {
        self.interned.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, CacheStats> {
        self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.chased.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.chased.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    #[test]
    fn copy_mapping_arrow_is_hom() {
        // For the copy mapping, →_M coincides with → (Example 6.7).
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                let lhs = arrow_m(&m, a, b, &mut v).unwrap();
                let rhs = exists_hom(a, b);
                assert_eq!(lhs, rhs, "copy mapping must not change the relation: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn union_mapping_identifies_p_and_q() {
        // Example 3.14's union mapping: I₁ = {P(0)}, I₂ = {Q(0)} satisfy
        // I₁ →_M I₂ but not I₁ → I₂.
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let i1 = parse_instance(&mut v, "P(0)").unwrap();
        let i2 = parse_instance(&mut v, "Q(0)").unwrap();
        assert!(arrow_m(&m, &i1, &i2, &mut v).unwrap());
        assert!(arrow_m(&m, &i2, &i1, &mut v).unwrap());
        assert!(!exists_hom(&i1, &i2));
    }

    #[test]
    fn arrow_m_is_reflexive_and_transitive_on_a_universe() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = cache.len();
        for a in 0..n {
            assert!(cache.arrow(a, a));
            for b in 0..n {
                for c in 0..n {
                    if cache.arrow(a, b) && cache.arrow(b, c) {
                        assert!(cache.arrow(a, c), "transitivity violated");
                    }
                }
            }
        }
    }

    #[test]
    fn cache_agrees_with_direct_arrow_and_memoizes() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = family.len();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    cache.arrow(a, b),
                    arrow_m(&m, &family[a], &family[b], &mut v).unwrap(),
                    "cache disagrees on ({a}, {b})"
                );
            }
        }
        let s = cache.stats();
        assert!(s.classes < s.instances, "core fingerprinting must collapse some classes");
        assert_eq!(s.hits + s.misses, (n * n) as u64);
        assert!(s.misses <= (s.classes * s.classes) as u64, "at most one search per class pair");
        // A second sweep is answered entirely from the memo.
        for a in 0..n {
            for b in 0..n {
                cache.arrow(a, b);
            }
        }
        assert_eq!(cache.stats().misses, s.misses);
    }

    #[test]
    fn budgeted_arrow_degrades_to_unknown_not_a_wrong_answer() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let reference = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let budgeted = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let tight = rde_hom::HomConfig { node_budget: Some(1), ..rde_hom::HomConfig::default() };
        let mut unknowns = 0;
        for a in 0..family.len() {
            for b in 0..family.len() {
                match budgeted.arrow_budgeted(a, b, &tight) {
                    Verdict::Unknown { .. } => unknowns += 1,
                    definite => assert_eq!(definite.holds(), reference.arrow(a, b)),
                }
            }
        }
        assert!(unknowns > 0, "a one-node budget must cut some searches");
        // Unknowns are not memoized: an unbounded retry settles them.
        for a in 0..family.len() {
            for b in 0..family.len() {
                assert_eq!(budgeted.arrow(a, b), reference.arrow(a, b));
            }
        }
    }

    #[test]
    fn capped_memo_stays_within_bound_and_still_answers_correctly() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let reference = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let capped = ArrowMCache::with_policy(
            &m,
            &family,
            &mut v,
            &HomConfig::default(),
            CachePolicy::bounded(2, usize::MAX),
        )
        .unwrap();
        let n = family.len();
        for sweep in 0..2 {
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        capped.arrow(a, b),
                        reference.arrow(a, b),
                        "sweep {sweep}: capped cache disagrees on ({a}, {b})"
                    );
                }
            }
            let s = capped.stats();
            assert!(s.memo_entries <= 2, "memo exceeded its cap: {}", s.memo_entries);
            assert!(s.memo_evictions > 0, "a 2-entry cap under {n}² queries must evict");
        }
        assert!(
            reference.stats().classes > 2,
            "workload sanity: more class pairs than the memo cap"
        );
    }

    #[test]
    fn zero_memo_cap_disables_memoization_without_breaking_answers() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let reference = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let uncached = ArrowMCache::with_policy(
            &m,
            &family,
            &mut v,
            &HomConfig::default(),
            CachePolicy::bounded(0, usize::MAX),
        )
        .unwrap();
        for a in 0..family.len() {
            for b in 0..family.len() {
                assert_eq!(uncached.arrow(a, b), reference.arrow(a, b));
            }
        }
        let s = uncached.stats();
        assert_eq!(s.memo_entries, 0);
        assert_eq!(s.hits, 0, "nothing can hit a disabled memo");
    }

    #[test]
    fn interning_memoizes_collapses_and_evicts_within_bound() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> Q(x,y)").unwrap();
        let family = vec![parse_instance(&mut v, "P(a0,a0)").unwrap()];
        let cache = ArrowMCache::with_policy(
            &m,
            &family,
            &mut v,
            &HomConfig::default(),
            CachePolicy::bounded(usize::MAX, 2),
        )
        .unwrap();
        let config = HomConfig::default();
        // Distinct ground instances: every one is its own class.
        let insts: Vec<Instance> = (0..6)
            .map(|i| parse_instance(&mut v, &format!("P(b{i}, c{i})\nP(c{i}, b{i})")).unwrap())
            .collect();
        let mut handles = Vec::new();
        for inst in &insts {
            handles.push(cache.intern(&m, inst, &mut v, &config).unwrap());
            assert!(
                cache.stats().interned <= 2,
                "interned classes exceeded the cap: {}",
                cache.stats().interned
            );
        }
        let s = cache.stats();
        assert!(s.class_evictions >= 4, "6 distinct interns under a cap of 2: {s:?}");
        // Stale handles (their classes were evicted) still answer, and
        // answers agree with the uncached ground truth.
        for (i, ha) in handles.iter().enumerate() {
            for (j, hb) in handles.iter().enumerate() {
                let got = cache.arrow_classes(ha, hb, &config);
                let want = arrow_m(&m, &insts[i], &insts[j], &mut v).unwrap();
                assert!(!got.is_unknown());
                assert_eq!(got.holds(), want, "disagrees on interned pair ({i}, {j})");
            }
        }
        // Re-interning the most recent instance is a hit, not a new class.
        let before = cache.stats();
        let again = cache.intern(&m, &insts[5], &mut v, &config).unwrap();
        assert_eq!(again.key(), handles[5].key(), "same fingerprint, same class");
        assert_eq!(cache.stats().intern_hits, before.intern_hits + 1);
        // An instance hom-equivalent to a family member lands on the
        // pinned class and never counts against the interned cap.
        let fam = cache.intern(&m, &family[0], &mut v, &config).unwrap();
        assert!(cache.arrow_classes(&fam, &fam, &config).holds());
        assert_eq!(cache.stats().interned, before.interned, "pinned classes are not interned");
    }

    #[test]
    fn hom_implies_arrow_m() {
        // → ⊆ →_M (used in Prop 4.11): chase is monotone under hom.
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                if exists_hom(a, b) {
                    assert!(arrow_m(&m, a, b, &mut v).unwrap());
                }
            }
        }
    }

    #[test]
    fn ground_variant_agrees_on_ground_instances() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let i1 = parse_instance(&mut v, "P(a)").unwrap();
        let i2 = parse_instance(&mut v, "P(a)\nP(b)").unwrap();
        assert!(arrow_m_ground(&m, &i1, &i2, &mut v).unwrap());
        assert!(!arrow_m_ground(&m, &i2, &i1, &mut v).unwrap());
    }
}
