//! The relations `→_M` (Definition 4.6 / Proposition 4.7) and `→_{M,g}`
//! (Definition 4.18).

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::exists_hom;
use rde_model::{Instance, Vocabulary};

use crate::CoreError;

/// `I₁ →_M I₂` for a tgd-specified mapping: by Proposition 4.7 this is
/// `chase_M(I₁) → chase_M(I₂)` (equivalently, `eSol_M(I₂) ⊆
/// eSol_M(I₁)` — `I₂` exports at least as much information as `I₁`).
pub fn arrow_m(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let c1 = chase_mapping(i1, mapping, vocab, &ChaseOptions::default())?;
    let c2 = chase_mapping(i2, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(&c1, &c2))
}

/// `I₁ →_{M,g} I₂` for **ground** `I₁`, `I₂` (Definition 4.18):
/// `Sol_M(I₂) ⊆ Sol_M(I₁)`. For tgd mappings `Sol_M(I) = {J :
/// chase_M(I) → J}`, so the containment is again
/// `chase_M(I₁) → chase_M(I₂)`; the difference from [`arrow_m`] is only
/// the ground domain of applicability.
pub fn arrow_m_ground(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    debug_assert!(i1.is_ground() && i2.is_ground(), "→_{{M,g}} is defined on ground instances");
    arrow_m(mapping, i1, i2, vocab)
}

/// A cache of chase results for evaluating `→_M` over many pairs from a
/// fixed instance family (the bounded checkers and the information-loss
/// census do quadratically many `→_M` queries).
#[derive(Debug)]
pub struct ArrowMCache {
    chased: Vec<Instance>,
}

impl ArrowMCache {
    /// Chase every instance of the family once.
    pub fn new(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
    ) -> Result<Self, CoreError> {
        let mut chased = Vec::with_capacity(family.len());
        for i in family {
            chased.push(chase_mapping(i, mapping, vocab, &ChaseOptions::default())?);
        }
        Ok(ArrowMCache { chased })
    }

    /// `family[a] →_M family[b]`.
    pub fn arrow(&self, a: usize, b: usize) -> bool {
        exists_hom(&self.chased[a], &self.chased[b])
    }

    /// The cached chase of `family[a]`.
    pub fn chased(&self, a: usize) -> &Instance {
        &self.chased[a]
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.chased.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.chased.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    #[test]
    fn copy_mapping_arrow_is_hom() {
        // For the copy mapping, →_M coincides with → (Example 6.7).
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                let lhs = arrow_m(&m, a, b, &mut v).unwrap();
                let rhs = exists_hom(a, b);
                assert_eq!(lhs, rhs, "copy mapping must not change the relation: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn union_mapping_identifies_p_and_q() {
        // Example 3.14's union mapping: I₁ = {P(0)}, I₂ = {Q(0)} satisfy
        // I₁ →_M I₂ but not I₁ → I₂.
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let i1 = parse_instance(&mut v, "P(0)").unwrap();
        let i2 = parse_instance(&mut v, "Q(0)").unwrap();
        assert!(arrow_m(&m, &i1, &i2, &mut v).unwrap());
        assert!(arrow_m(&m, &i2, &i1, &mut v).unwrap());
        assert!(!exists_hom(&i1, &i2));
    }

    #[test]
    fn arrow_m_is_reflexive_and_transitive_on_a_universe() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = cache.len();
        for a in 0..n {
            assert!(cache.arrow(a, a));
            for b in 0..n {
                for c in 0..n {
                    if cache.arrow(a, b) && cache.arrow(b, c) {
                        assert!(cache.arrow(a, c), "transitivity violated");
                    }
                }
            }
        }
    }

    #[test]
    fn hom_implies_arrow_m() {
        // → ⊆ →_M (used in Prop 4.11): chase is monotone under hom.
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                if exists_hom(a, b) {
                    assert!(arrow_m(&m, a, b, &mut v).unwrap());
                }
            }
        }
    }

    #[test]
    fn ground_variant_agrees_on_ground_instances() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let i1 = parse_instance(&mut v, "P(a)").unwrap();
        let i2 = parse_instance(&mut v, "P(a)\nP(b)").unwrap();
        assert!(arrow_m_ground(&m, &i1, &i2, &mut v).unwrap());
        assert!(!arrow_m_ground(&m, &i2, &i1, &mut v).unwrap());
    }
}
