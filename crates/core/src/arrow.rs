//! The relations `→_M` (Definition 4.6 / Proposition 4.7) and `→_{M,g}`
//! (Definition 4.18).

use std::sync::Mutex;

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_faults::ExecContext;
use rde_hom::{core_of_budgeted, exists_hom, exists_hom_budgeted, HomConfig, HomStats, Verdict};
use rde_model::fx::FxHashMap;
use rde_model::{Fact, Instance, NullId, Value, Vocabulary};

use crate::CoreError;

/// `I₁ →_M I₂` for a tgd-specified mapping: by Proposition 4.7 this is
/// `chase_M(I₁) → chase_M(I₂)` (equivalently, `eSol_M(I₂) ⊆
/// eSol_M(I₁)` — `I₂` exports at least as much information as `I₁`).
pub fn arrow_m(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let c1 = chase_mapping(i1, mapping, vocab, &ChaseOptions::default())?;
    let c2 = chase_mapping(i2, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(&c1, &c2))
}

/// `I₁ →_{M,g} I₂` for **ground** `I₁`, `I₂` (Definition 4.18):
/// `Sol_M(I₂) ⊆ Sol_M(I₁)`. For tgd mappings `Sol_M(I) = {J :
/// chase_M(I) → J}`, so the containment is again
/// `chase_M(I₁) → chase_M(I₂)`; the difference from [`arrow_m`] is only
/// the ground domain of applicability.
pub fn arrow_m_ground(
    mapping: &SchemaMapping,
    i1: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    debug_assert!(i1.is_ground() && i2.is_ground(), "→_{{M,g}} is defined on ground instances");
    arrow_m(mapping, i1, i2, vocab)
}

/// Work counters of an [`ArrowMCache`]: how far canonicalization
/// compressed the family and how often memoization answered a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Instances in the family.
    pub instances: usize,
    /// Distinct hom-equivalence classes detected by core fingerprinting
    /// (an upper bound: isomorphic cores with different value labellings
    /// may land in separate classes).
    pub classes: usize,
    /// Arrow queries answered from the memo table.
    pub hits: u64,
    /// Arrow queries that ran a homomorphism search.
    pub misses: u64,
    /// Total homomorphism-search work (chase-time core minimization plus
    /// all memo misses).
    pub hom: HomStats,
}

/// Fingerprint of an instance up to null renaming: the canonical fact
/// list with nulls renumbered in first-occurrence order. Equal
/// fingerprints imply isomorphic instances (each side is isomorphic to
/// the common renumbered instance); the converse can fail, which only
/// costs an extra equivalence class, never a wrong answer.
// The expect is a capacity invariant, not a reachable failure: distinct
// nulls are `NullId(u32)`, so `rename` can never hold more than 2³²
// entries, and an instance that large cannot exist in memory.
#[allow(clippy::expect_used)]
fn fingerprint(instance: &Instance) -> Vec<Fact> {
    let mut rename: FxHashMap<NullId, NullId> = FxHashMap::default();
    instance
        .canonical_facts()
        .iter()
        .map(|f| {
            f.map_values(|v| match v {
                Value::Null(n) => {
                    let next = NullId(u32::try_from(rename.len()).expect("instance too large"));
                    Value::Null(*rename.entry(n).or_insert(next))
                }
                c => c,
            })
        })
        .collect()
}

/// A cache of chase results for evaluating `→_M` over many pairs from a
/// fixed instance family (the bounded checkers and the information-loss
/// census do quadratically many `→_M` queries).
///
/// Construction chases every instance once and **core-canonicalizes**
/// the result: instances whose chase cores share a [`fingerprint`] are
/// hom-equivalent, so they collapse into one equivalence class with a
/// single representative (the core — also the cheapest instance to
/// search). Arrow queries then memoize per *class pair*, so a family
/// with `k` classes answers its `n²` queries with at most `k²` searches,
/// each on a minimized instance.
#[derive(Debug)]
pub struct ArrowMCache {
    chased: Vec<Instance>,
    /// `class[a]` = equivalence class of `family[a]`.
    class: Vec<usize>,
    /// One core representative per class.
    reps: Vec<Instance>,
    /// Memoized `reps[i] → reps[j]` answers. `Mutex`, not `RefCell`:
    /// the loss census shares one cache across scoped worker threads.
    memo: Mutex<FxHashMap<(usize, usize), bool>>,
    stats: Mutex<CacheStats>,
    /// The execution context the cache was built under. Arrow queries
    /// take no config, so the construction-time context also scopes
    /// their fault-injection decisions (`core.arrow.poison`).
    ctx: ExecContext,
}

impl ArrowMCache {
    /// Chase every instance of the family once and canonicalize the
    /// results into hom-equivalence classes.
    pub fn new(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
    ) -> Result<Self, CoreError> {
        Self::new_budgeted(mapping, family, vocab, &HomConfig::default())
    }

    /// Like [`Self::new`], but construction runs under `config`'s
    /// budgets, threaded differently into the two construction phases
    /// to match their failure modes:
    ///
    /// * the **chase** gets `config`'s *time* budget only — premise
    ///   matching is strict (a truncated enumeration is a
    ///   [`CoreError`], not a degraded result), and these searches are
    ///   tiny, so a node budget meant for the checker's hom decisions
    ///   would only inject spurious hard failures;
    /// * **core minimization** gets the full `config` — it degrades
    ///   gracefully (a budget-cut fold test leaves a sound, possibly
    ///   non-minimal representative, never a wrong class).
    pub fn new_budgeted(
        mapping: &SchemaMapping,
        family: &[Instance],
        vocab: &mut Vocabulary,
        config: &HomConfig,
    ) -> Result<Self, CoreError> {
        let span = rde_obs::span("core.arrow.build", &[("instances", family.len().into())]);
        let chase_options = ChaseOptions {
            hom: HomConfig { node_budget: None, ..config.clone() },
            ctx: config.ctx.clone(),
            ..ChaseOptions::default()
        };
        let mut chased = Vec::with_capacity(family.len());
        let mut class = Vec::with_capacity(family.len());
        let mut reps: Vec<Instance> = Vec::new();
        let mut by_fp: FxHashMap<Vec<Fact>, usize> = FxHashMap::default();
        let mut hom = HomStats::default();
        for i in family {
            // Construction chases the whole family; per-instance checks
            // make a deadline or Ctrl-C cut between chases too, not
            // just inside one.
            if config.ctx.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            let c = chase_mapping(i, mapping, vocab, &chase_options)?;
            let outcome = core_of_budgeted(&c, config);
            hom += outcome.stats;
            let core = outcome.result.core;
            let cid = *by_fp.entry(fingerprint(&core)).or_insert_with(|| {
                reps.push(core);
                reps.len() - 1
            });
            class.push(cid);
            chased.push(c);
        }
        let mut class_sizes = vec![0u64; reps.len()];
        for &cid in &class {
            class_sizes[cid] += 1;
        }
        for &size in &class_sizes {
            rde_obs::histogram!("core.arrow.class_size").record(size);
        }
        span.close_with(&[("classes", reps.len().into())]);
        let stats =
            CacheStats { instances: family.len(), classes: reps.len(), hits: 0, misses: 0, hom };
        Ok(ArrowMCache {
            chased,
            class,
            reps,
            memo: Mutex::new(FxHashMap::default()),
            stats: Mutex::new(stats),
            ctx: config.ctx.clone(),
        })
    }

    /// `family[a] →_M family[b]`: `chase_M(a) → chase_M(b)`, answered on
    /// the core representatives and memoized per class pair.
    pub fn arrow(&self, a: usize, b: usize) -> bool {
        // Resilience-suite injection: a worker that panicked while
        // holding these locks must not wedge every later query —
        // `lock_memo`/`lock_stats` recover from the poison.
        if self.ctx.should_inject("core.arrow.poison") {
            rde_faults::poison_mutex(&self.memo);
            rde_faults::poison_mutex(&self.stats);
        }
        let key = (self.class[a], self.class[b]);
        if let Some(&cached) = self.lock_memo().get(&key) {
            self.lock_stats().hits += 1;
            rde_obs::counter!("core.arrow.hits").inc();
            return cached;
        }
        rde_obs::counter!("core.arrow.misses").inc();
        let mut search = HomStats::default();
        let holds = exists_hom_budgeted(
            &self.reps[key.0],
            &self.reps[key.1],
            &HomConfig::default(),
            &mut search,
        )
        .holds();
        let mut stats = self.lock_stats();
        stats.misses += 1;
        stats.hom += search;
        drop(stats);
        self.lock_memo().insert(key, holds);
        holds
    }

    /// Budgeted form of [`Self::arrow`]: decides on the core
    /// representatives under `config`, memoizing definite verdicts only
    /// (an `Unknown` must stay retryable with a larger budget).
    pub fn arrow_budgeted(&self, a: usize, b: usize, config: &HomConfig) -> Verdict {
        if self.ctx.should_inject("core.arrow.poison") {
            rde_faults::poison_mutex(&self.memo);
            rde_faults::poison_mutex(&self.stats);
        }
        let key = (self.class[a], self.class[b]);
        if let Some(&cached) = self.lock_memo().get(&key) {
            self.lock_stats().hits += 1;
            rde_obs::counter!("core.arrow.hits").inc();
            return Verdict::from_bool(cached);
        }
        rde_obs::counter!("core.arrow.misses").inc();
        let mut search = HomStats::default();
        let verdict =
            exists_hom_budgeted(&self.reps[key.0], &self.reps[key.1], config, &mut search);
        let mut stats = self.lock_stats();
        stats.misses += 1;
        stats.hom += search;
        drop(stats);
        if !verdict.is_unknown() {
            self.lock_memo().insert(key, verdict.holds());
        } else {
            rde_obs::counter!("core.arrow.unknown").inc();
        }
        verdict
    }

    /// The cached chase of `family[a]`.
    pub fn chased(&self, a: usize) -> &Instance {
        &self.chased[a]
    }

    /// Current counters (class count is fixed at construction; hit/miss
    /// tallies grow as queries arrive).
    pub fn stats(&self) -> CacheStats {
        *self.lock_stats()
    }

    fn lock_memo(&self) -> std::sync::MutexGuard<'_, FxHashMap<(usize, usize), bool>> {
        self.memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, CacheStats> {
        self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of cached instances.
    pub fn len(&self) -> usize {
        self.chased.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.chased.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    #[test]
    fn copy_mapping_arrow_is_hom() {
        // For the copy mapping, →_M coincides with → (Example 6.7).
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                let lhs = arrow_m(&m, a, b, &mut v).unwrap();
                let rhs = exists_hom(a, b);
                assert_eq!(lhs, rhs, "copy mapping must not change the relation: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn union_mapping_identifies_p_and_q() {
        // Example 3.14's union mapping: I₁ = {P(0)}, I₂ = {Q(0)} satisfy
        // I₁ →_M I₂ but not I₁ → I₂.
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let i1 = parse_instance(&mut v, "P(0)").unwrap();
        let i2 = parse_instance(&mut v, "Q(0)").unwrap();
        assert!(arrow_m(&m, &i1, &i2, &mut v).unwrap());
        assert!(arrow_m(&m, &i2, &i1, &mut v).unwrap());
        assert!(!exists_hom(&i1, &i2));
    }

    #[test]
    fn arrow_m_is_reflexive_and_transitive_on_a_universe() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = cache.len();
        for a in 0..n {
            assert!(cache.arrow(a, a));
            for b in 0..n {
                for c in 0..n {
                    if cache.arrow(a, b) && cache.arrow(b, c) {
                        assert!(cache.arrow(a, c), "transitivity violated");
                    }
                }
            }
        }
    }

    #[test]
    fn cache_agrees_with_direct_arrow_and_memoizes() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cache = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let n = family.len();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    cache.arrow(a, b),
                    arrow_m(&m, &family[a], &family[b], &mut v).unwrap(),
                    "cache disagrees on ({a}, {b})"
                );
            }
        }
        let s = cache.stats();
        assert!(s.classes < s.instances, "core fingerprinting must collapse some classes");
        assert_eq!(s.hits + s.misses, (n * n) as u64);
        assert!(s.misses <= (s.classes * s.classes) as u64, "at most one search per class pair");
        // A second sweep is answered entirely from the memo.
        for a in 0..n {
            for b in 0..n {
                cache.arrow(a, b);
            }
        }
        assert_eq!(cache.stats().misses, s.misses);
    }

    #[test]
    fn budgeted_arrow_degrades_to_unknown_not_a_wrong_answer() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let reference = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let budgeted = ArrowMCache::new(&m, &family, &mut v).unwrap();
        let tight = rde_hom::HomConfig { node_budget: Some(1), ..rde_hom::HomConfig::default() };
        let mut unknowns = 0;
        for a in 0..family.len() {
            for b in 0..family.len() {
                match budgeted.arrow_budgeted(a, b, &tight) {
                    Verdict::Unknown { .. } => unknowns += 1,
                    definite => assert_eq!(definite.holds(), reference.arrow(a, b)),
                }
            }
        }
        assert!(unknowns > 0, "a one-node budget must cut some searches");
        // Unknowns are not memoized: an unbounded retry settles them.
        for a in 0..family.len() {
            for b in 0..family.len() {
                assert_eq!(budgeted.arrow(a, b), reference.arrow(a, b));
            }
        }
    }

    #[test]
    fn hom_implies_arrow_m() {
        // → ⊆ →_M (used in Prop 4.11): chase is monotone under hom.
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::small(&mut v);
        let family = u.collect_instances(&v, &m.source).unwrap();
        for a in &family {
            for b in &family {
                if exists_hom(a, b) {
                    assert!(arrow_m(&m, a, b, &mut v).unwrap());
                }
            }
        }
    }

    #[test]
    fn ground_variant_agrees_on_ground_instances() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let i1 = parse_instance(&mut v, "P(a)").unwrap();
        let i2 = parse_instance(&mut v, "P(a)\nP(b)").unwrap();
        assert!(arrow_m_ground(&m, &i1, &i2, &mut v).unwrap());
        assert!(!arrow_m_ground(&m, &i2, &i1, &mut v).unwrap());
    }
}
