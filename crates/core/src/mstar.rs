//! The canonical strong maximum extended recovery
//! `M* = {(chase_M(I), I) : I a source instance}` (Theorem 4.10) and
//! the lemmas around it.
//!
//! `M*` is a *semantic* mapping — it is not given by dependencies — but
//! its pointwise membership is decidable, which is all the theory
//! needs: Lemma 4.9 says `M* ⊆ e(M′)` for every extended recovery
//! `M′`; Lemma 4.12 says `e(M) ∘ e(M*) = →_M`; Theorem 4.10 concludes
//! that `M*` is a strong maximum extended recovery. This module decides
//! membership in `M*` and in `e(M*)`, and provides bounded checkers for
//! the lemmas.

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::{exists_hom, is_isomorphic};
use rde_model::{Instance, Vocabulary};

use crate::compose::ComposeOptions;
use crate::{CoreError, Universe};

/// `(J, I) ∈ M*`: is `J` *the* canonical universal solution
/// `chase_M(I)`? The chase is deterministic only up to the choice of
/// fresh nulls, so equality is taken up to isomorphism — except on the
/// nulls of `I` itself, which must be preserved; we therefore check
/// isomorphism of the combined pairs `(I, J)` vs `(I, chase_M(I))`,
/// which pins `I`'s values in place.
pub fn in_m_star(
    mapping: &SchemaMapping,
    target: &Instance,
    source: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(is_isomorphic(&source.union(target), &source.union(&canonical)))
}

/// `(J, I₂) ∈ e(M*) = → ∘ M* ∘ →`: there are `J′`, `I` with `J → J′`,
/// `J′ = chase_M(I)` and `I → I₂`.
///
/// By chase monotonicity the witnesses can be normalized: the pair
/// `(chase_M(I₂), I₂)` is in `M*`, and `J → chase_M(I₂)` implies
/// membership with `I = I₂`. Conversely `J → chase_M(I)` and
/// `I → I₂` give `chase_M(I) → chase_M(I₂)` (Prop 4.7), hence
/// `J → chase_M(I₂)`. So: `(J, I₂) ∈ e(M*)` iff `J → chase_M(I₂)`.
pub fn in_e_m_star(
    mapping: &SchemaMapping,
    target: &Instance,
    i2: &Instance,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let canonical = chase_mapping(i2, mapping, vocab, &ChaseOptions::default())?;
    Ok(exists_hom(target, &canonical))
}

/// Bounded check of Lemma 4.9: for every source `I` of the universe,
/// `(chase_M(I), I) ∈ e(M′)` — i.e. `e(M*) ⊆ e(M′)` on the canonical
/// generators. Returns the first failing source; `None` means `M′`
/// passes the *strong* maximum condition within the bound.
///
/// `M′` must be guard-free (tgds or disjunctive tgds), so pointwise
/// `e(M′)` membership is a single disjunctive chase.
pub fn check_lemma_4_9(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<Option<Instance>, CoreError> {
    if !reverse.is_disjunctive_tgd_mapping() {
        return Err(CoreError::UnsupportedMapping {
            required: "a guard-free (disjunctive) tgd reverse mapping",
        });
    }
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    for i in &family {
        let u = chase_mapping(i, mapping, vocab, &ChaseOptions::default())?;
        // (U, I) ∈ e(M′) iff some disjunctive-chase leaf of U maps into I.
        let result =
            rde_chase::disjunctive_chase(&u, &reverse.dependencies, vocab, &options.chase)?;
        let hit =
            result.leaves.iter().any(|leaf| exists_hom(&leaf.restrict_to(&reverse.target), i));
        if !hit {
            return Ok(Some(i.clone()));
        }
    }
    Ok(None)
}

/// Bounded check of Lemma 4.12: `e(M) ∘ e(M*) = →_M` on every pair of
/// the universe. Both sides are computed independently —
/// `(I₁, I₂) ∈ e(M) ∘ e(M*)` iff ∃ `J` with `chase(I₁) → J` and
/// `(J, I₂) ∈ e(M*)`; normalizing `J = chase(I₁)` is sound because
/// `e(M*)` is down-closed under `→` on its first argument.
pub fn check_lemma_4_12(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let cache = crate::arrow::ArrowMCache::new(mapping, &family, vocab)?;
    for a in 0..family.len() {
        for (b, i2) in family.iter().enumerate() {
            let lhs = in_e_m_star(mapping, cache.chased(a), i2, vocab)?;
            if lhs != cache.arrow(a, b) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    fn two_step(v: &mut Vocabulary) -> SchemaMapping {
        parse_mapping(v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()
    }

    #[test]
    fn m_star_membership_is_iso_invariant() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let i = parse_instance(&mut v, "P(a, b)").unwrap();
        let canonical = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(in_m_star(&m, &canonical, &i, &mut v).unwrap());
        // A re-run invents different nulls; still in M*.
        let rerun = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(in_m_star(&m, &rerun, &i, &mut v).unwrap());
        // A ground completion is a solution but NOT the canonical one.
        let ground = parse_instance(&mut v, "Q(a, c)\nQ(c, b)").unwrap();
        assert!(!in_m_star(&m, &ground, &i, &mut v).unwrap());
    }

    #[test]
    fn m_star_preserves_source_nulls() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let i = parse_instance(&mut v, "P(?w)").unwrap();
        let good = parse_instance(&mut v, "Q(?w)").unwrap();
        let bad = parse_instance(&mut v, "Q(?other)").unwrap();
        assert!(in_m_star(&m, &good, &i, &mut v).unwrap());
        // Q over a different null is NOT chase_M(I): the source's null
        // is pinned by the combined-pair isomorphism.
        assert!(!in_m_star(&m, &bad, &i, &mut v).unwrap());
    }

    #[test]
    fn e_m_star_is_the_chase_hom_relation() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let i1 = parse_instance(&mut v, "P(a, b)").unwrap();
        let i2 = parse_instance(&mut v, "P(a, b)\nP(b, a)").unwrap();
        let u1 = chase_mapping(&i1, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(in_e_m_star(&m, &u1, &i2, &mut v).unwrap());
        let u2 = chase_mapping(&i2, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(!in_e_m_star(&m, &u2, &i1, &mut v).unwrap());
    }

    /// Lemma 4.9 in action: every extended recovery contains M*'s
    /// generators; a non-recovery does not.
    #[test]
    fn lemma_4_9_bounded() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)")
            .unwrap();
        let rec =
            parse_mapping(&mut v, "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x) | B(x)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 2);
        let opts = ComposeOptions::default();
        assert_eq!(check_lemma_4_9(&m, &rec, &u, &mut v, &opts).unwrap(), None);
        // The A-only reverse is not an extended recovery; Lemma 4.9's
        // conclusion fails at a B-source.
        let bad = parse_mapping(&mut v, "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x)").unwrap();
        let cex = check_lemma_4_9(&m, &bad, &u, &mut v, &opts).unwrap();
        assert!(cex.is_some());
    }

    #[test]
    fn lemma_4_12_bounded() {
        let mut v = Vocabulary::new();
        let m = two_step(&mut v);
        let u = Universe::new(&mut v, 2, 1, 1);
        assert!(check_lemma_4_12(&m, &u, &mut v).unwrap());
        // Also on a lossy mapping — the lemma is unconditional on M.
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 2, 1, 1);
        assert!(check_lemma_4_12(&m, &u, &mut v).unwrap());
    }
}
