//! The quasi-inverse algorithm for full tgds (Section 5).
//!
//! Theorem 5.1: for a schema mapping `M` specified by **full** s-t tgds,
//! the quasi-inverse algorithm of Fagin–Kolaitis–Popa–Tan (TODS 2008,
//! §4.2) produces a **maximum extended recovery** of `M`, specified by
//! disjunctive tgds with inequalities — and by Theorem 5.2 both
//! disjunction and inequalities are necessary.
//!
//! ## The construction
//!
//! For every tgd `φ(x) → ψ(x)` in `Σ` and every equality type `e` (a
//! partition of the **conclusion** variables):
//!
//! 1. collapse the conclusion by `e` and **freeze** its variables (one
//!    rigid value per class) into the witness pattern `ψ_e` — the exact
//!    shape a single trigger of this tgd leaves in the target;
//! 2. enumerate **blocks**: homomorphic images of any tgd premise of
//!    `Σ` onto the classes of `e` *and fresh existential slots*, whose
//!    own visible export (class-value facts of its chase) contributes
//!    at least one atom of `ψ_e`. Slots are essential: the pattern
//!    `T(x)` of `S(x,y) ∧ S(y,y) → T(x)` may be explained by
//!    `∃y (S(x,y) ∧ S(y,y))` with `y` outside the witness entirely;
//! 3. find the **minimal covers**: inclusion-minimal unions of blocks
//!    whose chase *covers* `ψ_e` on the class-visible facts (the
//!    identity image of `φ_e` always does, so covers exist). Each
//!    minimal cover becomes one disjunct; slot values become
//!    per-disjunct existentials;
//! 4. emit `ψ_e(x̄) ∧ ⋀_{i≠j} xᵢ ≠ xⱼ → ⋁ covers`, then merge rules
//!    with α-equivalent premises across `(tgd, e)` pairs, unioning
//!    their disjunct sets.
//!
//! The premise is the conclusion pattern — not the full chase footprint
//! of the collapsed premise. Footprint premises are wrong: `e(M)∘e(M′)`
//! ranges over homomorphic collapses of the exchanged instance, which
//! may exhibit a conclusion pattern *without* the interaction facts the
//! footprint would demand (e.g. `T(a,a)` without `U(a)` under
//! `S(x,y)→T(x,y), S(x,y)∧S(y,x)→U(x)`), and a footprint-keyed rule
//! then stays silent, leaking pairs into the composition.
//!
//! The inequalities pin the witness tuple to the exact equality type
//! (Theorem 5.2's `P′(x, y) ∧ x ≠ y → P(x, y)`); the disjunction ranges
//! over the genuinely different explanations (`P′(x, x) → T(x) ∨
//! P(x, x)`). The output is validated as a maximum extended recovery —
//! by the unit tests, experiments E10/E11, and a property-based stress
//! suite over random full-tgd mappings — rather than trusted blindly.

use rde_chase::{chase, ChaseOptions};
use rde_deps::{Atom, Conjunct, Dependency, Premise, SchemaMapping, Term, VarId};
use rde_faults::ExecContext;
use rde_model::fx::{FxHashMap, FxHashSet};
use rde_model::{Instance, Value, Vocabulary};

use crate::CoreError;

/// Limits for the quasi-inverse construction.
#[derive(Debug, Clone)]
pub struct QuasiInverseOptions {
    /// Maximum premise variables per tgd (set partitions grow as Bell
    /// numbers; `B(8) = 4140`).
    pub max_premise_vars: usize,
    /// Maximum number of candidate blocks per pattern.
    pub max_blocks: usize,
    /// Maximum size of a minimal cover (the identity cover has size 1,
    /// so the algorithm always produces output; larger covers add
    /// alternative explanations).
    pub max_cover_size: usize,
    /// Execution context: the cancel token is polled once per
    /// `(tgd, equality type)` unit of work, and the fault injector
    /// drives the `core.quasi.construct` point.
    pub ctx: ExecContext,
}

impl Default for QuasiInverseOptions {
    fn default() -> Self {
        QuasiInverseOptions {
            max_premise_vars: 8,
            max_blocks: 4096,
            max_cover_size: 4,
            ctx: ExecContext::default(),
        }
    }
}

/// Compute a maximum extended recovery of a **full-tgd** mapping as
/// disjunctive tgds with inequalities (Theorem 5.1).
pub fn maximum_extended_recovery_full(
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
    options: &QuasiInverseOptions,
) -> Result<SchemaMapping, CoreError> {
    if !mapping.is_full_tgd_mapping() {
        return Err(CoreError::UnsupportedMapping {
            required: "full s-t tgds (no existentials, guards or disjunctions)",
        });
    }
    let mut rules: Vec<Dependency> = Vec::new();

    for dep in &mapping.dependencies {
        let vars = dep.universal_vars();
        if vars.len() > options.max_premise_vars {
            return Err(CoreError::SearchLimitExceeded {
                what: "premise variables for equality-type enumeration",
                limit: options.max_premise_vars,
            });
        }
        // Slots: any block may use up to its own premise-variable count
        // of fresh existential values.
        let max_slots =
            mapping.dependencies.iter().map(|d| d.universal_vars().len()).max().unwrap_or(0);
        // Equality types range over the variables of the conclusion:
        // premise-only variables never reach the target pattern.
        let conclusion_atoms = &dep.disjuncts[0].atoms;
        let mut conclusion_vars: Vec<VarId> = Vec::new();
        for a in conclusion_atoms {
            for v in a.vars() {
                if !conclusion_vars.contains(&v) {
                    conclusion_vars.push(v);
                }
            }
        }
        if conclusion_atoms.is_empty() {
            continue;
        }
        for partition in set_partitions(conclusion_vars.len()) {
            // One (tgd, equality type) is the construction's natural
            // unit of work: poll cancellation — and the resilience
            // suite's `core.quasi.construct` point — between units.
            if options.ctx.should_inject("core.quasi.construct") || options.ctx.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
            let n_classes = partition.iter().copied().max().map_or(0, |m| m + 1);
            let frozen = FrozenClasses::new(vocab, n_classes, max_slots);
            let var_to_class: FxHashMap<VarId, usize> =
                conclusion_vars.iter().copied().zip(partition.iter().copied()).collect();

            // Step 1: the witness pattern ψ_e (frozen conclusion).
            let pattern = freeze_dep_atoms(conclusion_atoms, &var_to_class, &frozen);

            // Step 2: blocks (premise images onto classes + fresh slots).
            let blocks = enumerate_blocks(mapping, n_classes, &frozen, &pattern, vocab, options)?;

            // Step 3: minimal covers of the pattern.
            let (covers, slot_values) =
                minimal_covers(&blocks, &pattern, mapping, &frozen, vocab, options)?;
            debug_assert!(!covers.is_empty(), "the identity premise image always covers");

            // Step 4: emit the rule.
            rules.push(emit_rule(&pattern, &covers, &slot_values, &frozen, vocab));
        }
    }
    // Step 5: merge rules with α-equivalent premises. Two equality
    // types (possibly of different tgds) can export the *same*
    // footprint — e.g. for `P(x,y) → Q(x)`, both the distinct and the
    // collapsed partition export just `Q(x)`. Their rules fire on the
    // same witnesses, so they must contribute alternative disjuncts to
    // ONE rule; emitting them separately would conjoin their
    // conclusions and over-constrain the recovery.
    let merged = merge_rules(rules, vocab);
    Ok(SchemaMapping::new(mapping.target.clone(), mapping.source.clone(), merged))
}

/// Rigid per-class values used to freeze variables, plus canonical
/// per-block "slot" values for existential positions. Frozen values are
/// private named nulls: the chase treats them as ordinary (distinct)
/// values, and instance comparison is exact on them.
struct FrozenClasses {
    values: Vec<Value>,
    /// Canonical slot values `__qsA0, __qsA1, …` used while a block is
    /// considered in isolation; covers re-freeze slots per block.
    canonical_slots: Vec<Value>,
}

impl FrozenClasses {
    fn new(vocab: &mut Vocabulary, n_classes: usize, max_slots: usize) -> Self {
        let values =
            (0..n_classes).map(|i| Value::Null(vocab.named_null(&format!("__qi{i}")))).collect();
        let canonical_slots =
            (0..max_slots).map(|i| Value::Null(vocab.named_null(&format!("__qsA{i}")))).collect();
        FrozenClasses { values, canonical_slots }
    }

    fn value(&self, class: usize) -> Value {
        self.values[class]
    }

    fn slot(&self, i: usize) -> Value {
        self.canonical_slots[i]
    }

    /// The class of a frozen value, if it is one.
    fn class_of(&self, v: Value) -> Option<usize> {
        self.values.iter().position(|&f| f == v)
    }

    /// The sub-instance of facts mentioning only class values and
    /// constants (no slots, no foreign values) — the part of an export
    /// that is visible on the witness tuple.
    fn class_only(&self, instance: &Instance) -> Instance {
        instance
            .facts()
            .filter(|f| {
                f.args().iter().all(|&v| match v {
                    Value::Const(_) => true,
                    Value::Null(_) => self.class_of(v).is_some(),
                })
            })
            .collect()
    }
}

fn freeze_dep_atoms(
    atoms: &[Atom],
    var_to_class: &FxHashMap<VarId, usize>,
    frozen: &FrozenClasses,
) -> Instance {
    atoms.iter().map(|a| a.instantiate(&|v: VarId| frozen.value(var_to_class[&v]))).collect()
}

fn chase_to_target(
    instance: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
) -> Result<Instance, CoreError> {
    let result = chase(instance, &mapping.dependencies, vocab, &ChaseOptions::default())?;
    Ok(result.instance.restrict_to(&mapping.target))
}

/// A candidate explanation fragment: a premise image mapping each
/// variable to a witness class **or a fresh slot** (an existential
/// value beyond the witness tuple). The class-visible part of its own
/// export must be a non-empty subset of `C_e`.
///
/// Slots are essential for completeness: the footprint `T(a)` of
/// `S(x,y) ∧ S(y,y) → T(x)` may be explained by `∃y (S(a,y) ∧
/// S(y,y))` for a `y` that is *not* part of the witness at all.
#[derive(Debug, Clone)]
struct Block {
    /// Source atoms, frozen with canonical slot values.
    atoms: Instance,
    /// Number of canonical slots used.
    n_slots: usize,
}

fn enumerate_blocks(
    mapping: &SchemaMapping,
    n_classes: usize,
    frozen: &FrozenClasses,
    c_e: &Instance,
    vocab: &mut Vocabulary,
    options: &QuasiInverseOptions,
) -> Result<Vec<Block>, CoreError> {
    let mut blocks = Vec::new();
    let mut seen: FxHashSet<Instance> = FxHashSet::default();
    for dep in &mapping.dependencies {
        let vars = dep.universal_vars();
        let m = vars.len();
        // Alphabet: classes 0..n_classes, then slots. Enumerate all
        // assignments, normalizing slot indices by first occurrence so
        // symmetric variants collide in `seen`.
        let alphabet = n_classes + m;
        let mut idx = vec![0usize; m];
        loop {
            // Normalize slot usage.
            let mut slot_rename: FxHashMap<usize, usize> = FxHashMap::default();
            let mut assignment: FxHashMap<VarId, Value> = FxHashMap::default();
            let mut n_slots = 0usize;
            for (var, &choice) in vars.iter().zip(&idx) {
                let value = if choice < n_classes {
                    frozen.value(choice)
                } else {
                    let raw = choice - n_classes;
                    let norm = *slot_rename.entry(raw).or_insert_with(|| {
                        let s = n_slots;
                        n_slots += 1;
                        s
                    });
                    frozen.slot(norm)
                };
                assignment.insert(*var, value);
            }
            let atoms: Instance = dep
                .premise
                .atoms
                .iter()
                .map(|a| a.instantiate(&|v: VarId| assignment[&v]))
                .collect();
            if seen.insert(atoms.clone()) {
                let export = chase_to_target(&atoms, mapping, vocab)?;
                let visible = frozen.class_only(&export);
                let contributes = visible.facts().any(|f| c_e.contains(&f));
                if contributes {
                    blocks.push(Block { atoms, n_slots });
                    if blocks.len() > options.max_blocks {
                        return Err(CoreError::SearchLimitExceeded {
                            what: "candidate blocks",
                            limit: options.max_blocks,
                        });
                    }
                }
            }
            // Odometer over assignments.
            let mut pos = m;
            loop {
                if pos == 0 {
                    idx.clear();
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < alphabet {
                    break;
                }
                idx[pos] = 0;
            }
            if idx.is_empty() || m == 0 {
                break;
            }
        }
    }
    Ok(blocks)
}

/// Inclusion-minimal unions of blocks whose combined chase, restricted
/// to the class-visible facts, equals `C_e` exactly. Each block's slots
/// are renamed apart before the union (private existentials). Returns
/// the unioned source instances together with the set of per-cover slot
/// values used (for unfreezing into existential variables).
fn minimal_covers(
    blocks: &[Block],
    c_e: &Instance,
    mapping: &SchemaMapping,
    frozen: &FrozenClasses,
    vocab: &mut Vocabulary,
    options: &QuasiInverseOptions,
) -> Result<(Vec<Instance>, FxHashSet<Value>), CoreError> {
    // Rename each block's canonical slots to private per-block values.
    let mut slot_values: FxHashSet<Value> = FxHashSet::default();
    let renamed: Vec<Instance> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut map: FxHashMap<Value, Value> = FxHashMap::default();
            for j in 0..b.n_slots {
                let private = Value::Null(vocab.named_null(&format!("__qs{i}_{j}")));
                slot_values.insert(private);
                map.insert(frozen.slot(j), private);
            }
            b.atoms.map_values(|v| map.get(&v).copied().unwrap_or(v))
        })
        .collect();

    let mut cover_indices: Vec<Vec<usize>> = Vec::new();
    let mut covers: Vec<Instance> = Vec::new();
    let max_size = options.max_cover_size.min(blocks.len());
    let mut combo: Vec<usize> = Vec::new();
    for size in 1..=max_size {
        combo.clear();
        combo.extend(0..size);
        loop {
            let is_superset_of_cover =
                cover_indices.iter().any(|c| c.iter().all(|b| combo.contains(b)));
            if !is_superset_of_cover {
                let mut union = Instance::new();
                for &b in &combo {
                    union = union.union(&renamed[b]);
                }
                let export = chase_to_target(&union, mapping, vocab)?;
                if c_e.is_subset_of(&frozen.class_only(&export)) {
                    cover_indices.push(combo.clone());
                    covers.push(union);
                }
            }
            if !next_combination(&mut combo, blocks.len()) {
                break;
            }
        }
    }
    Ok((covers, slot_values))
}

fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let k = idx.len();
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if idx[i] < n - (k - i) {
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
}

/// Un-freeze `C_e` and the covers into a disjunctive tgd with
/// inequalities. Class values become premise variables; slot values
/// become per-disjunct existentials; non-exported classes used by a
/// disjunct are existential too.
fn emit_rule(
    c_e: &Instance,
    covers: &[Instance],
    slot_values: &FxHashSet<Value>,
    frozen: &FrozenClasses,
    vocab: &Vocabulary,
) -> Dependency {
    // Classes exported by C_e become premise variables.
    let mut exported: Vec<usize> = Vec::new();
    for fact in c_e.canonical_facts() {
        for &v in fact.args() {
            if let Some(c) = frozen.class_of(v) {
                if !exported.contains(&c) {
                    exported.push(c);
                }
            }
        }
    }
    exported.sort_unstable();
    let n_classes = frozen.values.len();

    // Premise: C_e mentions only class values and constants.
    let mut premise_atoms: Vec<Atom> = Vec::new();
    for fact in c_e.canonical_facts() {
        let args = fact
            .args()
            .iter()
            .map(|&v| match frozen.class_of(v) {
                Some(c) => Term::Var(VarId(c as u32)),
                None => match v {
                    Value::Const(c) => Term::Const(c),
                    Value::Null(n) => unreachable!(
                        "unexpected foreign null {n:?} in footprint (vocab has {} nulls)",
                        vocab.null_count()
                    ),
                },
            })
            .collect();
        premise_atoms.push(Atom { rel: fact.relation(), args });
    }
    let mut inequalities = Vec::new();
    for (i, &a) in exported.iter().enumerate() {
        for &b in &exported[i + 1..] {
            inequalities.push((VarId(a as u32), VarId(b as u32)));
        }
    }

    let mut disjuncts: Vec<Conjunct> = Vec::new();
    let mut seen_disjuncts: FxHashSet<Vec<Atom>> = FxHashSet::default();
    let mut max_extra = 0usize;
    for cover in covers {
        let mut slot_map: FxHashMap<Value, VarId> = FxHashMap::default();
        let mut next = n_classes;
        let mut atoms: Vec<Atom> = Vec::new();
        for fact in cover.canonical_facts() {
            let mut args = Vec::with_capacity(fact.arity());
            for &v in fact.args() {
                let term = if let Some(c) = frozen.class_of(v) {
                    Term::Var(VarId(c as u32))
                } else if slot_values.contains(&v) {
                    let id = *slot_map.entry(v).or_insert_with(|| {
                        let id = VarId(next as u32);
                        next += 1;
                        id
                    });
                    Term::Var(id)
                } else {
                    match v {
                        Value::Const(c) => Term::Const(c),
                        Value::Null(n) => unreachable!(
                            "unexpected foreign null {n:?} in cover (vocab has {} nulls)",
                            vocab.null_count()
                        ),
                    }
                };
                args.push(term);
            }
            atoms.push(Atom { rel: fact.relation(), args });
        }
        if !seen_disjuncts.insert(atoms.clone()) {
            continue;
        }
        let mut existentials: Vec<VarId> = slot_map.values().copied().collect();
        existentials.sort_unstable();
        for a in &atoms {
            for v in a.vars() {
                let class = v.0 as usize;
                if class < n_classes && !exported.contains(&class) && !existentials.contains(&v) {
                    existentials.push(v);
                }
            }
        }
        max_extra = max_extra.max(next - n_classes);
        disjuncts.push(Conjunct { existentials, atoms });
    }

    let var_names: Vec<String> = (0..n_classes)
        .map(|i| format!("x{i}"))
        .chain((0..max_extra).map(|i| format!("y{i}")))
        .collect();
    Dependency::new(
        var_names,
        Premise { atoms: premise_atoms, constant_vars: vec![], inequalities },
        disjuncts,
    )
}

/// Rename the variables of an atom under a (total on its vars) map.
fn rename_atom(a: &Atom, map: &FxHashMap<VarId, VarId>) -> Atom {
    Atom {
        rel: a.rel,
        args: a
            .args
            .iter()
            .map(|t| match *t {
                Term::Var(v) => Term::Var(map[&v]),
                c => c,
            })
            .collect(),
    }
}

fn render_term(vocab: &Vocabulary, t: &Term) -> String {
    match *t {
        Term::Var(v) => format!("v{}", v.0),
        Term::Const(c) => format!("'{}'", vocab.constant_name(c)),
    }
}

fn render_atom(vocab: &Vocabulary, a: &Atom) -> String {
    let args: Vec<String> = a.args.iter().map(|t| render_term(vocab, t)).collect();
    format!("{}({})", vocab.relation_name(a.rel), args.join(","))
}

/// Canonical rendering of a premise under a given renaming of its
/// variables: sorted atom strings plus sorted inequality strings.
fn premise_key(vocab: &Vocabulary, premise: &Premise, map: &FxHashMap<VarId, VarId>) -> String {
    let mut atoms: Vec<String> =
        premise.atoms.iter().map(|a| render_atom(vocab, &rename_atom(a, map))).collect();
    atoms.sort();
    let mut ineqs: Vec<String> = premise
        .inequalities
        .iter()
        .map(|&(a, b)| {
            let mut pair = [map[&a].0, map[&b].0];
            pair.sort_unstable();
            format!("v{}!=v{}", pair[0], pair[1])
        })
        .collect();
    ineqs.sort();
    format!("{} % {}", atoms.join(" & "), ineqs.join(" & "))
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    fn rec(k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == current.len() {
            out.push(current.clone());
            return;
        }
        for i in k..current.len() {
            current.swap(k, i);
            rec(k + 1, current, out);
            current.swap(k, i);
        }
    }
    rec(0, &mut current, &mut out);
    out
}

/// A rule in canonical form: premise variables renumbered `0..k` by the
/// lexicographically minimal rendering, existentials per disjunct
/// renumbered from `k`, disjuncts deduplicated and sorted.
struct CanonicalRule {
    key: String,
    premise: Premise,
    premise_vars: usize,
    /// (canonical rendering, conjunct) pairs, sorted by rendering.
    disjuncts: Vec<(String, Conjunct)>,
    max_existentials: usize,
}

fn canonicalize_rule(vocab: &Vocabulary, dep: &Dependency) -> CanonicalRule {
    let premise_vars = dep.premise.atom_vars();
    let k = premise_vars.len();
    // Pick the premise-variable order minimizing the rendering. Exported
    // footprints are small; cap the factorial search and fall back to
    // the given order beyond it (merging then degrades gracefully to
    // exact-match deduplication).
    let orders: Vec<Vec<usize>> = if k <= 6 { permutations(k) } else { vec![(0..k).collect()] };
    let mut best: Option<(String, FxHashMap<VarId, VarId>)> = None;
    for order in orders {
        let map: FxHashMap<VarId, VarId> = order
            .iter()
            .enumerate()
            .map(|(rank, &pos)| (premise_vars[pos], VarId(rank as u32)))
            .collect();
        let key = premise_key(vocab, &dep.premise, &map);
        if best.as_ref().is_none_or(|(b, _)| key < *b) {
            best = Some((key, map));
        }
    }
    // Invariant: even a zero-variable premise has one (empty) ordering,
    // so the loop above always runs at least once.
    #[allow(clippy::expect_used)]
    let (key, premise_map) = best.expect("at least one ordering");

    let premise = Premise {
        atoms: dep.premise.atoms.iter().map(|a| rename_atom(a, &premise_map)).collect(),
        constant_vars: Vec::new(),
        inequalities: dep
            .premise
            .inequalities
            .iter()
            .map(|&(a, b)| (premise_map[&a], premise_map[&b]))
            .collect(),
    };

    let mut disjuncts: Vec<(String, Conjunct)> = Vec::new();
    let mut max_existentials = 0usize;
    for d in &dep.disjuncts {
        // Pre-sort atoms with existentials blanked so the existential
        // numbering is insensitive to the input atom order.
        let mut atoms = d.atoms.clone();
        let blank_render = |a: &Atom| -> String {
            let tmp = Atom {
                rel: a.rel,
                args: a
                    .args
                    .iter()
                    .map(|t| match *t {
                        Term::Var(v) if !premise_map.contains_key(&v) => Term::Var(VarId(u32::MAX)),
                        Term::Var(v) => Term::Var(premise_map[&v]),
                        c => c,
                    })
                    .collect(),
            };
            render_atom(vocab, &tmp)
        };
        atoms.sort_by_key(&blank_render);
        let mut full_map = premise_map.clone();
        let mut existentials = Vec::new();
        for a in &atoms {
            for v in a.vars() {
                if let std::collections::hash_map::Entry::Vacant(slot) = full_map.entry(v) {
                    let id = VarId((k + existentials.len()) as u32);
                    slot.insert(id);
                    existentials.push(id);
                }
            }
        }
        max_existentials = max_existentials.max(existentials.len());
        let mut renamed: Vec<Atom> = atoms.iter().map(|a| rename_atom(a, &full_map)).collect();
        renamed.sort_by_key(|a| render_atom(vocab, a));
        let rendering =
            renamed.iter().map(|a| render_atom(vocab, a)).collect::<Vec<_>>().join(" & ");
        if !disjuncts.iter().any(|(r, _)| *r == rendering) {
            disjuncts.push((rendering, Conjunct { existentials, atoms: renamed }));
        }
    }
    disjuncts.sort_by(|a, b| a.0.cmp(&b.0));
    CanonicalRule { key, premise, premise_vars: k, disjuncts, max_existentials }
}

/// Merge canonicalized rules with identical premises, unioning their
/// disjunct sets.
fn merge_rules(rules: Vec<Dependency>, vocab: &Vocabulary) -> Vec<Dependency> {
    let mut order: Vec<String> = Vec::new();
    let mut merged: FxHashMap<String, CanonicalRule> = FxHashMap::default();
    for rule in &rules {
        let canon = canonicalize_rule(vocab, rule);
        match merged.get_mut(&canon.key) {
            None => {
                order.push(canon.key.clone());
                merged.insert(canon.key.clone(), canon);
            }
            Some(existing) => {
                existing.max_existentials = existing.max_existentials.max(canon.max_existentials);
                for (rendering, conjunct) in canon.disjuncts {
                    if !existing.disjuncts.iter().any(|(r, _)| *r == rendering) {
                        existing.disjuncts.push((rendering, conjunct));
                    }
                }
                existing.disjuncts.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }
    order
        .into_iter()
        .map(|key| {
            // Invariant: `order` only holds keys inserted into `merged`
            // above, and each key appears in `order` exactly once.
            #[allow(clippy::expect_used)]
            let rule = merged.remove(&key).expect("key recorded at insert");
            let mut var_names: Vec<String> =
                (0..rule.premise_vars).map(|i| format!("x{i}")).collect();
            var_names.extend((0..rule.max_existentials).map(|i| format!("y{i}")));
            Dependency::new(
                var_names,
                rule.premise,
                rule.disjuncts.into_iter().map(|(_, c)| c).collect(),
            )
        })
        .collect()
}

/// All set partitions of `{0, …, n-1}` as restricted-growth strings:
/// `partition[i]` is the class of element `i`, classes numbered by first
/// occurrence. `n = 0` yields the single empty partition.
pub fn set_partitions(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fn rec(i: usize, max_used: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if i == current.len() {
            out.push(current.clone());
            return;
        }
        for class in 0..=max_used + 1 {
            current[i] = class;
            rec(i + 1, max_used.max(class), current, out);
        }
    }
    if n == 0 {
        out.push(Vec::new());
        return out;
    }
    // First element is always class 0.
    current[0] = 0;
    rec(1, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::check_maximum_extended_recovery;
    use crate::{compose::ComposeOptions, Universe};
    use rde_deps::{parse_mapping, printer};

    fn synthesize(text: &str) -> (Vocabulary, SchemaMapping, SchemaMapping) {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, text).unwrap();
        let rec =
            maximum_extended_recovery_full(&m, &mut v, &QuasiInverseOptions::default()).unwrap();
        (v, m, rec)
    }

    #[test]
    fn set_partition_counts_are_bell_numbers() {
        assert_eq!(set_partitions(0).len(), 1);
        assert_eq!(set_partitions(1).len(), 1);
        assert_eq!(set_partitions(2).len(), 2);
        assert_eq!(set_partitions(3).len(), 5);
        assert_eq!(set_partitions(4).len(), 15);
        assert_eq!(set_partitions(5).len(), 52);
        // Restricted growth: first element in class 0, classes contiguous.
        for p in set_partitions(4) {
            assert_eq!(p[0], 0);
            let max = *p.iter().max().unwrap();
            for c in 0..=max {
                assert!(p.contains(&c));
            }
        }
    }

    /// Theorem 5.2's mapping: the algorithm reproduces the paper's Σ*
    /// exactly (up to variable names):
    ///   P′(x, y) ∧ x ≠ y → P(x, y)
    ///   P′(x, x) → T(x) ∨ P(x, x)
    #[test]
    fn theorem_5_2_sigma_star() {
        let (v, _m, rec) =
            synthesize("source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)");
        assert_eq!(rec.dependencies.len(), 2, "rules: {}", printer::mapping(&v, &rec));
        let rendered = printer::mapping(&v, &rec);
        // Distinct rule: one disjunct P(x,y) guarded by x != y.
        let distinct = rec
            .dependencies
            .iter()
            .find(|d| d.has_inequalities())
            .unwrap_or_else(|| panic!("no inequality rule in {rendered}"));
        assert_eq!(distinct.disjuncts.len(), 1);
        assert_eq!(distinct.premise.atoms.len(), 1);
        // Collapsed rule: two disjuncts T(x) | P(x,x).
        let collapsed = rec
            .dependencies
            .iter()
            .find(|d| !d.has_inequalities())
            .unwrap_or_else(|| panic!("no collapsed rule in {rendered}"));
        assert_eq!(collapsed.disjuncts.len(), 2, "rendered: {rendered}");
        // And it is a maximum extended recovery on a bounded universe.
        let mut v = v;
        let u = Universe::new(&mut v, 2, 1, 1);
        let verdict =
            check_maximum_extended_recovery(&_m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}\n{rendered}");
    }

    /// The union mapping: R(x) → P(x) ∨ Q(x).
    #[test]
    fn union_mapping_recovery() {
        let (v, m, rec) = synthesize("source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)");
        assert_eq!(rec.dependencies.len(), 1, "{}", printer::mapping(&v, &rec));
        let rule = &rec.dependencies[0];
        assert_eq!(rule.disjuncts.len(), 2);
        assert!(rule.premise.inequalities.is_empty());
        let mut v = v;
        let u = Universe::new(&mut v, 1, 1, 2);
        let verdict =
            check_maximum_extended_recovery(&m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}");
    }

    /// The copy mapping: copy-back rules (one per equality type).
    #[test]
    fn copy_mapping_recovery() {
        let (v, m, rec) = synthesize("source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)");
        let rendered = printer::mapping(&v, &rec);
        assert_eq!(rec.dependencies.len(), 2, "{rendered}");
        for rule in &rec.dependencies {
            assert_eq!(rule.disjuncts.len(), 1, "{rendered}");
        }
        let mut v = v;
        let u = Universe::small(&mut v);
        let verdict =
            check_maximum_extended_recovery(&m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}\n{rendered}");
    }

    /// Multi-atom premises: P(x) ∧ Q(x) → S(x) plus P(x) → R(x). The
    /// recovery must use the combined footprint {R(x), S(x)} to justify
    /// re-asserting both P and Q.
    #[test]
    fn multi_atom_premise_interaction() {
        let (v, m, rec) =
            synthesize("source: P/1, Q/1\ntarget: R/1, S/1\nP(x) -> R(x)\nP(x) & Q(x) -> S(x)");
        let rendered = printer::mapping(&v, &rec);
        let mut v = v;
        let u = Universe::new(&mut v, 1, 1, 2);
        let verdict =
            check_maximum_extended_recovery(&m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}\n{rendered}");
    }

    /// Self-join premises exercise existentials in disjuncts:
    /// E(x,y) ∧ E(y,z) → T(x,z) makes y existential in the reverse rule.
    #[test]
    fn projected_join_variable_becomes_existential() {
        let (v, _m, rec) = synthesize("source: E/2\ntarget: T/2\nE(x, y) & E(y, z) -> T(x, z)");
        let rendered = printer::mapping(&v, &rec);
        let has_existential =
            rec.dependencies.iter().any(|d| d.disjuncts.iter().any(|c| !c.existentials.is_empty()));
        assert!(has_existential, "expected an existential disjunct in {rendered}");
    }

    /// The projection `P(x,y) → Q(x)`: both equality types export the
    /// same footprint `{Q(x)}`, so their rules must be MERGED into one
    /// disjunctive rule `Q(x) → P(x,x) ∨ ∃y P(x,y)` — two separate
    /// rules would conjoin and force `P(x,x)` into every branch.
    #[test]
    fn projection_footprints_are_merged() {
        let (v, m, rec) = synthesize("source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)");
        let rendered = printer::mapping(&v, &rec);
        assert_eq!(rec.dependencies.len(), 1, "{rendered}");
        assert_eq!(rec.dependencies[0].disjuncts.len(), 2, "{rendered}");
        let mut v = v;
        let u = Universe::new(&mut v, 2, 1, 2);
        let verdict =
            check_maximum_extended_recovery(&m, &rec, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}\n{rendered}");
        // In particular it IS an extended recovery at I = {P(a, b)}.
        let i = rde_model::parse::parse_instance(&mut v, "P(a, b)").unwrap();
        assert!(
            crate::recovery::recovers(&m, &rec, &i, &mut v, &ComposeOptions::default()).unwrap()
        );
    }

    #[test]
    fn non_full_mappings_are_rejected() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/1\ntarget: Q/2\nP(x) -> exists y . Q(x, y)").unwrap();
        let err = maximum_extended_recovery_full(&m, &mut v, &QuasiInverseOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedMapping { .. }));
    }

    /// The output language check for Theorem 5.1: disjunctive tgds with
    /// inequalities (no Constant guards).
    #[test]
    fn output_language_is_disjunctive_tgds_with_inequalities() {
        let (_, _, rec) =
            synthesize("source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)");
        assert!(!rec.uses_constant_guards());
        for d in &rec.dependencies {
            assert!(!d.disjuncts.is_empty());
        }
    }
}
