//! Extended recoveries and maximum extended recoveries (Section 4).

use rde_deps::SchemaMapping;
use rde_hom::{Exhausted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

use crate::compose::{in_e_composition, ComposeOptions};
use crate::{CoreError, Universe};

/// Is `(I, I) ∈ e(M) ∘ e(M′)` — the extended-recovery condition at one
/// source instance (Definition 4.3)?
pub fn recovers(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<bool, CoreError> {
    in_e_composition(mapping, reverse, source, source, vocab, options)
}

/// Is `M′` an extended recovery of `M` over a family of sources?
/// Returns the first source with `(I, I) ∉ e(M) ∘ e(M′)` — a genuine
/// refutation; `None` is bounded evidence.
pub fn find_extended_recovery_counterexample<'a>(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    sources: impl IntoIterator<Item = &'a Instance>,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<Option<Instance>, CoreError> {
    for i in sources {
        if !recovers(mapping, reverse, i, vocab, options)? {
            return Ok(Some(i.clone()));
        }
    }
    Ok(None)
}

/// Verdict of the bounded maximum-extended-recovery check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaxRecoveryVerdict {
    /// `e(M) ∘ e(M′) = →_M` on every pair of the universe (bounded
    /// evidence for Theorem 4.13's criterion).
    HoldsWithinBound,
    /// A pair in `e(M) ∘ e(M′)` but not in `→_M`: `M′` recovers too
    /// little structure somewhere — it is not even an extended recovery,
    /// or the composition leaks (genuine refutation).
    NotContainedInArrowM {
        /// Witnessing pair.
        i1: Instance,
        /// Second component.
        i2: Instance,
    },
    /// A pair in `→_M` missing from `e(M) ∘ e(M′)`: `M′` is not
    /// maximum (genuine refutation, given Theorem 4.13).
    MissesArrowMPair {
        /// Witnessing pair.
        i1: Instance,
        /// Second component.
        i2: Instance,
    },
    /// A budgeted run left some `→_M` queries unsettled and found no
    /// definite refutation; retry with a larger budget.
    Unknown {
        /// The first budget that ran out.
        budget: Exhausted,
    },
}

impl MaxRecoveryVerdict {
    /// Did the check pass?
    pub fn holds(&self) -> bool {
        matches!(self, MaxRecoveryVerdict::HoldsWithinBound)
    }
}

/// Bounded check of Theorem 4.13: `M′` is a maximum extended recovery
/// of `M` iff `e(M) ∘ e(M′) = →_M`. Verifies the equality on every
/// pair of source instances in the universe.
pub fn check_maximum_extended_recovery(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<MaxRecoveryVerdict, CoreError> {
    let mut stats = HomStats::default();
    check_maximum_extended_recovery_budgeted(
        mapping,
        reverse,
        universe,
        vocab,
        options,
        &HomConfig::default(),
        &mut stats,
    )
}

/// Budgeted form of [`check_maximum_extended_recovery`]: the `→_M` side
/// of each pair runs under `config` (the composition side stays exact);
/// unsettled pairs degrade the verdict to
/// [`MaxRecoveryVerdict::Unknown`] unless a definite refutation is
/// found first. Arrow-cache search work accumulates into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn check_maximum_extended_recovery_budgeted(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<MaxRecoveryVerdict, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let cache = crate::arrow::ArrowMCache::new_budgeted(mapping, &family, vocab, config)?;
    let mut unsettled: Option<Exhausted> = None;
    let mut refutation: Option<MaxRecoveryVerdict> = None;
    'scan: for (a, i1) in family.iter().enumerate() {
        for (b, i2) in family.iter().enumerate() {
            let in_arrow = match cache.arrow_budgeted(a, b, config) {
                Verdict::Holds => true,
                Verdict::Fails => false,
                Verdict::Unknown { budget } => {
                    unsettled = unsettled.or(Some(budget));
                    continue;
                }
            };
            let in_comp = in_e_composition(mapping, reverse, i1, i2, vocab, options)?;
            match (in_comp, in_arrow) {
                (true, false) => {
                    refutation = Some(MaxRecoveryVerdict::NotContainedInArrowM {
                        i1: i1.clone(),
                        i2: i2.clone(),
                    });
                    break 'scan;
                }
                (false, true) => {
                    refutation = Some(MaxRecoveryVerdict::MissesArrowMPair {
                        i1: i1.clone(),
                        i2: i2.clone(),
                    });
                    break 'scan;
                }
                _ => {}
            }
        }
    }
    *stats += cache.stats().hom;
    Ok(match (refutation, unsettled) {
        (Some(r), _) => r,
        (None, Some(budget)) => MaxRecoveryVerdict::Unknown { budget },
        (None, None) => MaxRecoveryVerdict::HoldsWithinBound,
    })
}

/// Proposition 4.16 (bounded form): for an extended-invertible
/// tgd-specified `M`, being a maximum extended recovery and being an
/// extended inverse coincide; concretely, check that
/// `e(M) ∘ e(M′) = e(Id) = →` on the universe.
pub fn check_extended_inverse_semantically(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<MaxRecoveryVerdict, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    for i1 in &family {
        for i2 in &family {
            let in_hom = rde_hom::exists_hom(i1, i2);
            let in_comp = in_e_composition(mapping, reverse, i1, i2, vocab, options)?;
            match (in_comp, in_hom) {
                (true, false) => {
                    return Ok(MaxRecoveryVerdict::NotContainedInArrowM {
                        i1: i1.clone(),
                        i2: i2.clone(),
                    })
                }
                (false, true) => {
                    return Ok(MaxRecoveryVerdict::MissesArrowMPair {
                        i1: i1.clone(),
                        i2: i2.clone(),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(MaxRecoveryVerdict::HoldsWithinBound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// Example 1.1's natural reverse mapping is a maximum extended
    /// recovery of the decomposition mapping (bounded check of the
    /// Theorem 4.13 criterion on a small universe).
    #[test]
    fn example_1_1_reverse_is_maximum_extended_recovery() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)")
            .unwrap();
        let rev = parse_mapping(
            &mut v,
            "source: Q/2, R/2\ntarget: P/3\nQ(x,y) -> exists z . P(x,y,z)\nR(y,z) -> exists x . P(x,y,z)",
        )
        .unwrap();
        let u = Universe::new(&mut v, 2, 1, 1);
        let verdict =
            check_maximum_extended_recovery(&m, &rev, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}");
    }

    /// The union mapping with its disjunctive reverse R(x) → P(x) ∨ Q(x)
    /// is a maximum extended recovery; the *conjunctive* reverse
    /// R(x) → P(x) ∧ Q(x) is not even an extended recovery.
    #[test]
    fn union_mapping_recoveries() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let disj =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) | Q(x)").unwrap();
        let conj =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) & Q(x)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 2);
        let opts = ComposeOptions::default();
        let verdict = check_maximum_extended_recovery(&m, &disj, &u, &mut v, &opts).unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}");
        // The conjunctive reverse asserts facts that may be absent:
        // (I, I) ∉ e(M) ∘ e(conj) for I = {P(c)} (since Q(c) ∉ I and the
        // leaf {P(c), Q(c)} has no hom into I on constants).
        let family = u.collect_instances(&v, &m.source).unwrap();
        let cex =
            find_extended_recovery_counterexample(&m, &conj, family.iter(), &mut v, &opts).unwrap();
        assert!(cex.is_some());
    }

    /// Extended recovery vs maximum: the trivial "recover nothing"
    /// reverse (empty dependency set) IS an extended recovery but not a
    /// maximum one.
    #[test]
    fn empty_reverse_is_a_non_maximum_recovery() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: R/1\nP(x) -> R(x)").unwrap();
        let empty_rev = SchemaMapping::new(m.target.clone(), m.source.clone(), vec![]);
        let u = Universe::new(&mut v, 1, 1, 1);
        let family = u.collect_instances(&v, &m.source).unwrap();
        let opts = ComposeOptions::default();
        // (I, I) ∈ e(M) ∘ e(M′) always: the empty leaf maps into everything.
        let cex =
            find_extended_recovery_counterexample(&m, &empty_rev, family.iter(), &mut v, &opts)
                .unwrap();
        assert_eq!(cex, None);
        // ...but e(M) ∘ e(M′) is ALL pairs, strictly above →_M:
        let verdict = check_maximum_extended_recovery(&m, &empty_rev, &u, &mut v, &opts).unwrap();
        assert!(matches!(verdict, MaxRecoveryVerdict::NotContainedInArrowM { .. }));
    }

    /// Example 3.18 as a semantic extended-inverse check:
    /// e(M) ∘ e(M′) = → on the universe.
    #[test]
    fn example_3_18_semantic_extended_inverse() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let minv =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 1);
        let verdict =
            check_extended_inverse_semantically(&m, &minv, &u, &mut v, &ComposeOptions::default())
                .unwrap();
        assert!(verdict.holds(), "verdict: {verdict:?}");
    }

    /// A reverse mapping that over-recovers (asserts facts not implied)
    /// fails containment in →_M.
    #[test]
    fn over_eager_reverse_fails() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: R/1\nP(x) -> R(x)").unwrap();
        // Reverse invents an unrelated constant fact.
        let rev = parse_mapping(&mut v, "source: R/1\ntarget: P/1\nR(x) -> P('ghost')").unwrap();
        let i1 = parse_instance(&mut v, "P(a)").unwrap();
        let ghost = parse_instance(&mut v, "P(ghost)").unwrap();
        let opts = ComposeOptions::default();
        // (I1, ghost) ∈ e(M) ∘ e(rev): leaf {P(ghost)} → ghost. But
        // chase(I1) = {R(a)} does not map into chase(ghost) = {R(ghost)}.
        assert!(in_e_composition(&m, &rev, &i1, &ghost, &mut v, &opts).unwrap());
        assert!(!crate::arrow::arrow_m(&m, &i1, &ghost, &mut v).unwrap());
        // And (I1, I1) fails: the leaf insists on P(ghost) → I1? P(ghost)
        // is a constant fact, no hom into {P(a)}: not a recovery either.
        assert!(!recovers(&m, &rev, &i1, &mut v, &opts).unwrap());
    }
}
