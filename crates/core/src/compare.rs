//! Comparing schema mappings by information loss (Section 6.3).

use rde_chase::{chase_mapping, disjunctive_chase, ChaseOptions, DisjunctiveChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::{exists_hom, Exhausted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

use crate::arrow::ArrowMCache;
use crate::{CoreError, Universe};

/// Result of comparing `→_{M₁}` and `→_{M₂}` over a bounded universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Comparison {
    /// `→_{M₁} = →_{M₂}` on the universe.
    EquallyLossy,
    /// `→_{M₁} ⊊ →_{M₂}` on the universe (`M₁` strictly less lossy).
    StrictlyLessLossy,
    /// `→_{M₂} ⊊ →_{M₁}` on the universe (`M₂` strictly less lossy).
    StrictlyMoreLossy,
    /// Neither contains the other on the universe.
    Incomparable {
        /// A pair in `→_{M₁} \ →_{M₂}`.
        only_in_m1: (Instance, Instance),
        /// A pair in `→_{M₂} \ →_{M₁}`.
        only_in_m2: (Instance, Instance),
    },
    /// A budgeted run could not settle enough pairs to classify the
    /// mappings; retry with a larger budget.
    Unknown {
        /// The first budget that ran out.
        budget: Exhausted,
    },
}

/// Compare two mappings over the **same source schema** (Definition 6.6)
/// by enumerating `→_{M₁}` vs `→_{M₂}` on the universe. A strict or
/// incomparable verdict is witnessed by genuine pairs; equality and
/// containment are bounded evidence.
pub fn compare_lossiness(
    m1: &SchemaMapping,
    m2: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<Comparison, CoreError> {
    let mut stats = HomStats::default();
    compare_lossiness_budgeted(m1, m2, universe, vocab, &HomConfig::default(), &mut stats)
}

/// Budgeted form of [`compare_lossiness`]: arrow queries run under
/// `config`, their work accumulates into `stats`. Verdicts that assert
/// the *absence* of pairs (equality, strict containment) require every
/// pair settled; if some were cut and no incomparability witness pair
/// was completed, the honest answer is [`Comparison::Unknown`].
pub fn compare_lossiness_budgeted(
    m1: &SchemaMapping,
    m2: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<Comparison, CoreError> {
    if m1.source != m2.source {
        return Err(CoreError::UnsupportedMapping {
            required: "two mappings over the same source schema",
        });
    }
    let family = universe
        .collect_instances(vocab, &m1.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let c1 = ArrowMCache::new_budgeted(m1, &family, vocab, config)?;
    let c2 = ArrowMCache::new_budgeted(m2, &family, vocab, config)?;
    let mut only1: Option<(Instance, Instance)> = None;
    let mut only2: Option<(Instance, Instance)> = None;
    let mut unsettled: Option<Exhausted> = None;
    for a in 0..family.len() {
        for b in 0..family.len() {
            let v1 = c1.arrow_budgeted(a, b, config);
            let v2 = c2.arrow_budgeted(a, b, config);
            if let (Verdict::Unknown { budget }, _) | (_, Verdict::Unknown { budget }) = (v1, v2) {
                unsettled = unsettled.or(Some(budget));
                continue;
            }
            match (v1.holds(), v2.holds()) {
                (true, false) if only1.is_none() => {
                    only1 = Some((family[a].clone(), family[b].clone()));
                }
                (false, true) if only2.is_none() => {
                    only2 = Some((family[a].clone(), family[b].clone()));
                }
                _ => {}
            }
        }
    }
    *stats += c1.stats().hom;
    *stats += c2.stats().hom;
    Ok(match (only1, only2, unsettled) {
        // Witnessed on both sides: definite even with unsettled pairs.
        (Some(p1), Some(p2), _) => Comparison::Incomparable { only_in_m1: p1, only_in_m2: p2 },
        (_, _, Some(budget)) => Comparison::Unknown { budget },
        (None, None, None) => Comparison::EquallyLossy,
        (None, Some(_), None) => Comparison::StrictlyLessLossy,
        (Some(_), None, None) => Comparison::StrictlyMoreLossy,
    })
}

/// The procedural criterion of Theorem 6.8: given maximum extended
/// recoveries `M₁′`, `M₂′` specified by disjunctive tgds,
/// `→_{M₁} ⊆ →_{M₂}` iff for every source `I` and every leaf `V₁` of
/// `chase_{M₁′}(chase_{M₁}(I))` there is a leaf `V₂` of
/// `chase_{M₂′}(chase_{M₂}(I))` with `V₂ → V₁`.
///
/// Checks the right-hand side over a family of sources; returns the
/// first `(I, V₁)` with no covering `V₂`.
pub fn check_less_lossy_via_recoveries<'a>(
    m1: &SchemaMapping,
    rec1: &SchemaMapping,
    m2: &SchemaMapping,
    rec2: &SchemaMapping,
    sources: impl IntoIterator<Item = &'a Instance>,
    vocab: &mut Vocabulary,
) -> Result<Option<(Instance, Instance)>, CoreError> {
    let copts = ChaseOptions::default();
    let dopts = DisjunctiveChaseOptions::default();
    for i in sources {
        let u1 = chase_mapping(i, m1, vocab, &copts)?;
        let k1 = disjunctive_chase(&u1, &rec1.dependencies, vocab, &dopts)?;
        let u2 = chase_mapping(i, m2, vocab, &copts)?;
        let k2 = disjunctive_chase(&u2, &rec2.dependencies, vocab, &dopts)?;
        let leaves2: Vec<Instance> = k2.leaves.iter().map(|l| l.restrict_to(&m2.source)).collect();
        for v1 in &k1.leaves {
            let v1s = v1.restrict_to(&m1.source);
            if !leaves2.iter().any(|v2| exists_hom(v2, &v1s)) {
                return Ok(Some((i.clone(), v1s)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;

    /// Example 6.7: the copy mapping M₁ is strictly less lossy than the
    /// componentwise copy M₂.
    #[test]
    fn example_6_7_copy_vs_componentwise() {
        let mut v = Vocabulary::new();
        let m1 = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let m2 = parse_mapping(
            &mut v,
            "source: P/2\ntarget: Pp/2\nP(x,y) -> exists z . Pp(x,z)\nP(x,y) -> exists u . Pp(u,y)",
        )
        .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let cmp = compare_lossiness(&m1, &m2, &u, &mut v).unwrap();
        assert_eq!(cmp, Comparison::StrictlyLessLossy);
        // And symmetrically.
        let cmp = compare_lossiness(&m2, &m1, &u, &mut v).unwrap();
        assert_eq!(cmp, Comparison::StrictlyMoreLossy);
    }

    #[test]
    fn a_mapping_is_as_lossy_as_itself() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 2, 1, 1);
        assert_eq!(compare_lossiness(&m, &m, &u, &mut v).unwrap(), Comparison::EquallyLossy);
    }

    #[test]
    fn incomparable_projections() {
        let mut v = Vocabulary::new();
        // Project to the first vs to the second column: neither refines
        // the other.
        let m1 = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let m2 = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(y)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 1);
        let cmp = compare_lossiness(&m1, &m2, &u, &mut v).unwrap();
        assert!(matches!(cmp, Comparison::Incomparable { .. }), "got {cmp:?}");
    }

    #[test]
    fn different_source_schemas_are_rejected() {
        let mut v = Vocabulary::new();
        let m1 = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let m2 = parse_mapping(&mut v, "source: R/1\ntarget: Q/1\nR(x) -> Q(x)").unwrap();
        let u = Universe::small(&mut v);
        assert!(compare_lossiness(&m1, &m2, &u, &mut v).is_err());
    }

    /// Theorem 6.8 in action (the paper's closing example): with the
    /// shared recovery P′(x,y) → P(x,y), every leaf of M₂'s round trip
    /// is covered by M₁'s — M₁ is less lossy than M₂... note the paper
    /// states the criterion with the roles as here: for →_{M₁} ⊆ →_{M₂},
    /// every V₁-leaf is covered by a V₂-leaf.
    #[test]
    fn theorem_6_8_criterion_on_example_6_7() {
        let mut v = Vocabulary::new();
        let m1 = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let m2 = parse_mapping(
            &mut v,
            "source: P/2\ntarget: Pp/2\nP(x,y) -> exists z . Pp(x,z)\nP(x,y) -> exists u . Pp(u,y)",
        )
        .unwrap();
        let rec = parse_mapping(&mut v, "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)").unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let family = u.collect_instances(&v, &m1.source).unwrap();
        // →_{M₁} ⊆ →_{M₂}: criterion holds.
        let cex =
            check_less_lossy_via_recoveries(&m1, &rec, &m2, &rec, family.iter(), &mut v).unwrap();
        assert_eq!(cex, None);
        // →_{M₂} ⊆ →_{M₁} fails: some leaf of M₂'s roundtrip is not
        // covered by M₁'s.
        let cex =
            check_less_lossy_via_recoveries(&m2, &rec, &m1, &rec, family.iter(), &mut v).unwrap();
        assert!(cex.is_some());
    }
}
