//! Universal-faithful reverse mappings (Definition 6.1, Theorem 6.2).

use rde_chase::{chase_mapping, disjunctive_chase, ChaseOptions, DisjunctiveChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::exists_hom;
use rde_model::{Instance, Vocabulary};

use crate::arrow::arrow_m;
use crate::{CoreError, Universe};

/// The three conditions of Definition 6.1 evaluated at one source
/// instance `I`, over the leaf set
/// `{V₁, …, Vₖ} = chase_{M′}(chase_M(I))` (restricted to the source
/// schema).
#[derive(Debug, Clone)]
pub struct FaithfulReport {
    /// The leaves, restricted to the source schema.
    pub leaves: Vec<Instance>,
    /// Condition (1): every leaf satisfies `I →_M Vₗ`.
    pub every_leaf_exports_at_least: bool,
    /// Condition (2): some leaf satisfies `Vᵢ →_M I`.
    pub some_leaf_exports_at_most: bool,
    /// Condition (3): for every `I′` in the probe family with
    /// `I →_M I′`, some leaf maps homomorphically into `I′`.
    pub universality_within_bound: bool,
    /// First `I′` violating condition (3), if any.
    pub universality_counterexample: Option<Instance>,
}

impl FaithfulReport {
    /// All three conditions hold (condition 3 within the probe bound)?
    pub fn holds(&self) -> bool {
        self.every_leaf_exports_at_least
            && self.some_leaf_exports_at_most
            && self.universality_within_bound
    }
}

/// Evaluate Definition 6.1 at one source instance. `M` must be
/// tgd-specified, `M′` disjunctive-tgd-specified (the theorem's
/// hypotheses); condition (3) quantifies `I′` over `probe_family`.
pub fn faithfulness_at(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    probe_family: &[Instance],
    vocab: &mut Vocabulary,
) -> Result<FaithfulReport, CoreError> {
    let u = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    let result =
        disjunctive_chase(&u, &reverse.dependencies, vocab, &DisjunctiveChaseOptions::default())?;
    let leaves: Vec<Instance> =
        result.leaves.iter().map(|l| l.restrict_to(&mapping.source)).collect();

    let mut every_leaf_exports_at_least = true;
    for leaf in &leaves {
        if !arrow_m(mapping, source, leaf, vocab)? {
            every_leaf_exports_at_least = false;
            break;
        }
    }
    let mut some_leaf_exports_at_most = false;
    for leaf in &leaves {
        if arrow_m(mapping, leaf, source, vocab)? {
            some_leaf_exports_at_most = true;
            break;
        }
    }
    let mut universality_counterexample = None;
    for i_prime in probe_family {
        if arrow_m(mapping, source, i_prime, vocab)?
            && !leaves.iter().any(|v| exists_hom(v, i_prime))
        {
            universality_counterexample = Some(i_prime.clone());
            break;
        }
    }
    Ok(FaithfulReport {
        leaves,
        every_leaf_exports_at_least,
        some_leaf_exports_at_most,
        universality_within_bound: universality_counterexample.is_none(),
        universality_counterexample,
    })
}

/// Like [`faithfulness_at`], but with the leaf set closed under
/// homomorphic collapses of `chase_M(I)` before chasing:
/// `⋃_h chase_{M′}(h(chase_M(I)))`.
///
/// This is the right procedural reading for recoveries whose premises
/// carry **inequalities** (the output language of Theorem 5.1):
/// inequality triggers are not preserved under null collapses, so the
/// raw leaf set of Definition 6.1 — stated for inequality-free
/// disjunctive tgds — misses recovered worlds in which distinct nulls
/// of the exchanged instance denote the same value. Closing under
/// collapses restores exactly the worlds that `e(M) ∘ e(M′)` sees (see
/// `crate::compose`). For inequality-free recoveries the identity
/// collapse subsumes the rest and this agrees with [`faithfulness_at`]
/// on all three conditions.
pub fn faithfulness_at_with_collapses(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    source: &Instance,
    probe_family: &[Instance],
    vocab: &mut Vocabulary,
) -> Result<FaithfulReport, CoreError> {
    let u = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    let collapses = crate::compose::enumerate_collapses(
        &u,
        reverse,
        &Instance::new(),
        &rde_model::fx::FxHashSet::default(),
        vocab,
        crate::compose::ComposeOptions::default().max_collapses,
    )?;
    let mut leaves: Vec<Instance> = Vec::new();
    for h in collapses {
        let j = h.apply_instance(&u);
        let result = disjunctive_chase(
            &j,
            &reverse.dependencies,
            vocab,
            &DisjunctiveChaseOptions::default(),
        )?;
        for leaf in result.leaves {
            let restricted = leaf.restrict_to(&mapping.source);
            if !leaves.contains(&restricted) {
                leaves.push(restricted);
            }
        }
    }

    let mut every_leaf_exports_at_least = true;
    for leaf in &leaves {
        if !arrow_m(mapping, source, leaf, vocab)? {
            every_leaf_exports_at_least = false;
            break;
        }
    }
    let mut some_leaf_exports_at_most = false;
    for leaf in &leaves {
        if arrow_m(mapping, leaf, source, vocab)? {
            some_leaf_exports_at_most = true;
            break;
        }
    }
    let mut universality_counterexample = None;
    for i_prime in probe_family {
        if arrow_m(mapping, source, i_prime, vocab)?
            && !leaves.iter().any(|v| exists_hom(v, i_prime))
        {
            universality_counterexample = Some(i_prime.clone());
            break;
        }
    }
    Ok(FaithfulReport {
        leaves,
        every_leaf_exports_at_least,
        some_leaf_exports_at_most,
        universality_within_bound: universality_counterexample.is_none(),
        universality_counterexample,
    })
}

/// Check universal-faithfulness of `M′` for `M` over every source of a
/// universe (conditions 1–2 are exact per source; condition 3 is probed
/// against the same universe). Returns the first failing source with
/// its report.
pub fn check_universal_faithful(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<Option<(Instance, FaithfulReport)>, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    for i in &family {
        let report = faithfulness_at(mapping, reverse, i, &family, vocab)?;
        if !report.holds() {
            return Ok(Some((i.clone(), report)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// The union mapping's disjunctive reverse is universal-faithful
    /// (Theorem 6.2: it is a maximum extended recovery).
    #[test]
    fn union_disjunctive_reverse_is_universal_faithful() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let rev =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) | Q(x)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 2);
        let failure = check_universal_faithful(&m, &rev, &u, &mut v).unwrap();
        assert!(failure.is_none(), "failure: {failure:?}");
    }

    /// Dropping the Q-disjunct breaks universality: the branch family
    /// can no longer reach sources that used Q.
    #[test]
    fn non_disjunctive_reverse_of_union_fails_universality() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let rev = parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x)").unwrap();
        let u = Universe::new(&mut v, 1, 0, 1);
        let failure = check_universal_faithful(&m, &rev, &u, &mut v).unwrap();
        let (_source, report) = failure.expect("must fail");
        // The leaves only ever assert P-facts; a Q-source I′ exporting
        // the same R-fact is reachable by →_M but covered by no leaf.
        assert!(report.every_leaf_exports_at_least);
        assert!(report.some_leaf_exports_at_most);
        assert!(!report.universality_within_bound);
        let q = v.find_relation("Q").unwrap();
        let cex = report.universality_counterexample.expect("condition 3 witness");
        assert!(cex.relation(q).is_some(), "the unreachable probe uses Q: {cex:?}");
    }

    /// Example 3.18's tgd inverse is universal-faithful with a single
    /// leaf per instance (no disjunction ⇒ `k = 1`).
    #[test]
    fn chase_inverse_is_universal_faithful_with_one_leaf() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let rev =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        let i = parse_instance(&mut v, "P(a,b)").unwrap();
        let probe = vec![i.clone(), parse_instance(&mut v, "P(a,b)\nP(b,a)").unwrap()];
        let report = faithfulness_at(&m, &rev, &i, &probe, &mut v).unwrap();
        assert!(report.holds());
        assert_eq!(report.leaves.len(), 1);
    }

    /// Theorem 5.2's inequality recovery fails the raw Definition 6.1
    /// conditions (it is outside the definition's language), but passes
    /// the collapse-closed variant — matching its verified status as a
    /// maximum extended recovery.
    #[test]
    fn inequality_recovery_passes_collapse_closed_faithfulness() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)",
        )
        .unwrap();
        let rec = crate::quasi_inverse::maximum_extended_recovery_full(
            &m,
            &mut v,
            &crate::quasi_inverse::QuasiInverseOptions::default(),
        )
        .unwrap();
        let universe = crate::Universe::new(&mut v, 1, 1, 2);
        let family = universe.collect_instances(&v, &m.source).unwrap();
        let mut raw_fails = false;
        for i in &family {
            let raw = faithfulness_at(&m, &rec, i, &family, &mut v).unwrap();
            if !raw.holds() {
                raw_fails = true;
            }
            let closed = faithfulness_at_with_collapses(&m, &rec, i, &family, &mut v).unwrap();
            assert!(
                closed.holds(),
                "collapse-closed faithfulness must hold at {i:?}: (1)={} (2)={} (3)={}",
                closed.every_leaf_exports_at_least,
                closed.some_leaf_exports_at_most,
                closed.universality_within_bound
            );
        }
        assert!(raw_fails, "the raw conditions must fail somewhere (the Def 6.1 boundary)");
    }

    /// For inequality-free recoveries the collapse-closed variant agrees
    /// with the raw conditions.
    #[test]
    fn collapse_closed_agrees_on_disjunctive_tgds() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let rev =
            parse_mapping(&mut v, "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) | Q(x)").unwrap();
        let universe = crate::Universe::new(&mut v, 1, 1, 1);
        let family = universe.collect_instances(&v, &m.source).unwrap();
        for i in &family {
            let raw = faithfulness_at(&m, &rev, i, &family, &mut v).unwrap();
            let closed = faithfulness_at_with_collapses(&m, &rev, i, &family, &mut v).unwrap();
            assert_eq!(raw.holds(), closed.holds(), "at {i:?}");
        }
    }

    /// A reverse mapping violating condition (1): it recovers less than
    /// the original exports.
    #[test]
    fn lossy_reverse_fails_condition_one() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> Q(x,y)").unwrap();
        // Recover only the first column (second existential): the leaf
        // exports Q(x, Z) which does not cover Q(a, b).
        let rev =
            parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,y) -> exists u . P(x,u)").unwrap();
        let i = parse_instance(&mut v, "P(a,b)").unwrap();
        let report = faithfulness_at(&m, &rev, &i, std::slice::from_ref(&i), &mut v).unwrap();
        assert!(!report.every_leaf_exports_at_least);
        assert!(!report.holds());
    }
}
