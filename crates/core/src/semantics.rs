//! The semantic view of schema mappings: satisfaction, solutions,
//! universal solutions (Section 2).

use rde_chase::matching::{
    atoms_satisfiable, atoms_satisfiable_budgeted, for_each_premise_match,
    for_each_premise_match_budgeted, VarAssignment,
};
use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::{Dependency, SchemaMapping};
use rde_hom::{Exhausted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

use crate::CoreError;

/// Does the pair `(source, target)` satisfy a single dependency?
///
/// For every premise match in `source` whose guards hold, some disjunct
/// must be witnessed in `target` (extending the premise assignment on
/// the existentials).
pub fn satisfies_dependency(source: &Instance, target: &Instance, dep: &Dependency) -> bool {
    let universal = dep.universal_vars();
    let mut ok = true;
    for_each_premise_match(&dep.premise, source, |assignment| {
        let seed: VarAssignment = universal.iter().map(|&v| (v, assignment[&v])).collect();
        let witnessed = dep.disjuncts.iter().any(|d| atoms_satisfiable(&d.atoms, target, &seed));
        if !witnessed {
            ok = false;
            return false;
        }
        true
    });
    ok
}

/// Budgeted form of [`satisfies_dependency`]: premise enumeration and
/// disjunct-witness searches obey `config`. A single trigger whose
/// disjuncts all *definitely* fail refutes the dependency outright even
/// under a budget; cut searches that leave a trigger unwitnessed (or a
/// truncated premise enumeration) degrade the verdict to
/// [`Verdict::Unknown`].
pub fn satisfies_dependency_budgeted(
    source: &Instance,
    target: &Instance,
    dep: &Dependency,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Verdict {
    let universal = dep.universal_vars();
    let mut violated = false;
    let mut unknown: Option<Exhausted> = None;
    let report = for_each_premise_match_budgeted(&dep.premise, source, config, |assignment| {
        let seed: VarAssignment = universal.iter().map(|&v| (v, assignment[&v])).collect();
        let mut trigger_unknown: Option<Exhausted> = None;
        let witnessed = dep.disjuncts.iter().any(|d| {
            match atoms_satisfiable_budgeted(&d.atoms, target, &seed, config, stats) {
                Verdict::Holds => true,
                Verdict::Fails => false,
                Verdict::Unknown { budget } => {
                    trigger_unknown.get_or_insert(budget);
                    false
                }
            }
        });
        if witnessed {
            return true;
        }
        match trigger_unknown {
            None => {
                violated = true;
                false
            }
            Some(budget) => {
                unknown.get_or_insert(budget);
                true
            }
        }
    });
    *stats += report.stats;
    if violated {
        return Verdict::Fails;
    }
    match unknown.or(report.exhausted) {
        Some(budget) => Verdict::Unknown { budget },
        None => Verdict::Holds,
    }
}

/// `(I, J) ⊨ Σ`: the pair satisfies every dependency of the mapping.
/// This is the paper's semantic view — `(I, J) ∈ M`.
pub fn satisfies(source: &Instance, target: &Instance, mapping: &SchemaMapping) -> bool {
    mapping.dependencies.iter().all(|d| satisfies_dependency(source, target, d))
}

/// Budgeted form of [`satisfies`]: Kleene conjunction over the
/// dependencies — a definite violation short-circuits to
/// [`Verdict::Fails`]; otherwise any cut search taints the conjunction
/// to [`Verdict::Unknown`].
pub fn satisfies_budgeted(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Verdict {
    let mut acc = Verdict::Holds;
    for dep in &mapping.dependencies {
        let v = satisfies_dependency_budgeted(source, target, dep, config, stats);
        if v.fails() {
            return Verdict::Fails;
        }
        acc = acc.and(v);
    }
    acc
}

/// Is `J` a solution for `I` w.r.t. `M` — i.e. `(I, J) ∈ M`
/// (Section 2)? Alias of [`satisfies`] with solution vocabulary.
pub fn is_solution(source: &Instance, target: &Instance, mapping: &SchemaMapping) -> bool {
    satisfies(source, target, mapping)
}

/// Is `J` a **universal** solution for `I` w.r.t. a tgd-specified `M`?
///
/// `chase_M(I)` is universal and homomorphically maps into every
/// solution, so `J` is universal iff it is a solution and `J →
/// chase_M(I)` (then `J → J′` for every solution `J′` by composition).
pub fn is_universal_solution(
    source: &Instance,
    target: &Instance,
    mapping: &SchemaMapping,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    if !is_solution(source, target, mapping) {
        return Ok(false);
    }
    let canonical = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    Ok(rde_hom::exists_hom(target, &canonical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    fn decomposition(v: &mut Vocabulary) -> SchemaMapping {
        parse_mapping(v, "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)").unwrap()
    }

    #[test]
    fn satisfaction_of_full_tgds() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let i = parse_instance(&mut v, "P(a,b,c)").unwrap();
        let good = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
        let bigger = parse_instance(&mut v, "Q(a,b)\nR(b,c)\nQ(z,z)").unwrap();
        let missing = parse_instance(&mut v, "Q(a,b)").unwrap();
        assert!(satisfies(&i, &good, &m));
        assert!(satisfies(&i, &bigger, &m)); // open-world: supersets are solutions
        assert!(!satisfies(&i, &missing, &m));
        assert!(satisfies(&Instance::new(), &Instance::new(), &m));
    }

    #[test]
    fn satisfaction_with_existentials() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/1\ntarget: Q/2\nP(x) -> exists y . Q(x, y)").unwrap();
        let i = parse_instance(&mut v, "P(a)").unwrap();
        assert!(satisfies(&i, &parse_instance(&mut v, "Q(a, b)").unwrap(), &m));
        assert!(satisfies(&i, &parse_instance(&mut v, "Q(a, ?n)").unwrap(), &m));
        assert!(!satisfies(&i, &parse_instance(&mut v, "Q(b, a)").unwrap(), &m));
    }

    /// Example 3.3: U = {Q(a,b), R(b,c)} is NOT a solution for
    /// V = {P(a,b,Z), P(X,b,c)} w.r.t. the decomposition mapping,
    /// because solutions for V must contain R(b, Z′) and Q(X′, b)
    /// witnesses for the null-carrying facts.
    #[test]
    fn example_3_3_not_a_solution() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let vi = parse_instance(&mut v, "P(a, b, ?z)\nP(?x, b, c)").unwrap();
        let u = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
        assert!(!satisfies(&vi, &u, &m));
        // U′ of Example 3.3 is a solution for V.
        let u_prime = parse_instance(&mut v, "Q(a,b)\nQ(?x,b)\nR(b,c)\nR(b,?z)").unwrap();
        assert!(satisfies(&vi, &u_prime, &m));
    }

    #[test]
    fn universal_solutions() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/2\ntarget: Q/2\nP(x, y) -> exists z . Q(x, z) & Q(z, y)",
        )
        .unwrap();
        let i = parse_instance(&mut v, "P(a, b)").unwrap();
        // The canonical chase result is universal.
        let canon = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
        assert!(is_universal_solution(&i, &canon, &m, &mut v).unwrap());
        // A ground completion is a solution but NOT universal.
        let ground = parse_instance(&mut v, "Q(a, c)\nQ(c, b)").unwrap();
        assert!(is_solution(&i, &ground, &m));
        assert!(!is_universal_solution(&i, &ground, &m, &mut v).unwrap());
        // A padded variant of the canonical solution is still universal.
        let mut padded = canon.clone();
        for f in parse_instance(&mut v, "Q(?extra1, ?extra2)").unwrap().facts() {
            padded.insert(f);
        }
        assert!(is_universal_solution(&i, &padded, &m, &mut v).unwrap());
    }

    #[test]
    fn budgeted_satisfaction_is_three_valued() {
        let mut v = Vocabulary::new();
        let m = decomposition(&mut v);
        let i = parse_instance(&mut v, "P(a,b,c)").unwrap();
        let good = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
        let missing = parse_instance(&mut v, "Q(a,b)").unwrap();
        // Unbounded budgets agree with the boolean check.
        let mut stats = HomStats::default();
        let cfg = HomConfig::default();
        assert!(satisfies_budgeted(&i, &good, &m, &cfg, &mut stats).holds());
        assert!(satisfies_budgeted(&i, &missing, &m, &cfg, &mut stats).fails());
        assert!(stats.nodes > 0);
        // A zero budget cannot even enumerate the premise: Unknown.
        let tight = HomConfig { node_budget: Some(0), ..HomConfig::default() };
        let mut stats = HomStats::default();
        let verdict = satisfies_budgeted(&i, &good, &m, &tight, &mut stats);
        assert!(verdict.is_unknown(), "got {verdict:?}");
    }

    #[test]
    fn guards_participate_in_satisfaction() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: R/2\ntarget: P/1\nR(x, y) & Constant(x) & x != y -> P(x)",
        )
        .unwrap();
        let i = parse_instance(&mut v, "R(a, b)\nR(?n, b)\nR(c, c)").unwrap();
        let j_ok = parse_instance(&mut v, "P(a)").unwrap();
        assert!(satisfies(&i, &j_ok, &m));
        assert!(!satisfies(&i, &Instance::new(), &m));
    }
}
