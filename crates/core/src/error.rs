//! Error type for the core crate.

use std::fmt;

use rde_chase::ChaseError;

/// Errors from the core algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A chase invocation failed (budget exhaustion, disjunction in the
    /// wrong engine, …).
    Chase(ChaseError),
    /// An algorithm restricted to a dependency fragment was given a
    /// mapping outside it (e.g. the quasi-inverse algorithm requires
    /// full tgds).
    UnsupportedMapping {
        /// What the algorithm requires.
        required: &'static str,
    },
    /// A search (e.g. minimal-disjunct enumeration) exceeded its
    /// configured limit.
    SearchLimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// The operation was cooperatively cancelled (explicit request,
    /// elapsed deadline, or Ctrl-C).
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Chase(e) => write!(f, "chase failure: {e}"),
            CoreError::UnsupportedMapping { required } => {
                write!(f, "unsupported mapping: this algorithm requires {required}")
            }
            CoreError::SearchLimitExceeded { what, limit } => {
                write!(f, "search limit exceeded: {what} > {limit}")
            }
            CoreError::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Chase(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChaseError> for CoreError {
    fn from(e: ChaseError) -> Self {
        match e {
            // Cancellation is a property of the whole operation, not of
            // the particular chase that noticed it first.
            ChaseError::Cancelled => CoreError::Cancelled,
            e => CoreError::Chase(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: CoreError = ChaseError::DisjunctionUnsupported.into();
        assert!(e.to_string().contains("chase failure"));
        let e = CoreError::UnsupportedMapping { required: "full s-t tgds" };
        assert!(e.to_string().contains("full s-t tgds"));
    }
}
