//! Information loss (Definition 4.5, Corollaries 4.14–4.15).
//!
//! For `M` specified by s-t tgds, the information loss is the relation
//! `→_M \ →`: pairs of source instances that `M` can no longer tell
//! apart (the second exports everything the first does) although no
//! homomorphism relates them. It is empty iff `M` is extended-invertible
//! (Corollary 4.15). On a bounded universe the loss is a finite set we
//! can enumerate and count — a quantitative, comparable measure.

use rde_deps::SchemaMapping;
use rde_faults::ExecContext;
use rde_hom::{exists_hom, HomConfig};
use rde_model::{Instance, Vocabulary};

use crate::arrow::ArrowMCache;
use crate::{CoreError, Universe};

/// A census of `→_M \ →` over a bounded universe.
#[derive(Debug, Clone)]
pub struct LossReport {
    /// Number of instances enumerated.
    pub universe_size: usize,
    /// Number of pairs in `→_M`.
    pub arrow_m_pairs: usize,
    /// Number of pairs in `→` (the extended identity).
    pub hom_pairs: usize,
    /// Number of lost pairs (`→_M \ →`); equals
    /// `arrow_m_pairs - hom_pairs` because `→ ⊆ →_M`.
    pub lost_pairs: usize,
    /// Up to `max_examples` witnessing lost pairs.
    pub examples: Vec<(Instance, Instance)>,
}

impl LossReport {
    /// Corollary 4.15: no information loss within the bound?
    pub fn is_lossless_within_bound(&self) -> bool {
        self.lost_pairs == 0
    }

    /// Loss as a fraction of all enumerated pairs.
    pub fn loss_fraction(&self) -> f64 {
        let total = (self.universe_size as f64) * (self.universe_size as f64);
        if total == 0.0 {
            0.0
        } else {
            self.lost_pairs as f64 / total
        }
    }
}

/// Enumerate and count the information loss of `M` over the universe.
pub fn information_loss(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    max_examples: usize,
) -> Result<LossReport, CoreError> {
    information_loss_scoped(mapping, universe, vocab, max_examples, &ExecContext::default())
}

/// Like [`information_loss`], but runs under `ctx`: the cancel token is
/// polled between census rows (aborting with [`CoreError::Cancelled`]
/// instead of finishing the `n²` sweep), and the context's fault
/// injector scopes the arrow cache's `core.arrow.poison` point.
pub fn information_loss_scoped(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    max_examples: usize,
    ctx: &ExecContext,
) -> Result<LossReport, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let cache = ArrowMCache::new_budgeted(
        mapping,
        &family,
        vocab,
        &HomConfig { ctx: ctx.clone(), ..HomConfig::default() },
    )?;
    let span = rde_obs::span("core.loss.census", &[("universe", family.len().into())]);
    let journal_on = rde_obs::journal::enabled();
    let mut arrow_m_pairs = 0usize;
    let mut hom_pairs = 0usize;
    let mut lost_pairs = 0usize;
    let mut examples = Vec::new();
    for a in 0..family.len() {
        if ctx.is_cancelled() {
            return Err(CoreError::Cancelled);
        }
        let lost_before = lost_pairs;
        for b in 0..family.len() {
            let hom = exists_hom(&family[a], &family[b]);
            if hom {
                hom_pairs += 1;
                arrow_m_pairs += 1; // → ⊆ →_M (Prop 4.11)
                debug_assert!(cache.arrow(a, b), "hom pair must be an arrow_M pair");
                continue;
            }
            if cache.arrow(a, b) {
                arrow_m_pairs += 1;
                lost_pairs += 1;
                if examples.len() < max_examples {
                    examples.push((family[a].clone(), family[b].clone()));
                }
            }
        }
        rde_obs::counter!("core.loss.rows").inc();
        if journal_on {
            // Progress marker: one row of the n² census finished.
            rde_obs::event(
                "core.loss.row",
                &[
                    ("row", a.into()),
                    ("of", family.len().into()),
                    ("lost", (lost_pairs - lost_before).into()),
                ],
            );
        }
    }
    span.close_with(&[
        ("arrow_m_pairs", arrow_m_pairs.into()),
        ("hom_pairs", hom_pairs.into()),
        ("lost_pairs", lost_pairs.into()),
    ]);
    Ok(LossReport { universe_size: family.len(), arrow_m_pairs, hom_pairs, lost_pairs, examples })
}

/// Parallel variant of [`information_loss`]: the chase cache is built
/// once (sequentially — it allocates fresh nulls), then the `n²`
/// homomorphism checks are fanned out over scoped worker threads, one
/// row-range each. Deterministic: per-row results are merged in row
/// order, so counts *and* examples match the sequential census.
pub fn information_loss_parallel(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    max_examples: usize,
    threads: usize,
) -> Result<LossReport, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let cache = ArrowMCache::new(mapping, &family, vocab)?;
    let span = rde_obs::span("core.loss.census", &[("universe", family.len().into())]);
    let journal_on = rde_obs::journal::enabled();
    let n = family.len();
    let threads = threads.max(1).min(n.max(1));

    #[derive(Default)]
    struct Partial {
        arrow_m_pairs: usize,
        hom_pairs: usize,
        lost: Vec<(usize, usize)>,
    }

    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Partial> = Vec::new();
    // Keep worker-emitted records attributed to the owning request.
    let req_id = rde_obs::request::current();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            let family = &family;
            let cache = &cache;
            handles.push(scope.spawn(move || {
                let _req = rde_obs::request::enter(req_id);
                let mut p = Partial::default();
                for a in lo..hi {
                    let lost_before = p.lost.len();
                    for b in 0..n {
                        if exists_hom(&family[a], &family[b]) {
                            p.hom_pairs += 1;
                            p.arrow_m_pairs += 1;
                        } else if cache.arrow(a, b) {
                            p.arrow_m_pairs += 1;
                            p.lost.push((a, b));
                        }
                    }
                    rde_obs::counter!("core.loss.rows").inc();
                    if journal_on {
                        // Progress with worker attribution (rows are
                        // chunked contiguously across workers).
                        rde_obs::event(
                            "core.loss.row",
                            &[
                                ("row", a.into()),
                                ("of", n.into()),
                                ("worker", t.into()),
                                ("lost", (p.lost.len() - lost_before).into()),
                            ],
                        );
                    }
                }
                p
            }));
        }
        for h in handles {
            // A worker panic is re-raised with its original payload
            // rather than wrapped in a second panic here.
            partials.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
    });

    let mut report = LossReport {
        universe_size: n,
        arrow_m_pairs: 0,
        hom_pairs: 0,
        lost_pairs: 0,
        examples: Vec::new(),
    };
    for p in partials {
        report.arrow_m_pairs += p.arrow_m_pairs;
        report.hom_pairs += p.hom_pairs;
        report.lost_pairs += p.lost.len();
        for (a, b) in p.lost {
            if report.examples.len() < max_examples {
                report.examples.push((family[a].clone(), family[b].clone()));
            }
        }
    }
    span.close_with(&[
        ("arrow_m_pairs", report.arrow_m_pairs.into()),
        ("hom_pairs", report.hom_pairs.into()),
        ("lost_pairs", report.lost_pairs.into()),
    ]);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;

    #[test]
    fn copy_mapping_is_lossless() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::small(&mut v);
        let report = information_loss(&m, &u, &mut v, 4).unwrap();
        assert!(report.is_lossless_within_bound());
        assert_eq!(report.arrow_m_pairs, report.hom_pairs);
        assert_eq!(report.loss_fraction(), 0.0);
    }

    #[test]
    fn union_mapping_loses_p_vs_q() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let u = Universe::new(&mut v, 2, 1, 1);
        let report = information_loss(&m, &u, &mut v, 100).unwrap();
        assert!(!report.is_lossless_within_bound());
        assert!(report.lost_pairs > 0);
        assert_eq!(report.lost_pairs, report.arrow_m_pairs - report.hom_pairs);
        // Every example is a genuine →_M \ → pair.
        for (i1, i2) in &report.examples {
            assert!(crate::arrow::arrow_m(&m, i1, i2, &mut v).unwrap());
            assert!(!exists_hom(i1, i2));
        }
    }

    /// Cor 4.15 cross-check: lossless-within-bound agrees with the
    /// homomorphism-property check on the same universe.
    #[test]
    fn losslessness_agrees_with_homomorphism_property() {
        for text in [
            "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)",
            "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)",
            "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)",
        ] {
            let mut v = Vocabulary::new();
            let m = parse_mapping(&mut v, text).unwrap();
            let u = Universe::new(&mut v, 2, 1, 1);
            let report = information_loss(&m, &u, &mut v, 0).unwrap();
            let hp = crate::invertibility::check_homomorphism_property(&m, &u, &mut v).unwrap();
            assert_eq!(report.is_lossless_within_bound(), hp.holds(), "mapping: {text}");
        }
    }

    /// The parallel census matches the sequential one exactly
    /// (counts and examples), at several thread counts.
    #[test]
    fn parallel_census_matches_sequential() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let sequential = information_loss(&m, &u, &mut v, 8).unwrap();
        for threads in [1, 2, 4, 7] {
            let parallel = information_loss_parallel(&m, &u, &mut v, 8, threads).unwrap();
            assert_eq!(parallel.universe_size, sequential.universe_size);
            assert_eq!(parallel.arrow_m_pairs, sequential.arrow_m_pairs, "threads={threads}");
            assert_eq!(parallel.hom_pairs, sequential.hom_pairs);
            assert_eq!(parallel.lost_pairs, sequential.lost_pairs);
            assert_eq!(parallel.examples, sequential.examples, "deterministic example order");
        }
    }

    #[test]
    fn projection_mapping_loses_the_projected_column() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 1);
        let report = information_loss(&m, &u, &mut v, 10).unwrap();
        // {P(a,a)} and {P(a,b)} export the same Q(a).
        assert!(report.lost_pairs > 0);
    }
}
