//! # rde-core
//!
//! The contributions of *Reverse Data Exchange: Coping with Nulls*
//! (Fagin, Kolaitis, Popa, Tan; PODS 2009), implemented over the
//! substrate crates (`rde-model`, `rde-hom`, `rde-deps`, `rde-chase`,
//! `rde-query`):
//!
//! * [`semantics`] — satisfaction `(I, J) ⊨ Σ`, solutions, universal
//!   solutions (Section 2);
//! * [`extended`] — extended solutions, extended universal solutions,
//!   the homomorphic extension `e(M)` and the extended identity `e(Id)`
//!   (Section 3, Definitions 3.2–3.7);
//! * [`invertibility`] — capturing functions, the homomorphism property,
//!   extended invertibility (Theorems 3.10 and 3.13);
//! * [`chase_inverse`] — chase-inverses and their equivalence with
//!   extended inverses for tgd-specified reverse mappings
//!   (Definition 3.16, Theorem 3.17);
//! * [`arrow`] — the relations `→_M` (Definition 4.6, Proposition 4.7)
//!   and `→_{M,g}` (Definition 4.18);
//! * [`recovery`] — extended recoveries, maximum extended recoveries,
//!   the canonical strong maximum extended recovery `M*` and the
//!   characterization `e(M) ∘ e(M′) = →_M` (Definitions 4.3–4.8,
//!   Theorems 4.10 and 4.13);
//! * [`loss`] — information loss `→_M \ →` and its bounded
//!   quantification (Definition 4.5, Corollaries 4.14–4.15);
//! * [`quasi_inverse`] — the quasi-inverse algorithm for full tgds,
//!   producing maximum extended recoveries as disjunctive tgds with
//!   inequalities (Theorem 5.1);
//! * [`faithful`] — universal-faithful reverse mappings
//!   (Definition 6.1, Theorem 6.2);
//! * [`compare`] — the "less lossy" order on schema mappings
//!   (Definition 6.6, Theorem 6.8);
//! * [`ground`] — the ground-instance baselines the paper generalizes:
//!   the identity mapping, inverses [Fagin, TODS 2007], the subset
//!   property [FKPT, TODS 2008], witness solutions and maximum
//!   recoveries [Arenas–Pérez–Riveros, PODS 2008] (Sections 2 and 4.2);
//! * [`compose`] — exact pointwise membership in compositions such as
//!   `M ∘ M′` and `e(M) ∘ e(M′)` via homomorphic-collapse enumeration;
//! * [`universe`] — bounded universes of instances over which the
//!   undecidable-in-general quantifications become exact finite checks.
//!
//! ## Exact vs bounded checks
//!
//! Several notions quantify over *all* instances (all, not just ground —
//! that is the point of the paper). Pointwise questions — "is `J` an
//! extended solution for `I`?", "does `(I₁, I₂) ∈ →_M` hold?" — are
//! decided exactly via the chase and the homomorphism engine. Universal
//! questions — "is `M` extended-invertible?", "is `M′` a maximum
//! extended recovery?" — are decided exactly *relative to a
//! [`universe::Universe`]*: a counterexample found is a real
//! counterexample; "holds within the bound" is evidence, not proof, and
//! every such API says so in its name or docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; the
// seed-sweep suite in rde-faults depends on it. Test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrow;
pub mod chase_inverse;
pub mod compare;
pub mod compose;
mod error;
pub mod extended;
pub mod faithful;
pub mod ground;
pub mod invertibility;
pub mod loss;
pub mod mstar;
pub mod quasi_inverse;
pub mod recovery;
pub mod retry;
pub mod semantics;
pub mod unfold;
pub mod universe;

pub use error::CoreError;
pub use universe::Universe;
