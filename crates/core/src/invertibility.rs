//! Extended invertibility: capturing functions and the homomorphism
//! property (Definitions 3.8–3.12, Theorems 3.10 and 3.13).

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_hom::{exists_hom, exists_hom_budgeted, Exhausted, HomConfig, HomStats, Verdict};
use rde_model::{Instance, Vocabulary};

use crate::{CoreError, Universe};

/// Outcome of a bounded universal check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedVerdict {
    /// No counterexample exists within the universe. Evidence, not
    /// proof, outside the bound.
    HoldsWithinBound,
    /// A genuine counterexample (valid unconditionally).
    Counterexample {
        /// The witnessing pair's first component.
        i1: Instance,
        /// Second component.
        i2: Instance,
    },
    /// A budgeted run could not settle every pair: no counterexample was
    /// found, but some search was cut short, so "holds within bound"
    /// cannot be claimed. Retry with a larger budget.
    Unknown {
        /// The first budget that ran out.
        budget: Exhausted,
    },
}

impl BoundedVerdict {
    /// Did the property survive the bounded check?
    pub fn holds(&self) -> bool {
        matches!(self, BoundedVerdict::HoldsWithinBound)
    }
}

/// Search the universe for a violation of the **homomorphism property**
/// (Definition 3.12): instances with `chase_M(I₁) → chase_M(I₂)` but
/// not `I₁ → I₂`. By Theorem 3.13 a counterexample refutes extended
/// invertibility outright.
pub fn check_homomorphism_property(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<BoundedVerdict, CoreError> {
    let mut stats = HomStats::default();
    check_homomorphism_property_budgeted(
        mapping,
        universe,
        vocab,
        &HomConfig::default(),
        &mut stats,
    )
}

/// Budgeted form of [`check_homomorphism_property`]: every homomorphism
/// search obeys `config`, and search work (including the arrow cache's)
/// accumulates into `stats`. A counterexample needs both sides settled,
/// so a run with cut searches that finds none returns
/// [`BoundedVerdict::Unknown`] instead of claiming the property holds.
pub fn check_homomorphism_property_budgeted(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<BoundedVerdict, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    let cache = crate::arrow::ArrowMCache::new_budgeted(mapping, &family, vocab, config)?;
    let verdict = check_homomorphism_property_cached(&cache, &family, config, stats);
    *stats += cache.stats().hom;
    Ok(verdict)
}

/// The scan of [`check_homomorphism_property_budgeted`] against a
/// **prebuilt** arrow cache over `family`. This is the repeated-query
/// entry point: a long-lived service builds the cache once per mapping
/// and answers every later check from the memo table, each request
/// under its own `config` (budgets and a scoped cancel token — a
/// cancelled request reports `Unknown(Cancelled)` without touching any
/// other request sharing the cache).
pub fn check_homomorphism_property_cached(
    cache: &crate::arrow::ArrowMCache,
    family: &[Instance],
    config: &HomConfig,
    stats: &mut HomStats,
) -> BoundedVerdict {
    let mut unsettled: Option<Exhausted> = None;
    let mut verdict = BoundedVerdict::HoldsWithinBound;
    'scan: for a in 0..family.len() {
        for b in 0..family.len() {
            match cache.arrow_budgeted(a, b, config) {
                Verdict::Fails => {}
                Verdict::Unknown { budget } => unsettled = unsettled.or(Some(budget)),
                Verdict::Holds => {
                    match exists_hom_budgeted(&family[a], &family[b], config, stats) {
                        Verdict::Holds => {}
                        Verdict::Unknown { budget } => unsettled = unsettled.or(Some(budget)),
                        Verdict::Fails => {
                            verdict = BoundedVerdict::Counterexample {
                                i1: family[a].clone(),
                                i2: family[b].clone(),
                            };
                            break 'scan;
                        }
                    }
                }
            }
        }
    }
    match (verdict, unsettled) {
        (BoundedVerdict::HoldsWithinBound, Some(budget)) => BoundedVerdict::Unknown { budget },
        (v, _) => v,
    }
}

/// Bounded extended-invertibility check via Theorem 3.13 (for
/// tgd-specified mappings, extended invertibility ⟺ the homomorphism
/// property).
pub fn check_extended_invertibility(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<BoundedVerdict, CoreError> {
    check_homomorphism_property(mapping, universe, vocab)
}

/// Does `J` **capture** `I` for `M` within the universe (Definition
/// 3.9)? Condition (a) — `J ∈ eSol_M(I)` — is exact (chase-based);
/// condition (b) quantifies the candidate sources `K` over the universe.
pub fn captures_bounded(
    mapping: &SchemaMapping,
    target: &Instance,
    source: &Instance,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    if !crate::extended::is_extended_solution(source, target, mapping, vocab)? {
        return Ok(false);
    }
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    for k in &family {
        if crate::extended::is_extended_solution(k, target, mapping, vocab)?
            && !exists_hom(k, source)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Theorem 3.13(3): when `M` is extended-invertible, `F(I) = chase_M(I)`
/// is a capturing function. Checks that property for every source in
/// the universe; returns the first source whose chase fails to capture
/// it (a refutation of extended invertibility within the bound).
pub fn check_chase_is_capturing(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<Option<Instance>, CoreError> {
    let family = universe
        .collect_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?;
    for i in &family {
        let chased = chase_mapping(i, mapping, vocab, &ChaseOptions::default())?;
        if !captures_bounded(mapping, &chased, i, universe, vocab)? {
            return Ok(Some(i.clone()));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// Example 3.14: the union mapping is not extended-invertible, with
    /// the paper's exact counterexample shape ({P(c)}, {Q(c)}).
    #[test]
    fn example_3_14_union_mapping() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let u = Universe::new(&mut v, 1, 0, 1);
        let verdict = check_homomorphism_property(&m, &u, &mut v).unwrap();
        match verdict {
            BoundedVerdict::Counterexample { i1, i2 } => {
                assert_eq!(i1.len(), 1);
                assert_eq!(i2.len(), 1);
                assert!(!exists_hom(&i1, &i2));
            }
            other => panic!("union mapping must fail, got {other:?}"),
        }
    }

    /// The copy mapping is extended-invertible: the homomorphism
    /// property holds on the whole bounded universe, and the chase is a
    /// capturing function.
    #[test]
    fn copy_mapping_is_extended_invertible_within_bound() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::small(&mut v);
        assert!(check_homomorphism_property(&m, &u, &mut v).unwrap().holds());
        assert_eq!(check_chase_is_capturing(&m, &u, &mut v).unwrap(), None);
    }

    /// Theorem 3.15(2): P(x) → ∃y R(x,y), Q(y) → ∃x R(x,y) fails the
    /// homomorphism property on null sources ({P(n₁)} vs {Q(n₂)}), and
    /// the counterexample requires nulls (the ground fragment passes).
    #[test]
    fn theorem_3_15_part_2_needs_nulls() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/1, Q/1\ntarget: R/2\nP(x) -> exists y . R(x, y)\nQ(y) -> exists x . R(x, y)",
        )
        .unwrap();
        // With nulls: counterexample found.
        let with_nulls = Universe::new(&mut v, 1, 1, 1);
        let verdict = check_homomorphism_property(&m, &with_nulls, &mut v).unwrap();
        let BoundedVerdict::Counterexample { i1, i2 } = verdict else {
            panic!("expected a null counterexample");
        };
        assert!(!i1.is_ground() || !i2.is_ground(), "counterexample must involve nulls");
        // Ground-only universe: the homomorphism property holds there
        // (the mapping IS invertible in the ground sense).
        let ground_only = Universe::new(&mut v, 2, 0, 2);
        assert!(check_homomorphism_property(&m, &ground_only, &mut v).unwrap().holds());
    }

    /// A starved budget cannot settle the pairs: the checker says
    /// Unknown instead of claiming the property holds (or inventing a
    /// counterexample).
    #[test]
    fn budgeted_check_degrades_to_unknown() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let tight = HomConfig { node_budget: Some(1), ..HomConfig::default() };
        let mut stats = HomStats::default();
        let verdict =
            check_homomorphism_property_budgeted(&m, &u, &mut v, &tight, &mut stats).unwrap();
        // The property holds for this mapping, so a definite
        // counterexample is impossible; with cut searches the only
        // honest answer is Unknown.
        assert!(matches!(verdict, BoundedVerdict::Unknown { .. }), "got {verdict:?}");
        assert!(stats.nodes > 0, "the aggregated stats must reflect the work");
        // An adequate budget restores the unbounded answer.
        let mut stats = HomStats::default();
        let verdict =
            check_homomorphism_property_budgeted(&m, &u, &mut v, &HomConfig::default(), &mut stats)
                .unwrap();
        assert!(verdict.holds());
    }

    /// Example 3.18's mapping P(x,y) → ∃z(Q(x,z) ∧ Q(z,y)) is
    /// extended-invertible (bounded evidence).
    #[test]
    fn two_step_decomposition_is_extended_invertible_within_bound() {
        let mut v = Vocabulary::new();
        let m =
            parse_mapping(&mut v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        assert!(check_homomorphism_property(&m, &u, &mut v).unwrap().holds());
    }

    #[test]
    fn capture_requires_extended_solutionhood() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 1, 1, 1);
        let i = parse_instance(&mut v, "P(u0)").unwrap();
        let not_a_solution = Instance::new();
        assert!(!captures_bounded(&m, &not_a_solution, &i, &u, &mut v).unwrap());
        let j = parse_instance(&mut v, "Q(u0)").unwrap();
        assert!(captures_bounded(&m, &j, &i, &u, &mut v).unwrap());
    }

    /// The union mapping's chase fails to capture: {R(c)} is an
    /// extended solution for both {P(c)} and {Q(c)}.
    #[test]
    fn union_chase_fails_to_capture() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let u = Universe::new(&mut v, 1, 0, 1);
        let failing = check_chase_is_capturing(&m, &u, &mut v).unwrap();
        assert!(failing.is_some());
    }
}
