//! Budget-escalation retry for three-valued checks.
//!
//! Every bounded checker in this crate degrades to an `Unknown`-style
//! verdict when a [`HomConfig`] budget runs out. The natural caller
//! reaction — retry with a bigger budget — used to be ad-hoc caller
//! code; [`retry_budgeted`] centralizes it: run the check, and while
//! the caller deems the outcome unsettled, multiply the budgets by
//! [`RetryPolicy::growth`] and run it again. Exponential growth keeps
//! the total work within a constant factor of the final (successful)
//! attempt's work.
//!
//! The helper is deliberately generic over the outcome type: checkers
//! here return different verdict enums (and `Result`s around them), so
//! the caller supplies the "is this still unsettled?" predicate.

use std::time::Duration;

use rde_hom::HomConfig;

/// How [`retry_budgeted`] escalates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first one. `1` means no retries.
    pub max_attempts: u32,
    /// Budget multiplier between attempts (node and time budgets both).
    pub growth: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 8× growth: four attempts span three orders of magnitude, so a
        // viable budget is found quickly while the wasted (unsettled)
        // work stays a small fraction of the final attempt.
        RetryPolicy { max_attempts: 4, growth: 8 }
    }
}

impl RetryPolicy {
    /// A policy performing `retries` extra attempts after the first.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy { max_attempts: retries.saturating_add(1), ..RetryPolicy::default() }
    }
}

/// `config` with both budgets multiplied by `growth` (saturating;
/// absent budgets stay absent — there is nothing to escalate).
pub fn escalate(config: &HomConfig, growth: u32) -> HomConfig {
    HomConfig {
        node_budget: config.node_budget.map(|n| n.saturating_mul(u64::from(growth)).max(1)),
        time_budget: config.time_budget.map(|t| t.checked_mul(growth).unwrap_or(Duration::MAX)),
        ..config.clone()
    }
}

/// Run `attempt` under `config`, retrying with exponentially escalated
/// budgets while `unsettled` says the outcome is still inconclusive.
///
/// Stops as soon as an attempt settles, the policy's attempt count is
/// spent, or the config carries no budget at all (an unbounded attempt
/// cannot be helped by escalation). Returns the last outcome together
/// with the number of attempts performed.
pub fn retry_budgeted<T>(
    config: &HomConfig,
    policy: &RetryPolicy,
    mut attempt: impl FnMut(&HomConfig) -> T,
    mut unsettled: impl FnMut(&T) -> bool,
) -> (T, u32) {
    let mut current = config.clone();
    let mut outcome = attempt(&current);
    let mut attempts = 1;
    while attempts < policy.max_attempts
        && unsettled(&outcome)
        && (current.node_budget.is_some() || current.time_budget.is_some())
    {
        current = escalate(&current, policy.growth);
        rde_obs::counter!("core.retry.escalations").inc();
        rde_obs::event(
            "core.retry",
            &[
                ("attempt", (attempts + 1).into()),
                ("node_budget", current.node_budget.unwrap_or(0).into()),
            ],
        );
        outcome = attempt(&current);
        attempts += 1;
    }
    (outcome, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settled_outcome_is_not_retried() {
        let cfg = HomConfig { node_budget: Some(10), ..HomConfig::default() };
        let mut calls = 0;
        let (out, attempts) = retry_budgeted(
            &cfg,
            &RetryPolicy::default(),
            |_| {
                calls += 1;
                42
            },
            |_| false,
        );
        assert_eq!((out, attempts, calls), (42, 1, 1));
    }

    #[test]
    fn budgets_escalate_exponentially_until_settled() {
        let cfg = HomConfig { node_budget: Some(2), ..HomConfig::default() };
        let mut seen = Vec::new();
        let (out, attempts) = retry_budgeted(
            &cfg,
            &RetryPolicy { max_attempts: 5, growth: 8 },
            |c| {
                seen.push(c.node_budget.unwrap());
                c.node_budget.unwrap() >= 128
            },
            |&settled| !settled,
        );
        assert!(out);
        assert_eq!(attempts, 3);
        assert_eq!(seen, vec![2, 16, 128]);
    }

    #[test]
    fn attempt_count_is_bounded() {
        let cfg = HomConfig { node_budget: Some(1), ..HomConfig::default() };
        let (_, attempts) =
            retry_budgeted(&cfg, &RetryPolicy { max_attempts: 3, growth: 2 }, |_| (), |_| true);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn unbudgeted_config_never_retries() {
        // No budget means the attempt was complete; retrying with "more"
        // of an absent budget would loop for nothing.
        let (_, attempts) =
            retry_budgeted(&HomConfig::default(), &RetryPolicy::default(), |_| (), |_| true);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn time_budget_escalates_too() {
        let cfg = HomConfig { time_budget: Some(Duration::from_millis(3)), ..HomConfig::default() };
        let esc = escalate(&cfg, 10);
        assert_eq!(esc.time_budget, Some(Duration::from_millis(30)));
        assert_eq!(esc.node_budget, None);
    }
}
