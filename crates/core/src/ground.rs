//! Ground-instance baselines: the notions the paper generalizes.
//!
//! * the identity schema mapping `Id` and inverses `M ∘ M′ = Id`
//!   (Fagin, TODS 2007; Section 2 of the paper);
//! * the subset property characterizing invertibility (Fagin, Kolaitis,
//!   Popa, Tan, TODS 2008);
//! * witness solutions and maximum recoveries on ground instances
//!   (Arenas, Pérez, Riveros, PODS 2008; Section 4.2 of the paper),
//!   including `→_{M,g}` and the ground information loss
//!   (Definition 4.17, Proposition 4.19).
//!
//! All instances here are ground (constants only); the paper's central
//! observation is that these notions lose their good properties once
//! nulls enter the sources, which the tests of this module and
//! Proposition 4.2's experiment demonstrate side by side with the
//! extended notions.

use rde_chase::{chase_mapping, ChaseOptions};
use rde_deps::SchemaMapping;
use rde_model::{Instance, Vocabulary};

use crate::compose::{in_composition, ComposeOptions};
use crate::invertibility::BoundedVerdict;
use crate::{CoreError, Universe};

/// `(I₁, I₂) ∈ Id` for ground instances: `I₁ ⊆ I₂` (with the replica
/// schema identified with the source schema, as the paper does for
/// notational simplicity).
pub fn in_identity(i1: &Instance, i2: &Instance) -> bool {
    debug_assert!(i1.is_ground() && i2.is_ground(), "Id is a mapping on ground instances");
    i1.is_subset_of(i2)
}

/// Bounded inverse check (Fagin 2007): `M′` is an inverse of `M` iff
/// `M ∘ M′ = Id` as sets of pairs of **ground** instances. Verifies the
/// biconditional on every ground pair of the universe; a returned pair
/// is a genuine counterexample.
pub fn check_inverse(
    mapping: &SchemaMapping,
    reverse: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    options: &ComposeOptions,
) -> Result<BoundedVerdict, CoreError> {
    let family: Vec<Instance> = universe
        .ground_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?
        .collect();
    for i1 in &family {
        for i2 in &family {
            let lhs = in_composition(mapping, reverse, i1, i2, vocab, options)?;
            let rhs = in_identity(i1, i2);
            if lhs != rhs {
                return Ok(BoundedVerdict::Counterexample { i1: i1.clone(), i2: i2.clone() });
            }
        }
    }
    Ok(BoundedVerdict::HoldsWithinBound)
}

/// Bounded **subset property** check (FKPT 2008): for all ground
/// `I₁, I₂`, if `chase_M(I₁) → chase_M(I₂)` then `I₁ ⊆ I₂`. The
/// property characterizes invertibility of tgd mappings on ground
/// instances; it is the ground shadow of the homomorphism property
/// (Theorem 3.15(1) follows from the implication between them).
pub fn check_subset_property(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
) -> Result<BoundedVerdict, CoreError> {
    let family: Vec<Instance> = universe
        .ground_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?
        .collect();
    let cache = crate::arrow::ArrowMCache::new(mapping, &family, vocab)?;
    for a in 0..family.len() {
        for b in 0..family.len() {
            if cache.arrow(a, b) && !family[a].is_subset_of(&family[b]) {
                return Ok(BoundedVerdict::Counterexample {
                    i1: family[a].clone(),
                    i2: family[b].clone(),
                });
            }
        }
    }
    Ok(BoundedVerdict::HoldsWithinBound)
}

/// Is `J` a **witness** for `I` under `M` within a family of candidate
/// sources (Arenas–Pérez–Riveros, used in Proposition 4.2): for every
/// `I′` in the family, `J ∈ Sol_M(I′)` implies `Sol_M(I) ⊆ Sol_M(I′)`.
///
/// The family may contain non-ground instances — that is exactly the
/// regime of Proposition 4.2, and the reason witnesses die there: a
/// source instance may mention `J`'s own nulls, which standard
/// satisfaction treats as rigid values.
///
/// `J ∈ Sol_M(I′)` is direct model checking. `Sol_M(I) ⊆ Sol_M(I′)`
/// reduces to `chase_M(I) ∈ Sol_M(I′)`: the chase is itself a solution
/// for `I` and maps into every solution of `I` by an
/// active-domain-preserving homomorphism, so if it is a solution for
/// `I′` then so is every solution of `I` (chase-invented nulls are
/// globally fresh, hence disjoint from `adom(I′)`).
pub fn is_witness_for(
    mapping: &SchemaMapping,
    target: &Instance,
    source: &Instance,
    candidates: &[Instance],
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    let chase_i = chase_mapping(source, mapping, vocab, &ChaseOptions::default())?;
    for i_prime in candidates {
        if crate::semantics::is_solution(i_prime, target, mapping)
            && !crate::semantics::is_solution(i_prime, &chase_i, mapping)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Is `J` a **witness solution** for `I` (a witness that is also a
/// solution)?
pub fn is_witness_solution(
    mapping: &SchemaMapping,
    target: &Instance,
    source: &Instance,
    candidates: &[Instance],
    vocab: &mut Vocabulary,
) -> Result<bool, CoreError> {
    if !crate::semantics::is_solution(source, target, mapping) {
        return Ok(false);
    }
    is_witness_for(mapping, target, source, candidates, vocab)
}

/// Ground information-loss census (Definition 4.17 / Proposition 4.19):
/// the pairs in `→_{M,g} \ Id` over the ground instances of the
/// universe.
pub fn ground_information_loss(
    mapping: &SchemaMapping,
    universe: &Universe,
    vocab: &mut Vocabulary,
    max_examples: usize,
) -> Result<crate::loss::LossReport, CoreError> {
    let family: Vec<Instance> = universe
        .ground_instances(vocab, &mapping.source)
        .map_err(|_| CoreError::UnsupportedMapping { required: "an enumerable source schema" })?
        .collect();
    let cache = crate::arrow::ArrowMCache::new(mapping, &family, vocab)?;
    let mut arrow_m_pairs = 0usize;
    let mut hom_pairs = 0usize;
    let mut lost_pairs = 0usize;
    let mut examples = Vec::new();
    for a in 0..family.len() {
        for b in 0..family.len() {
            // On ground instances Id is ⊆ and → coincides with ⊆.
            let id = family[a].is_subset_of(&family[b]);
            if id {
                hom_pairs += 1;
                arrow_m_pairs += 1;
                continue;
            }
            if cache.arrow(a, b) {
                arrow_m_pairs += 1;
                lost_pairs += 1;
                if examples.len() < max_examples {
                    examples.push((family[a].clone(), family[b].clone()));
                }
            }
        }
    }
    Ok(crate::loss::LossReport {
        universe_size: family.len(),
        arrow_m_pairs,
        hom_pairs,
        lost_pairs,
        examples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_deps::parse_mapping;
    use rde_model::parse::parse_instance;

    /// The copy mapping's copy-back is an inverse.
    #[test]
    fn copy_back_is_an_inverse() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let back = parse_mapping(&mut v, "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 1);
        let verdict = check_inverse(&m, &back, &u, &mut v, &ComposeOptions::default()).unwrap();
        assert!(verdict.holds(), "{verdict:?}");
    }

    /// The union mapping fails the subset property (hence is not
    /// invertible), already on ground instances.
    #[test]
    fn union_mapping_fails_subset_property() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1, Q/1\ntarget: R/1\nP(x) -> R(x)\nQ(x) -> R(x)")
            .unwrap();
        let u = Universe::new(&mut v, 1, 0, 1);
        let verdict = check_subset_property(&m, &u, &mut v).unwrap();
        assert!(!verdict.holds());
    }

    /// Theorem 3.15(2)'s mapping passes the subset property on ground
    /// instances (it is invertible) — the extended counterexample needs
    /// nulls.
    #[test]
    fn theorem_3_15_mapping_passes_subset_property() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(
            &mut v,
            "source: P/1, Q/1\ntarget: R/2\nP(x) -> exists y . R(x, y)\nQ(y) -> exists x . R(x, y)",
        )
        .unwrap();
        let u = Universe::new(&mut v, 2, 0, 2);
        assert!(check_subset_property(&m, &u, &mut v).unwrap().holds());
    }

    /// Witness solutions: for the copy mapping, the canonical chase is a
    /// witness solution for its source.
    #[test]
    fn chase_is_a_witness_solution_for_copy() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/1\ntarget: Q/1\nP(x) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 2, 1, 2);
        let candidates = u.collect_instances(&v, &m.source).unwrap();
        let i = parse_instance(&mut v, "P(u0)").unwrap();
        let j = parse_instance(&mut v, "Q(u0)").unwrap();
        assert!(is_witness_solution(&m, &j, &i, &candidates, &mut v).unwrap());
        // An overly large target is a solution but not a witness: it is
        // also a solution for bigger sources.
        let too_big = parse_instance(&mut v, "Q(u0)\nQ(u1)").unwrap();
        assert!(crate::semantics::is_solution(&i, &too_big, &m));
        assert!(!is_witness_solution(&m, &too_big, &i, &candidates, &mut v).unwrap());
    }

    /// Ground information loss of the projection mapping is nonempty and
    /// matches Proposition 4.19's characterization →_{M,g} \ Id.
    #[test]
    fn ground_loss_of_projection() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 1);
        let report = ground_information_loss(&m, &u, &mut v, 10).unwrap();
        assert!(report.lost_pairs > 0);
        for (i1, i2) in &report.examples {
            assert!(i1.is_ground() && i2.is_ground());
            assert!(!i1.is_subset_of(i2));
            assert!(crate::arrow::arrow_m_ground(&m, i1, i2, &mut v).unwrap());
        }
    }

    /// The copy mapping has empty ground loss.
    #[test]
    fn copy_mapping_has_no_ground_loss() {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let u = Universe::new(&mut v, 2, 0, 2);
        let report = ground_information_loss(&m, &u, &mut v, 1).unwrap();
        assert_eq!(report.lost_pairs, 0);
    }
}
