//! Syntactic composition of schema mappings by unfolding.
//!
//! The paper's introduction motivates combining **composition** and
//! **inverse** to analyze schema evolution. Composition of schema
//! mappings is not always first-order definable, but when the first
//! mapping is specified by **full** s-t tgds and the second by
//! arbitrary s-t tgds, the composition `M₁₂ ∘ M₂₃` is definable by
//! s-t tgds, obtained by *unfolding*: every premise atom of a
//! `Σ₂₃`-dependency is resolved against a conclusion atom of a
//! `Σ₁₂`-dependency, the two are unified, and the `Σ₁₂` premises are
//! substituted in (Fagin–Kolaitis–Popa–Tan, *Composing Schema
//! Mappings*, and Madhavan–Halevy).
//!
//! Correctness hinges on `Σ₁₂` being full: then `chase_{Σ₁₂}(I)` has
//! no invented nulls, `Sol_{Σ₁₂}(I)` is the up-set `{J ⊇
//! chase_{Σ₁₂}(I)}`, and `(I, K) ∈ M₁₂ ∘ M₂₃ ⟺ (chase_{Σ₁₂}(I), K) ⊨
//! Σ₂₃` — which the unfolded dependencies express directly over `I`.
//! Premise guards of `Σ₂₃` (inequalities, `Constant`) are carried
//! through the unifier; statically decidable guard instances are
//! simplified away.

use rde_deps::{Atom, Conjunct, Dependency, Premise, SchemaMapping, Term, VarId};
use rde_model::fx::FxHashMap;
use rde_model::Vocabulary;

use crate::CoreError;

/// Limits for unfolding (the combination count is `Πᵢ (conclusion
/// atoms matching premise atom i)` per dependency).
#[derive(Debug, Clone)]
pub struct UnfoldOptions {
    /// Maximum unfolded dependencies produced overall.
    pub max_dependencies: usize,
}

impl Default for UnfoldOptions {
    fn default() -> Self {
        UnfoldOptions { max_dependencies: 10_000 }
    }
}

/// Compose `m12 ∘ m23` syntactically. Requires `m12` full-tgd-specified
/// and `m23` (possibly guarded, possibly disjunctive) tgd-specified,
/// with `m12.target == m23.source`.
pub fn compose_mappings(
    m12: &SchemaMapping,
    m23: &SchemaMapping,
    vocab: &Vocabulary,
    options: &UnfoldOptions,
) -> Result<SchemaMapping, CoreError> {
    if !m12.is_full_tgd_mapping() {
        return Err(CoreError::UnsupportedMapping { required: "a full-tgd first mapping" });
    }
    if m12.target != m23.source {
        return Err(CoreError::UnsupportedMapping {
            required: "m12.target = m23.source (composable mappings)",
        });
    }
    let mut out: Vec<Dependency> = Vec::new();
    for d23 in &m23.dependencies {
        unfold_dependency(m12, d23, vocab, options, &mut out)?;
    }
    Ok(SchemaMapping::new(m12.source.clone(), m23.target.clone(), out))
}

/// A term environment for one unfolding: variables of the combined
/// namespace, with a union-find-ish binding map.
struct Unifier {
    /// Binding of variable → term (resolved transitively).
    bindings: FxHashMap<VarId, Term>,
}

impl Unifier {
    fn new() -> Self {
        Unifier { bindings: FxHashMap::default() }
    }

    fn resolve(&self, t: Term) -> Term {
        let mut current = t;
        let mut guard = 0;
        while let Term::Var(v) = current {
            match self.bindings.get(&v) {
                Some(&next) => {
                    current = next;
                    guard += 1;
                    debug_assert!(guard <= self.bindings.len() + 1, "binding cycle");
                }
                None => break,
            }
        }
        current
    }

    fn unify(&mut self, a: Term, b: Term) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (ra, rb) {
            (Term::Const(x), Term::Const(y)) => x == y,
            (Term::Var(v), other) => {
                if Term::Var(v) != other {
                    self.bindings.insert(v, other);
                }
                true
            }
            (other, Term::Var(v)) => {
                self.bindings.insert(v, other);
                true
            }
        }
    }

    fn apply_atom(&self, a: &Atom) -> Atom {
        Atom { rel: a.rel, args: a.args.iter().map(|&t| self.resolve(t)).collect() }
    }
}

/// Rename a dependency's variables into a shared namespace starting at
/// `offset`, returning the renamed premise/disjuncts and the new offset.
fn shift_dependency(dep: &Dependency, offset: u32) -> (Premise, Vec<Conjunct>, u32) {
    let shift = |t: &Term| match *t {
        Term::Var(v) => Term::Var(VarId(v.0 + offset)),
        c => c,
    };
    let shift_atom = |a: &Atom| Atom { rel: a.rel, args: a.args.iter().map(shift).collect() };
    let premise = Premise {
        atoms: dep.premise.atoms.iter().map(shift_atom).collect(),
        constant_vars: dep.premise.constant_vars.iter().map(|v| VarId(v.0 + offset)).collect(),
        inequalities: dep
            .premise
            .inequalities
            .iter()
            .map(|&(a, b)| (VarId(a.0 + offset), VarId(b.0 + offset)))
            .collect(),
    };
    let disjuncts = dep
        .disjuncts
        .iter()
        .map(|c| Conjunct {
            existentials: c.existentials.iter().map(|v| VarId(v.0 + offset)).collect(),
            atoms: c.atoms.iter().map(shift_atom).collect(),
        })
        .collect();
    (premise, disjuncts, offset + dep.var_count() as u32)
}

fn unfold_dependency(
    m12: &SchemaMapping,
    d23: &Dependency,
    vocab: &Vocabulary,
    options: &UnfoldOptions,
    out: &mut Vec<Dependency>,
) -> Result<(), CoreError> {
    // Combined namespace: d23's variables first.
    let (premise23, disjuncts23, mut next_var) = shift_dependency(d23, 0);

    // For each premise atom of d23, the candidate (renamed Σ12 premise,
    // conclusion atom) resolutions.
    struct Resolution {
        premise12: Vec<Atom>,
        conclusion_atom: Atom,
    }
    let mut candidates: Vec<Vec<Resolution>> = Vec::new();
    for atom in &premise23.atoms {
        let mut options_for_atom = Vec::new();
        for d12 in &m12.dependencies {
            // Fresh copy of d12 per (atom, d12) pair.
            let (p12, c12, nv) = shift_dependency(d12, next_var);
            next_var = nv;
            for b in &c12[0].atoms {
                if b.rel == atom.rel {
                    options_for_atom.push(Resolution {
                        premise12: p12.atoms.clone(),
                        conclusion_atom: b.clone(),
                    });
                }
            }
        }
        candidates.push(options_for_atom);
    }
    if candidates.iter().any(Vec::is_empty) {
        // Some premise atom can never be produced by Σ12: the unfolded
        // dependency is vacuous (its premise is unsatisfiable over
        // chase results) — emit nothing.
        return Ok(());
    }

    // Cartesian product of resolutions.
    let mut idx = vec![0usize; candidates.len()];
    loop {
        let mut unifier = Unifier::new();
        let mut ok = true;
        let mut premise_atoms: Vec<Atom> = Vec::new();
        for (i, atom) in premise23.atoms.iter().enumerate() {
            let res = &candidates[i][idx[i]];
            debug_assert_eq!(atom.args.len(), res.conclusion_atom.args.len());
            for (a, b) in atom.args.iter().zip(&res.conclusion_atom.args) {
                if !unifier.unify(*a, *b) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            premise_atoms.extend(res.premise12.iter().cloned());
        }
        if ok {
            if let Some(dep) =
                finish_unfolding(&unifier, premise_atoms, &premise23, &disjuncts23, next_var)
            {
                // α-dedup via the validated printer-independent route:
                // compare rendered forms.
                if dep.validate(vocab).is_ok() && !out.contains(&dep) {
                    out.push(dep);
                    if out.len() > options.max_dependencies {
                        return Err(CoreError::SearchLimitExceeded {
                            what: "unfolded dependencies",
                            limit: options.max_dependencies,
                        });
                    }
                }
            }
        }
        // Odometer.
        let mut pos = candidates.len();
        loop {
            if pos == 0 {
                return Ok(());
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < candidates[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// Apply the unifier, simplify guards, and assemble the dependency.
/// Returns `None` when a guard is statically false.
fn finish_unfolding(
    unifier: &Unifier,
    premise_atoms: Vec<Atom>,
    premise23: &Premise,
    disjuncts23: &[Conjunct],
    var_count: u32,
) -> Option<Dependency> {
    let premise_atoms: Vec<Atom> = {
        let mut atoms: Vec<Atom> = premise_atoms.iter().map(|a| unifier.apply_atom(a)).collect();
        atoms.dedup();
        atoms
    };
    // Guards under the unifier.
    let mut constant_vars = Vec::new();
    for &v in &premise23.constant_vars {
        match unifier.resolve(Term::Var(v)) {
            Term::Const(_) => {} // statically true
            Term::Var(w) => {
                if !constant_vars.contains(&w) {
                    constant_vars.push(w);
                }
            }
        }
    }
    let mut inequalities = Vec::new();
    for &(a, b) in &premise23.inequalities {
        match (unifier.resolve(Term::Var(a)), unifier.resolve(Term::Var(b))) {
            (Term::Const(x), Term::Const(y)) => {
                if x == y {
                    return None; // statically false
                }
            }
            (Term::Var(x), Term::Var(y)) if x == y => return None,
            (Term::Var(x), Term::Var(y)) => inequalities.push((x, y)),
            // var vs const: keep as inequality? The language only has
            // var ≠ var; encode by keeping the ORIGINAL variables —
            // but one side resolved to a constant means the premise
            // match pins it; a var≠const guard is expressible by
            // introducing... we conservatively keep the unresolved
            // variable pair only when both sides stay variables, and
            // otherwise drop the guard, which *weakens* the premise.
            // Weakening is unsound for composition, so reject instead.
            _ => return None,
        }
    }
    let disjuncts: Vec<Conjunct> = disjuncts23
        .iter()
        .map(|c| Conjunct {
            existentials: c
                .existentials
                .iter()
                .filter(|&&e| matches!(unifier.resolve(Term::Var(e)), Term::Var(w) if w == e))
                .copied()
                .collect(),
            atoms: c.atoms.iter().map(|a| unifier.apply_atom(a)).collect(),
        })
        .collect();
    let var_names: Vec<String> = (0..var_count).map(|i| format!("v{i}")).collect();
    Some(Dependency::new(
        var_names,
        Premise { atoms: premise_atoms, constant_vars, inequalities },
        disjuncts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{in_composition, ComposeOptions};
    use crate::semantics::satisfies;
    use crate::Universe;
    use rde_deps::parse_mapping;

    /// Semantic cross-check: (I, K) ⊨ composed ⟺ (I, K) ∈ M12 ∘ M23
    /// on every bounded pair.
    fn assert_composition_correct(
        m12_text: &str,
        m23_text: &str,
        consts: usize,
        nulls: usize,
        facts: usize,
    ) {
        let mut v = Vocabulary::new();
        let m12 = parse_mapping(&mut v, m12_text).unwrap();
        let m23 = parse_mapping(&mut v, m23_text).unwrap();
        let composed = compose_mappings(&m12, &m23, &v, &UnfoldOptions::default()).unwrap();
        composed.validate(&v).unwrap();
        assert_eq!(composed.source, m12.source);
        assert_eq!(composed.target, m23.target);
        let universe = Universe::new(&mut v, consts, nulls, facts);
        let sources = universe.collect_instances(&v, &m12.source).unwrap();
        let targets = universe.collect_instances(&v, &m23.target).unwrap();
        let opts = ComposeOptions::default();
        for i in &sources {
            for k in &targets {
                let semantic = in_composition(&m12, &m23, i, k, &mut v, &opts).unwrap();
                let syntactic = satisfies(i, k, &composed);
                assert_eq!(
                    semantic,
                    syntactic,
                    "disagreement on I={i:?} K={k:?}\ncomposed:\n{}",
                    rde_deps::printer::mapping(&v, &composed)
                );
            }
        }
    }

    #[test]
    fn copy_then_copy_composes_to_copy() {
        assert_composition_correct(
            "source: A/2\ntarget: B/2\nA(x,y) -> B(x,y)",
            "source: B/2\ntarget: C/2\nB(x,y) -> C(y,x)",
            2,
            1,
            1,
        );
    }

    #[test]
    fn decomposition_then_rejoin() {
        assert_composition_correct(
            "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)",
            "source: Q/2, R/2\ntarget: J/3\nQ(x,y) & R(y,z) -> J(x,y,z)",
            2,
            1,
            1,
        );
    }

    #[test]
    fn union_then_projection() {
        assert_composition_correct(
            "source: A/1, B/1\ntarget: R/2\nA(x) -> R(x,x)\nB(x) -> R(x,x)",
            "source: R/2\ntarget: S/1\nR(x,y) -> S(x)",
            2,
            1,
            1,
        );
    }

    #[test]
    fn existentials_in_the_second_mapping_survive() {
        assert_composition_correct(
            "source: A/1\ntarget: B/1\nA(x) -> B(x)",
            "source: B/1\ntarget: C/2\nB(x) -> exists w . C(x, w)",
            2,
            1,
            1,
        );
    }

    #[test]
    fn constants_unify_or_prune() {
        // Σ12 produces B(x, 'tag'); Σ23 matches B(u, 'tag') and
        // B(u, 'other') — the latter unfolds to nothing.
        assert_composition_correct(
            "source: A/1\ntarget: B/2\nA(x) -> B(x, 'tag')",
            "source: B/2\ntarget: C/1, D/1\nB(u, 'tag') -> C(u)\nB(u, 'other') -> D(u)",
            2,
            1,
            1,
        );
        // And the D-rule really is vacuous in the composition.
        let mut v = Vocabulary::new();
        let m12 = parse_mapping(&mut v, "source: A/1\ntarget: B/2\nA(x) -> B(x, 'tag')").unwrap();
        let m23 = parse_mapping(
            &mut v,
            "source: B/2\ntarget: C/1, D/1\nB(u, 'tag') -> C(u)\nB(u, 'other') -> D(u)",
        )
        .unwrap();
        let composed = compose_mappings(&m12, &m23, &v, &UnfoldOptions::default()).unwrap();
        let d = v.find_relation("D").unwrap();
        assert!(
            composed
                .dependencies
                .iter()
                .all(|dep| dep.disjuncts.iter().all(|c| c.atoms.iter().all(|a| a.rel != d))),
            "no unfolded rule may conclude D"
        );
    }

    #[test]
    fn join_premise_resolves_against_multiple_tgds() {
        assert_composition_correct(
            "source: A/2, B/2\ntarget: E/2\nA(x,y) -> E(x,y)\nB(x,y) -> E(x,y)",
            "source: E/2\ntarget: T/2\nE(x,y) & E(y,z) -> T(x,z)",
            2,
            0,
            2,
        );
    }

    #[test]
    fn disjunctive_second_mapping_unfolds() {
        assert_composition_correct(
            "source: A/1\ntarget: R/1\nA(x) -> R(x)",
            "source: R/1\ntarget: P/1, Q/1\nR(x) -> P(x) | Q(x)",
            1,
            1,
            1,
        );
    }

    #[test]
    fn non_full_first_mapping_is_rejected() {
        let mut v = Vocabulary::new();
        let m12 =
            parse_mapping(&mut v, "source: A/1\ntarget: B/2\nA(x) -> exists y . B(x, y)").unwrap();
        let m23 = parse_mapping(&mut v, "source: B/2\ntarget: C/1\nB(x,y) -> C(x)").unwrap();
        let err = compose_mappings(&m12, &m23, &v, &UnfoldOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedMapping { .. }));
    }

    #[test]
    fn mismatched_schemas_are_rejected() {
        let mut v = Vocabulary::new();
        let m12 = parse_mapping(&mut v, "source: A/1\ntarget: B/1\nA(x) -> B(x)").unwrap();
        let m23 = parse_mapping(&mut v, "source: X/1\ntarget: C/1\nX(x) -> C(x)").unwrap();
        let err = compose_mappings(&m12, &m23, &v, &UnfoldOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedMapping { .. }));
    }
}
