//! Cores: minimum retracts of instances.
//!
//! The **core** of an instance `I` is a minimal sub-instance `C ⊆ I`
//! with `I → C`. Cores are unique up to isomorphism and give canonical
//! representatives of homomorphic-equivalence classes — the natural
//! normal form for the paper's framework, where chase-inverses recover
//! sources only up to homomorphic equivalence (Theorem 3.17) and
//! extended universal solutions are compared by `→` (Definition 3.5).
//!
//! The algorithm repeatedly looks for a homomorphism from `I` into
//! `I ∖ {f}` for some fact `f`; if one exists, the image is a strictly
//! smaller hom-equivalent sub-instance and we recurse. When no single
//! fact can be dropped, no proper sub-instance admits a homomorphism at
//! all (any such sub-instance is contained in some `I ∖ {f}`), so the
//! result is the core.
//!
//! **Implementation.** [`core_of`] works on a single mutable copy of the
//! input: per round it compiles the current instance into a
//! [`CompiledPattern`] once, and per candidate fact `f` it removes `f`
//! in place ([`Instance::remove_fact`], O(arity)), matches the pattern —
//! which still contains `f`'s atom — against the reduced instance
//! (exactly the `I → I ∖ {f}` test), and either reinserts `f` on
//! failure or drops the non-image facts in place on success. This
//! replaces the two quadratic steps of the textbook loop (a full
//! `without_fact` rebuild per candidate and a full `apply_instance`
//! rebuild per fold), which survives as [`core_of_quadratic`] for
//! differential tests and the `BENCH_hom` baseline.

use rde_model::fx::FxHashSet;
use rde_model::{Fact, Instance, Substitution};

use crate::search::{instance_pattern, HomConfig, HomStats};

/// Result of [`core_of`]: the core and a retraction onto it.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// The core: a sub-instance of the input, hom-equivalent to it.
    pub core: Instance,
    /// A homomorphism from the input onto the core (the composition of
    /// the folding steps). Identity on the core's own values.
    pub retraction: Substitution,
}

/// Result of [`core_of_budgeted`]: the (possibly partial) minimization,
/// the aggregated search work, and whether every fold test completed.
#[derive(Debug, Clone)]
pub struct CoreOutcome {
    /// The minimized instance and retraction. When [`Self::complete`] is
    /// false this is still a sound retract of the input (hom-equivalent
    /// sub-instance), just not necessarily minimal.
    pub result: CoreResult,
    /// Aggregated homomorphism-search counters over all fold tests.
    pub stats: HomStats,
    /// `true` when no fold test was cut short by the budget, i.e. the
    /// result really is the core.
    pub complete: bool,
}

/// Compute the core of `instance`.
///
/// Worst-case exponential (it performs homomorphism searches), but fast
/// on chase results, whose redundancy is shallow.
pub fn core_of(instance: &Instance) -> CoreResult {
    core_of_budgeted(instance, &HomConfig::default()).result
}

/// Compute the core of `instance` under per-search budgets.
///
/// A fold test cut short by the budget is conservatively treated as
/// "cannot fold" — the returned instance is then a hom-equivalent
/// retract of the input but possibly not minimal, and
/// [`CoreOutcome::complete`] is `false`. Folding steps preserve
/// hom-equivalence individually, so partial minimization is still sound
/// wherever only the equivalence class matters (e.g. the arrow cache).
pub fn core_of_budgeted(instance: &Instance, config: &HomConfig) -> CoreOutcome {
    let span = rde_obs::span("hom.core_min", &[("facts_in", instance.len().into())]);
    let mut current = instance.clone();
    let mut retraction = Substitution::new();
    let mut stats = HomStats::default();
    let mut complete = true;
    let mut attempts: u64 = 0;
    let mut folds: u64 = 0;
    'outer: loop {
        // Only facts containing nulls can ever be folded away: an
        // all-constant fact must map to itself. The pattern is compiled
        // once per round; within a round failed candidates are
        // reinserted, so it stays an exact picture of `current`.
        let round_facts: Vec<Fact> = current.facts().collect();
        let (pattern, var_nulls) = instance_pattern(&current);
        let candidates: Vec<&Fact> = round_facts.iter().filter(|f| f.has_null()).collect();
        for f in candidates {
            attempts += 1;
            current.remove_fact(f);
            let mut witness: Option<Vec<Option<rde_model::Value>>> = None;
            let report = pattern.for_each_match(&current, &[], config, |assignment| {
                witness = Some(assignment.to_vec());
                false
            });
            stats += report.stats;
            if let Some(assignment) = witness {
                let h: Substitution = var_nulls
                    .iter()
                    .zip(&assignment)
                    .map(|(&n, v)| (n, v.expect("full match binds every null")))
                    .collect();
                // The image h(I) ⊆ I ∖ {f}: drop everything outside it
                // in place instead of rebuilding the instance.
                let image: FxHashSet<Fact> =
                    round_facts.iter().map(|g| g.map_values(|v| h.apply(v))).collect();
                for g in &round_facts {
                    if !image.contains(g) {
                        current.remove_fact(g);
                    }
                }
                retraction = retraction.then(&h);
                folds += 1;
                continue 'outer;
            }
            if !report.complete() {
                complete = false;
            }
            current.insert(f.clone());
        }
        rde_obs::counter!("hom.core.fold_attempts").add(attempts);
        rde_obs::counter!("hom.core.folds").add(folds);
        span.close_with(&[
            ("facts_out", current.len().into()),
            ("attempts", attempts.into()),
            ("folds", folds.into()),
            ("nodes", stats.nodes.into()),
            ("complete", complete.into()),
        ]);
        return CoreOutcome { result: CoreResult { core: current, retraction }, stats, complete };
    }
}

/// Reference implementation of [`core_of`]: the textbook loop that
/// rebuilds `I ∖ {f}` per candidate and `h(I)` per fold. Kept for
/// differential testing and as the "before" side of the `BENCH_hom`
/// core-minimization baseline; use [`core_of`] everywhere else.
pub fn core_of_quadratic(instance: &Instance) -> CoreResult {
    let mut current = instance.clone();
    let mut retraction = Substitution::new();
    'outer: loop {
        let candidates: Vec<_> = current.facts().filter(|f| f.has_null()).collect();
        for f in candidates {
            let smaller = current.without_fact(&f);
            if let Some(h) = crate::search::find_hom(&current, &smaller) {
                current = h.apply_instance(&current);
                retraction = retraction.then(&h);
                continue 'outer;
            }
        }
        return CoreResult { core: current, retraction };
    }
}

/// Is `instance` its own core (no homomorphism into a proper
/// sub-instance)?
pub fn is_core(instance: &Instance) -> bool {
    let (pattern, _) = instance_pattern(instance);
    let mut current = instance.clone();
    let candidates: Vec<Fact> = instance.facts().filter(|f| f.has_null()).collect();
    for f in candidates {
        current.remove_fact(&f);
        let mut found = false;
        pattern.for_each_match(&current, &[], &HomConfig::default(), |_| {
            found = true;
            false
        });
        current.insert(f);
        if found {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hom_equivalent, is_isomorphic};
    use rde_model::{ConstId, Fact, NullId, RelId, Value};

    fn c(i: u32) -> Value {
        Value::Const(ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }
    fn inst(facts: &[(u32, &[Value])]) -> Instance {
        facts.iter().map(|(r, args)| Fact::new(RelId(*r), args.to_vec())).collect()
    }

    #[test]
    fn ground_instances_are_their_own_core() {
        let i = inst(&[(0, &[c(0), c(1)]), (1, &[c(2)])]);
        assert!(is_core(&i));
        let r = core_of(&i);
        assert_eq!(r.core, i);
        assert!(r.retraction.is_empty());
    }

    #[test]
    fn redundant_null_fact_is_folded() {
        // {P(a,b), P(a,X)} has core {P(a,b)}.
        let i = inst(&[(0, &[c(0), c(1)]), (0, &[c(0), n(0)])]);
        assert!(!is_core(&i));
        let r = core_of(&i);
        assert_eq!(r.core, inst(&[(0, &[c(0), c(1)])]));
        assert_eq!(r.retraction.apply(n(0)), c(1));
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn non_redundant_nulls_survive() {
        // {Q(a,X), Q(X,b)} is a core: dropping either fact loses structure.
        let i = inst(&[(0, &[c(0), n(0)]), (0, &[n(0), c(1)])]);
        assert!(is_core(&i));
        assert_eq!(core_of(&i).core, i);
    }

    #[test]
    fn null_chain_folds_onto_constant_cycle() {
        // Edges with fresh nulls alongside a constant loop: everything
        // folds onto the loop.
        let i =
            inst(&[(0, &[c(0), c(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (0, &[n(2), n(0)])]);
        let r = core_of(&i);
        assert_eq!(r.core, inst(&[(0, &[c(0), c(0)])]));
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn retraction_maps_input_onto_core() {
        let i =
            inst(&[(0, &[c(0), n(0)]), (0, &[c(0), c(1)]), (1, &[n(0), n(1)]), (1, &[c(1), n(2)])]);
        let r = core_of(&i);
        assert!(is_core(&r.core));
        assert!(hom_equivalent(&i, &r.core));
        assert_eq!(r.retraction.apply_instance(&i), r.core);
        assert!(r.core.is_subset_of(&i));
    }

    #[test]
    fn all_null_clique_has_singleton_loop_core() {
        // Complete directed graph on two nulls including self-loops:
        // core is a single loop on one null.
        let i =
            inst(&[(0, &[n(0), n(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(0)]), (0, &[n(1), n(1)])]);
        let r = core_of(&i);
        assert_eq!(r.core.len(), 1);
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn empty_instance_core() {
        let r = core_of(&Instance::new());
        assert!(r.core.is_empty());
        assert!(is_core(&Instance::new()));
    }

    #[test]
    fn incremental_agrees_with_quadratic_reference() {
        // Cores are unique up to isomorphism; the two implementations
        // may pick different (isomorphic) sub-instances.
        let cases = [
            inst(&[(0, &[c(0), c(1)]), (0, &[c(0), n(0)])]),
            inst(&[(0, &[c(0), n(0)]), (0, &[n(0), c(1)])]),
            inst(&[(0, &[c(0), c(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (0, &[n(2), n(0)])]),
            inst(&[(0, &[n(0), n(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(0)]), (0, &[n(1), n(1)])]),
            inst(&[(0, &[c(0), n(0)]), (0, &[c(0), c(1)]), (1, &[n(0), n(1)]), (1, &[c(1), n(2)])]),
            Instance::new(),
        ];
        for i in &cases {
            let fast = core_of(i);
            let slow = core_of_quadratic(i);
            assert!(is_isomorphic(&fast.core, &slow.core), "{i:?}");
            assert_eq!(slow.retraction.apply_instance(i), slow.core);
            assert_eq!(fast.retraction.apply_instance(i), fast.core);
        }
    }

    #[test]
    fn budgeted_core_degrades_to_a_sound_retract() {
        let i =
            inst(&[(0, &[c(0), c(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (0, &[n(2), n(0)])]);
        // Unbounded: complete, minimal.
        let full = core_of_budgeted(&i, &HomConfig::default());
        assert!(full.complete);
        assert!(full.stats.nodes > 0);
        assert!(is_core(&full.result.core));
        // Budget 0: nothing can be tested, so nothing folds — but the
        // result is still a sound (here: trivial) retract.
        let cfg = HomConfig { node_budget: Some(0), ..HomConfig::default() };
        let cut = core_of_budgeted(&i, &cfg);
        assert!(!cut.complete);
        assert_eq!(cut.result.core, i);
        assert!(hom_equivalent(&i, &cut.result.core));
    }
}
