//! Cores: minimum retracts of instances.
//!
//! The **core** of an instance `I` is a minimal sub-instance `C ⊆ I`
//! with `I → C`. Cores are unique up to isomorphism and give canonical
//! representatives of homomorphic-equivalence classes — the natural
//! normal form for the paper's framework, where chase-inverses recover
//! sources only up to homomorphic equivalence (Theorem 3.17) and
//! extended universal solutions are compared by `→` (Definition 3.5).
//!
//! The algorithm repeatedly looks for a homomorphism from `I` into
//! `I ∖ {f}` for some fact `f`; if one exists, the image is a strictly
//! smaller hom-equivalent sub-instance and we recurse. When no single
//! fact can be dropped, no proper sub-instance admits a homomorphism at
//! all (any such sub-instance is contained in some `I ∖ {f}`), so the
//! result is the core.

use rde_model::{Instance, Substitution};

use crate::search::{exists_hom, find_hom};

/// Result of [`core_of`]: the core and a retraction onto it.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// The core: a sub-instance of the input, hom-equivalent to it.
    pub core: Instance,
    /// A homomorphism from the input onto the core (the composition of
    /// the folding steps). Identity on the core's own values.
    pub retraction: Substitution,
}

/// Compute the core of `instance`.
///
/// Worst-case exponential (it performs homomorphism searches), but fast
/// on chase results, whose redundancy is shallow.
pub fn core_of(instance: &Instance) -> CoreResult {
    let mut current = instance.clone();
    let mut retraction = Substitution::new();
    'outer: loop {
        // Only facts containing nulls can ever be folded away: an
        // all-constant fact must map to itself.
        let candidates: Vec<_> = current.facts().filter(|f| f.has_null()).collect();
        for f in candidates {
            let smaller = current.without_fact(&f);
            if let Some(h) = find_hom(&current, &smaller) {
                current = h.apply_instance(&current);
                retraction = retraction.then(&h);
                continue 'outer;
            }
        }
        return CoreResult { core: current, retraction };
    }
}

/// Is `instance` its own core (no homomorphism into a proper
/// sub-instance)?
pub fn is_core(instance: &Instance) -> bool {
    instance
        .facts()
        .filter(|f| f.has_null())
        .all(|f| !exists_hom(instance, &instance.without_fact(&f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom_equivalent;
    use rde_model::{ConstId, Fact, NullId, RelId, Value};

    fn c(i: u32) -> Value {
        Value::Const(ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }
    fn inst(facts: &[(u32, &[Value])]) -> Instance {
        facts.iter().map(|(r, args)| Fact::new(RelId(*r), args.to_vec())).collect()
    }

    #[test]
    fn ground_instances_are_their_own_core() {
        let i = inst(&[(0, &[c(0), c(1)]), (1, &[c(2)])]);
        assert!(is_core(&i));
        let r = core_of(&i);
        assert_eq!(r.core, i);
        assert!(r.retraction.is_empty());
    }

    #[test]
    fn redundant_null_fact_is_folded() {
        // {P(a,b), P(a,X)} has core {P(a,b)}.
        let i = inst(&[(0, &[c(0), c(1)]), (0, &[c(0), n(0)])]);
        assert!(!is_core(&i));
        let r = core_of(&i);
        assert_eq!(r.core, inst(&[(0, &[c(0), c(1)])]));
        assert_eq!(r.retraction.apply(n(0)), c(1));
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn non_redundant_nulls_survive() {
        // {Q(a,X), Q(X,b)} is a core: dropping either fact loses structure.
        let i = inst(&[(0, &[c(0), n(0)]), (0, &[n(0), c(1)])]);
        assert!(is_core(&i));
        assert_eq!(core_of(&i).core, i);
    }

    #[test]
    fn null_chain_folds_onto_constant_cycle() {
        // Edges with fresh nulls alongside a constant loop: everything
        // folds onto the loop.
        let i =
            inst(&[(0, &[c(0), c(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (0, &[n(2), n(0)])]);
        let r = core_of(&i);
        assert_eq!(r.core, inst(&[(0, &[c(0), c(0)])]));
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn retraction_maps_input_onto_core() {
        let i =
            inst(&[(0, &[c(0), n(0)]), (0, &[c(0), c(1)]), (1, &[n(0), n(1)]), (1, &[c(1), n(2)])]);
        let r = core_of(&i);
        assert!(is_core(&r.core));
        assert!(hom_equivalent(&i, &r.core));
        assert_eq!(r.retraction.apply_instance(&i), r.core);
        assert!(r.core.is_subset_of(&i));
    }

    #[test]
    fn all_null_clique_has_singleton_loop_core() {
        // Complete directed graph on two nulls including self-loops:
        // core is a single loop on one null.
        let i =
            inst(&[(0, &[n(0), n(0)]), (0, &[n(0), n(1)]), (0, &[n(1), n(0)]), (0, &[n(1), n(1)])]);
        let r = core_of(&i);
        assert_eq!(r.core.len(), 1);
        assert!(hom_equivalent(&i, &r.core));
    }

    #[test]
    fn empty_instance_core() {
        let r = core_of(&Instance::new());
        assert!(r.core.is_empty());
        assert!(is_core(&Instance::new()));
    }
}
