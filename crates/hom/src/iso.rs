//! Isomorphism of instances: a null-renaming bijection.
//!
//! Two instances are isomorphic when some bijective renaming of nulls
//! (constants fixed) maps one exactly onto the other. This is the
//! "equality" under which chase results are canonical: the chase is
//! deterministic only up to the choice of fresh nulls, and cores of
//! hom-equivalent instances are unique up to isomorphism. The engines
//! use isomorphism to compare canonical artifacts without depending on
//! null identities.

use rde_model::fx::FxHashSet;
use rde_model::{Instance, Substitution, Value};

use crate::search::{for_each_hom, HomConfig};

/// Find an isomorphism from `a` onto `b`, if one exists: an injective
/// homomorphism whose image is exactly `b`.
///
/// Strategy: enumerate homomorphisms `a → b` and keep the first that is
/// injective on nulls and maps `a` onto all of `b`. Since `a → b`
/// injectively-onto forces `|a| = |b|`, we reject early on size or
/// active-domain mismatch.
pub fn find_iso(a: &Instance, b: &Instance) -> Option<Substitution> {
    if a.len() != b.len() {
        return None;
    }
    let a_dom = a.active_domain();
    let b_dom = b.active_domain();
    if a_dom.len() != b_dom.len() {
        return None;
    }
    // Same constants on both sides (constants are fixed points).
    let a_consts: FxHashSet<Value> = a_dom.iter().copied().filter(|v| v.is_const()).collect();
    let b_consts: FxHashSet<Value> = b_dom.iter().copied().filter(|v| v.is_const()).collect();
    if a_consts != b_consts {
        return None;
    }
    let mut found = None;
    for_each_hom(a, b, &Substitution::new(), &HomConfig::default(), |sub| {
        // Injective on nulls?
        let mut images = FxHashSet::default();
        let injective = sub.iter().all(|(_, img)| images.insert(img));
        if !injective {
            return true;
        }
        // Surjective on facts? (|a| = |b| and injectivity make the
        // image exactly |b| facts iff no two facts collide, which
        // injectivity on values guarantees.)
        let image = sub.apply_instance(a);
        if image == *b {
            found = Some(sub.clone());
            return false;
        }
        true
    });
    found
}

/// Are `a` and `b` isomorphic (equal up to a bijective null renaming)?
pub fn is_isomorphic(a: &Instance, b: &Instance) -> bool {
    find_iso(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_model::{ConstId, Fact, NullId, RelId};

    fn c(i: u32) -> Value {
        Value::Const(ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }
    fn inst(facts: &[(u32, &[Value])]) -> Instance {
        facts.iter().map(|(r, args)| Fact::new(RelId(*r), args.to_vec())).collect()
    }

    #[test]
    fn equal_instances_are_isomorphic() {
        let a = inst(&[(0, &[c(0), n(0)]), (1, &[n(0)])]);
        assert!(is_isomorphic(&a, &a));
        let id = find_iso(&a, &a).unwrap();
        // The identity (or some automorphism) maps a onto a.
        assert_eq!(id.apply_instance(&a), a);
    }

    #[test]
    fn null_renaming_is_isomorphic() {
        let a = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(0)])]);
        let b = inst(&[(0, &[n(7), n(9)]), (0, &[n(9), n(7)])]);
        let iso = find_iso(&a, &b).unwrap();
        assert_eq!(iso.apply_instance(&a), b);
    }

    #[test]
    fn hom_equivalent_but_not_isomorphic() {
        // {P(a,a)} vs {P(a,a), P(a,X)}: hom-equivalent, different sizes.
        let a = inst(&[(0, &[c(0), c(0)])]);
        let b = inst(&[(0, &[c(0), c(0)]), (0, &[c(0), n(0)])]);
        assert!(crate::hom_equivalent(&a, &b));
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn folding_is_not_an_isomorphism() {
        // Same size, but the only homs fold two nulls together.
        let a = inst(&[(0, &[n(0), n(1)])]);
        let b = inst(&[(0, &[n(5), n(5)])]);
        assert!(crate::exists_hom(&a, &b));
        assert!(!is_isomorphic(&a, &b));
        // And in the other direction the hom is injective but not onto
        // the two distinct-null positions... sizes match, domains don't.
        assert!(!is_isomorphic(&b, &a));
    }

    #[test]
    fn constants_must_match_exactly() {
        let a = inst(&[(0, &[c(0)])]);
        let b = inst(&[(0, &[c(1)])]);
        assert!(!is_isomorphic(&a, &b));
        let b2 = inst(&[(0, &[n(0)])]);
        assert!(!is_isomorphic(&a, &b2), "a constant cannot be renamed to a null");
    }

    #[test]
    fn empty_instances_are_isomorphic() {
        assert!(is_isomorphic(&Instance::new(), &Instance::new()));
    }

    #[test]
    fn chase_style_outputs_compare_up_to_fresh_null_choice() {
        // Two runs inventing different nulls: Q(a,Z1),Q(Z1,b) vs
        // Q(a,Z9),Q(Z9,b).
        let run1 = inst(&[(0, &[c(0), n(1)]), (0, &[n(1), c(1)])]);
        let run2 = inst(&[(0, &[c(0), n(9)]), (0, &[n(9), c(1)])]);
        assert!(is_isomorphic(&run1, &run2));
    }
}
