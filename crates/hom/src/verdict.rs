//! Three-valued verdicts for budgeted homomorphism decisions.
//!
//! Deciding `I₁ → I₂` is NP-complete, so every caller that cares about
//! latency runs the search under a resource budget. A budgeted decision
//! has three outcomes, not two: the search may prove the homomorphism,
//! refute it, or run out of budget first. [`Verdict`] makes the third
//! outcome a first-class value instead of a panic or an error the
//! unbounded paths must pretend to handle — `rde-chase` and `rde-core`
//! propagate `Unknown` up to their own reports so a too-hard instance
//! degrades gracefully.

use std::fmt;
use std::time::Duration;

/// The resource that cut a search short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// The node budget ran out: the configured number of candidate-tuple
    /// unification attempts (see
    /// [`HomConfig::node_budget`](crate::HomConfig::node_budget)) were
    /// spent without completing the search.
    Nodes(u64),
    /// The wall-clock budget ran out (see
    /// [`HomConfig::time_budget`](crate::HomConfig::time_budget)).
    Time(Duration),
    /// The search was cooperatively cancelled (see
    /// [`HomConfig::ctx`](crate::HomConfig::ctx)) — by an explicit
    /// request, an elapsed external deadline, or Ctrl-C.
    Cancelled,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Nodes(n) => write!(f, "node budget of {n} exhausted"),
            Exhausted::Time(d) => write!(f, "time budget of {d:?} exhausted"),
            Exhausted::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Outcome of a budgeted three-valued decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property definitely holds (a witness was found).
    Holds,
    /// The property definitely fails (the search space was exhausted).
    Fails,
    /// The budget ran out before the search could decide either way.
    Unknown {
        /// The resource that ran out.
        budget: Exhausted,
    },
}

impl Verdict {
    /// Lift a definite boolean into a verdict.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Verdict::Holds
        } else {
            Verdict::Fails
        }
    }

    /// Does the property definitely hold?
    pub fn holds(self) -> bool {
        self == Verdict::Holds
    }

    /// Does the property definitely fail?
    pub fn fails(self) -> bool {
        self == Verdict::Fails
    }

    /// Did the budget run out before a decision?
    pub fn is_unknown(self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// Three-valued (Kleene) conjunction: a definite `Fails` dominates,
    /// otherwise any `Unknown` taints the result.
    pub fn and(self, other: Verdict) -> Verdict {
        match (self, other) {
            (Verdict::Fails, _) | (_, Verdict::Fails) => Verdict::Fails,
            (u @ Verdict::Unknown { .. }, _) | (_, u @ Verdict::Unknown { .. }) => u,
            (Verdict::Holds, Verdict::Holds) => Verdict::Holds,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails => write!(f, "fails"),
            Verdict::Unknown { budget } => write!(f, "unknown ({budget})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_budget() {
        let v = Verdict::Unknown { budget: Exhausted::Nodes(42) };
        assert!(v.to_string().contains("42"));
        let t = Verdict::Unknown { budget: Exhausted::Time(Duration::from_millis(7)) };
        assert!(t.to_string().contains("unknown"));
        assert_eq!(Verdict::Holds.to_string(), "holds");
        assert_eq!(Verdict::Fails.to_string(), "fails");
    }

    #[test]
    fn kleene_conjunction() {
        let u = Verdict::Unknown { budget: Exhausted::Nodes(1) };
        assert_eq!(Verdict::Holds.and(Verdict::Holds), Verdict::Holds);
        assert_eq!(Verdict::Holds.and(Verdict::Fails), Verdict::Fails);
        assert_eq!(u.and(Verdict::Fails), Verdict::Fails, "a definite no beats unknown");
        assert_eq!(u.and(Verdict::Holds), u);
        assert_eq!(Verdict::Holds.and(u), u);
        assert!(u.is_unknown() && !u.holds() && !u.fails());
        assert!(Verdict::from_bool(true).holds());
        assert!(Verdict::from_bool(false).fails());
    }
}
