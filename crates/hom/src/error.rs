//! Error type for the homomorphism engine.

use std::fmt;

/// Errors from homomorphism search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomError {
    /// The configured node budget was exhausted before the search could
    /// decide. The caller may retry with a larger budget; the default
    /// configuration is unbounded and complete.
    NodeBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for HomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomError::NodeBudgetExhausted { budget } => {
                write!(f, "homomorphism search exceeded its node budget of {budget}")
            }
        }
    }
}

impl std::error::Error for HomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_budget() {
        assert!(HomError::NodeBudgetExhausted { budget: 42 }.to_string().contains("42"));
    }
}
