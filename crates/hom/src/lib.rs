//! # rde-hom
//!
//! The homomorphism engine for reverse data exchange.
//!
//! The whole PODS 2009 framework is built on the homomorphism relation
//! `I₁ → I₂` (Definition 3.1): a function on values that fixes every
//! constant, maps nulls anywhere, and maps facts to facts. The paper
//! systematically replaces the containment relation `⊆` of earlier work
//! by `→`; the extended identity mapping *is* `→`, extended solutions are
//! `→ ∘ M ∘ →`, and `→_M` compares chase results by `→`.
//!
//! Deciding `I₁ → I₂` is NP-complete in general (it subsumes graph
//! homomorphism), so this crate implements a CSP-style backtracking
//! search with:
//!
//! * per-column posting-list indexes from `rde-model` to enumerate
//!   candidate target tuples for a partially bound fact;
//! * dynamic fail-first fact ordering (cheapest-candidate-set next);
//! * node and wall-clock budgets for callers that need interruptible
//!   search — exhaustion is a completion *status* on the returned
//!   [`SearchReport`], folded into a three-valued [`Verdict`]
//!   (`Holds` / `Fails` / `Unknown`) by the budgeted deciders, never a
//!   panic.
//!
//! Both optimizations can be disabled through [`HomConfig`] — the
//! ablation benchmarks measure exactly that gap.
//!
//! On top of the search the crate provides homomorphic equivalence and
//! the **core** (minimum retract) of an instance, which canonicalizes
//! instances up to homomorphic equivalence — the right notion of
//! "same instance" in the paper's framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_min;
mod equivalence;
mod iso;
mod search;
mod verdict;

pub use core_min::{
    core_of, core_of_budgeted, core_of_quadratic, is_core, CoreOutcome, CoreResult,
};
pub use equivalence::{hom_equivalent, hom_equivalent_budgeted, hom_equivalent_with};
pub use iso::{find_iso, is_isomorphic};
pub use search::{
    count_homs, exists_hom, exists_hom_budgeted, find_hom, find_hom_budgeted, find_hom_seeded,
    for_each_hom, instance_pattern, CompiledPattern, HomConfig, HomStats, PatArg, PatternAtom,
    SearchReport,
};
pub use verdict::{Exhausted, Verdict};
