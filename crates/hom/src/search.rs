//! Backtracking homomorphism search.
//!
//! A homomorphism from `I₁` to `I₂` (Definition 3.1) fixes constants and
//! maps nulls so that every fact of `I₁` lands in `I₂`. We treat the
//! nulls of `I₁` as CSP variables and the facts of `I₁` as constraints,
//! and solve fact-at-a-time: pick an uncovered source fact, enumerate the
//! target tuples it can map onto (via the column posting lists of the
//! bound positions), unify, recurse.
//!
//! Every search runs under [`HomConfig`]'s (optional) node and
//! wall-clock budgets. Exhausting a budget is not an error: it is a
//! completion status on the returned [`SearchReport`], and the budgeted
//! deciders ([`exists_hom_budgeted`], [`find_hom_budgeted`]) fold it
//! into a three-valued [`Verdict`]. The unbounded wrappers
//! ([`exists_hom`], [`find_hom`], [`count_homs`]) stay infallible by
//! construction — an unbounded search has no budget to exhaust, so
//! there is no panic path to pretend-handle.

use std::time::{Duration, Instant};

use rde_faults::ExecContext;
use rde_model::fx::FxHashMap;
use rde_model::{Instance, NullId, RelationData, Substitution, Value};

use crate::verdict::{Exhausted, Verdict};

/// How many nodes pass between wall-clock checks: `Instant::now()` is
/// much more expensive than a unification attempt, so the deadline is
/// polled on a stride. Time budgets are therefore enforced with a
/// granularity of `TIME_CHECK_STRIDE` nodes.
const TIME_CHECK_STRIDE: u64 = 256;

/// Search configuration. The default is complete (no budgets) and fully
/// optimized; the two flags exist for the ablation benchmarks.
#[derive(Debug, Clone)]
pub struct HomConfig {
    /// Node budget: the maximum number of candidate-tuple unification
    /// attempts. `None` = run to completion.
    ///
    /// **Semantics (exact):** the counter is incremented *before* each
    /// attempt and the search stops when `nodes > budget`, so
    /// `node_budget = Some(N)` permits **exactly N** unification
    /// attempts; the (N+1)-th attempt is cut before it unifies. In
    /// particular `Some(0)` stops before the first attempt, and a search
    /// whose complete run needs exactly N nodes finishes untruncated
    /// under `Some(N)`. On exhaustion the reported
    /// [`HomStats::nodes`] reads `N + 1` (the aborted attempt was
    /// counted, not performed). Boundary tests pin this down so the
    /// semantics cannot drift as budgets thread through chase and core.
    pub node_budget: Option<u64>,
    /// Wall-clock budget for one search. `None` = no deadline. Checked
    /// every [`TIME_CHECK_STRIDE`] nodes, so very short searches may
    /// finish before the first check.
    pub time_budget: Option<Duration>,
    /// Use per-column posting lists to enumerate candidate tuples
    /// (`false` = scan the whole target relation per fact).
    pub use_index: bool,
    /// Dynamically pick the next source fact with the fewest candidates
    /// (`false` = fixed left-to-right order).
    pub dynamic_order: bool,
    /// Scoped execution context: its cancel token is polled at search
    /// entry and then every [`TIME_CHECK_STRIDE`] nodes alongside the
    /// deadline check (a cancelled search reports
    /// [`Exhausted::Cancelled`]), and its fault injector drives the
    /// `hom.search.exhaust` injection point. The default context is
    /// inert and costs one pointer-sized check per poll.
    pub ctx: ExecContext,
}

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig {
            node_budget: None,
            time_budget: None,
            use_index: true,
            dynamic_order: true,
            ctx: ExecContext::default(),
        }
    }
}

/// Search counters, reported by [`for_each_hom`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Candidate tuple unification attempts.
    pub nodes: u64,
    /// Failed unifications (a proxy for backtracking work).
    pub backtracks: u64,
    /// Homomorphisms reported to the callback.
    pub found: u64,
}

impl HomStats {
    /// Accumulate another search's counters (used by the chase and the
    /// core checkers to aggregate per-top-level-check totals).
    pub fn merge(&mut self, other: HomStats) {
        self.nodes += other.nodes;
        self.backtracks += other.backtracks;
        self.found += other.found;
    }
}

impl std::ops::AddAssign for HomStats {
    fn add_assign(&mut self, other: HomStats) {
        self.merge(other);
    }
}

/// What a search did and whether it ran to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchReport {
    /// Work counters for this search.
    pub stats: HomStats,
    /// `Some` when a budget cut the enumeration short: any matches
    /// reported before the cut are valid, but the enumeration is
    /// incomplete (absence of a match proves nothing). `None` means the
    /// search ran to completion (or was stopped by the callback, which
    /// is a *caller* decision, not a budget one).
    pub exhausted: Option<Exhausted>,
}

impl SearchReport {
    /// Did the search run to completion (no budget cut)?
    pub fn complete(&self) -> bool {
        self.exhausted.is_none()
    }
}

/// One argument of a pattern atom: already-fixed value or variable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatArg {
    /// A value that must match exactly (a constant, or a pre-resolved
    /// null of the *target*).
    Fixed(Value),
    /// A pattern variable, identified by its dense slot index.
    Var(u32),
}

/// One atom `R(a₁, …, aₖ)` of a [`CompiledPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternAtom {
    /// Relation symbol to match in the target.
    pub rel: rde_model::RelId,
    /// Argument pattern.
    pub args: Vec<PatArg>,
}

/// A conjunction of atoms over dense variable slots, compiled once and
/// matched against many (growing) targets.
///
/// This is the allocation-free core the chase builds its premise plans
/// on: compiling replaces the freeze-into-`Instance` + null-offset
/// dance [`for_each_hom`] needs, because slots are pattern-local —
/// they can never collide with target nulls, so no per-call offset
/// scan exists at all.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    atoms: Vec<PatternAtom>,
    n_vars: u32,
}

impl CompiledPattern {
    /// Compile a pattern. Slot indices may be sparse; the variable
    /// space is sized by the largest index used.
    pub fn new(atoms: Vec<PatternAtom>) -> Self {
        let n_vars = atoms
            .iter()
            .flat_map(|a| &a.args)
            .filter_map(|a| match *a {
                PatArg::Var(v) => Some(v + 1),
                PatArg::Fixed(_) => None,
            })
            .max()
            .unwrap_or(0);
        CompiledPattern { atoms, n_vars }
    }

    /// Number of variable slots (one past the largest used index).
    pub fn num_vars(&self) -> usize {
        self.n_vars as usize
    }

    /// The compiled atoms.
    pub fn atoms(&self) -> &[PatternAtom] {
        &self.atoms
    }

    /// Enumerate matches of the pattern into `target` extending `seed`
    /// (`seed[v]` pre-binds slot `v`; missing/`None` entries are free).
    /// The callback sees the full slot assignment and returns `false`
    /// to stop. Returns the search report (stats + completion status).
    pub fn for_each_match(
        &self,
        target: &Instance,
        seed: &[Option<Value>],
        config: &HomConfig,
        on_found: impl FnMut(&[Option<Value>]) -> bool,
    ) -> SearchReport {
        self.for_each_match_excluding(None, target, seed, config, on_found)
    }

    /// Like [`Self::for_each_match`], but atom `skip` (if any) is taken
    /// as already matched: the search covers only the remaining atoms.
    /// The caller must have seeded every variable of the skipped atom —
    /// this is the semi-naive chase's delta seeding, where one atom is
    /// unified with a delta fact and the rest are matched against the
    /// full instance.
    pub fn for_each_match_excluding(
        &self,
        skip: Option<usize>,
        target: &Instance,
        seed: &[Option<Value>],
        config: &HomConfig,
        on_found: impl FnMut(&[Option<Value>]) -> bool,
    ) -> SearchReport {
        static EMPTY: std::sync::OnceLock<RelationData> = std::sync::OnceLock::new();
        let empty = EMPTY.get_or_init(RelationData::default);
        let facts: Vec<PatternFact<'_>> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != skip)
            .map(|(_, a)| PatternFact {
                rel_data: target.relation(a.rel).unwrap_or(empty),
                args: &a.args,
            })
            .collect();
        let mut vals: Vec<Option<Value>> = vec![None; self.n_vars as usize];
        for (slot, &v) in seed.iter().enumerate().take(vals.len()) {
            vals[slot] = v;
        }
        let mut searcher = Searcher {
            facts,
            vals,
            config,
            deadline: config.time_budget.map(|d| Instant::now() + d),
            stats: HomStats::default(),
            trail: Vec::new(),
            prunes: 0,
            buckets_scanned: 0,
            buckets_skipped: 0,
            exhausted: None,
            on_found,
        };
        // Entry checks give cancellation a per-*search* granularity even
        // when every individual search is far shorter than one node
        // stride (the chase fires thousands of tiny premise matches).
        // The injection point simulates spurious budget exhaustion for
        // the resilience suite; both paths still flush metrics below.
        if config.ctx.should_inject("hom.search.exhaust") {
            searcher.exhausted = Some(Exhausted::Nodes(0));
        } else if config.ctx.is_cancelled() {
            searcher.exhausted = Some(Exhausted::Cancelled);
        } else {
            let mut remaining: Vec<usize> = (0..searcher.facts.len()).collect();
            searcher.solve(&mut remaining);
        }
        // Every homomorphism search in the system (chase premise
        // matching, hom deciders, core minimization) funnels through
        // here, so this is the single metrics flush point for the
        // engine. One relaxed atomic add per counter per *search*, not
        // per node — invisible next to the search itself.
        rde_obs::counter!("hom.search.searches").inc();
        rde_obs::counter!("hom.search.nodes").add(searcher.stats.nodes);
        rde_obs::counter!("hom.search.backtracks").add(searcher.stats.backtracks);
        rde_obs::counter!("hom.search.found").add(searcher.stats.found);
        rde_obs::counter!("hom.search.prunes").add(searcher.prunes);
        rde_obs::counter!("chase.bucket.scanned").add(searcher.buckets_scanned);
        rde_obs::counter!("chase.bucket.skipped").add(searcher.buckets_skipped);
        if searcher.exhausted.is_some() {
            rde_obs::counter!("hom.search.exhausted").inc();
        }
        SearchReport { stats: searcher.stats, exhausted: searcher.exhausted }
    }
}

struct PatternFact<'a> {
    rel_data: &'a RelationData,
    args: &'a [PatArg],
}

struct Searcher<'a, F: FnMut(&[Option<Value>]) -> bool> {
    facts: Vec<PatternFact<'a>>,
    /// Variable assignment: `vals[v]` is the image of slot `v`.
    vals: Vec<Option<Value>>,
    config: &'a HomConfig,
    /// Wall-clock cutoff derived from [`HomConfig::time_budget`].
    deadline: Option<Instant>,
    stats: HomStats,
    /// Scratch undo stack of bound slots, shared across the whole
    /// search: each node records a mark and truncates back to it,
    /// instead of allocating a fresh trail per candidate row.
    trail: Vec<u32>,
    /// Forward-check prunes: picks where some remaining fact already
    /// had zero candidate rows, cutting the branch without expanding
    /// it. Flushed to the `hom.search.prunes` metric (deliberately not
    /// part of [`HomStats`], whose layout is pinned by boundary tests).
    prunes: u64,
    /// Null-pattern buckets touched / pruned while generating candidate
    /// rows (columnar backend only; both stay 0 on the row store).
    /// Flushed to `chase.bucket.scanned` / `chase.bucket.skipped`.
    buckets_scanned: u64,
    buckets_skipped: u64,
    /// Set when a budget cut the search short.
    exhausted: Option<Exhausted>,
    /// Callback; returns `false` to stop enumerating.
    on_found: F,
}

impl<F: FnMut(&[Option<Value>]) -> bool> Searcher<'_, F> {
    /// Returns `true` if enumeration should stop (callback said stop,
    /// or a budget was exhausted — see [`Self::exhausted`]).
    fn solve(&mut self, remaining: &mut Vec<usize>) -> bool {
        let Some(slot) = self.pick(remaining) else {
            // All facts covered: report the match.
            self.stats.found += 1;
            return !(self.on_found)(&self.vals);
        };
        let fact_idx = remaining.swap_remove(slot);
        let rows = self.candidate_rows(fact_idx);
        let stopped = self.try_rows(fact_idx, rows, remaining);
        remaining.push(fact_idx);
        let last = remaining.len() - 1;
        remaining.swap(slot, last);
        stopped
    }

    fn try_rows(&mut self, fact_idx: usize, rows: Rows, remaining: &mut Vec<usize>) -> bool {
        let n_rows = match &rows {
            Rows::All(n) => *n,
            Rows::Some(v) => v.len(),
        };
        rde_obs::histogram!("chase.match.candidates").record(n_rows as u64);
        for i in 0..n_rows {
            let row = match &rows {
                Rows::All(_) => i as u32,
                Rows::Some(v) => v[i],
            };
            // Budget check: increment first, then compare, so a budget
            // of N permits exactly N unification attempts (see
            // [`HomConfig::node_budget`]).
            self.stats.nodes += 1;
            if let Some(budget) = self.config.node_budget {
                if self.stats.nodes > budget {
                    self.exhausted = Some(Exhausted::Nodes(budget));
                    return true;
                }
            }
            if self.stats.nodes.is_multiple_of(TIME_CHECK_STRIDE) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        let budget = self.config.time_budget.unwrap_or_default();
                        self.exhausted = Some(Exhausted::Time(budget));
                        return true;
                    }
                }
                if self.config.ctx.is_cancelled() {
                    self.exhausted = Some(Exhausted::Cancelled);
                    return true;
                }
            }
            let mark = self.trail.len();
            if self.unify(fact_idx, row) {
                let stopped = self.solve(remaining);
                self.undo_to(mark);
                if stopped {
                    return true;
                }
            } else {
                self.stats.backtracks += 1;
                self.undo_to(mark);
            }
        }
        false
    }

    /// Unbind every slot recorded past `mark` and truncate the trail.
    fn undo_to(&mut self, mark: usize) {
        for &v in &self.trail[mark..] {
            self.vals[v as usize] = None;
        }
        self.trail.truncate(mark);
    }

    /// Pick the next remaining fact (slot index into `remaining`).
    fn pick(&mut self, remaining: &[usize]) -> Option<usize> {
        if remaining.is_empty() {
            return None;
        }
        if !self.config.dynamic_order {
            return Some(remaining.len() - 1);
        }
        let mut best_slot = 0;
        let mut best_cost = u64::MAX;
        for (slot, &fi) in remaining.iter().enumerate() {
            let cost = self.estimate(fi);
            if cost < best_cost {
                best_cost = cost;
                best_slot = slot;
                if cost == 0 {
                    break;
                }
            }
        }
        if best_cost == 0 {
            // Forward check: a remaining fact has no candidates, so
            // picking it fails every row immediately and cuts the
            // branch here rather than after expanding siblings.
            self.prunes += 1;
        }
        Some(best_slot)
    }

    /// Cheap upper bound on the number of candidate rows for a fact.
    fn estimate(&self, fact_idx: usize) -> u64 {
        let f = &self.facts[fact_idx];
        let mut best = f.rel_data.len() as u64;
        for (col, arg) in f.args.iter().enumerate() {
            if let Some(v) = self.arg_value(*arg) {
                let n = f.rel_data.rows_with(col, &v).len() as u64;
                best = best.min(n);
            }
        }
        best
    }

    fn arg_value(&self, arg: PatArg) -> Option<Value> {
        match arg {
            PatArg::Fixed(v) => Some(v),
            PatArg::Var(x) => self.vals[x as usize],
        }
    }

    /// The null/constant requirements the atom imposes on candidate
    /// rows under the current assignment: bit `c` of the first mask
    /// demands a *constant* in column `c`, bit `c` of the second a
    /// *null*. Columns whose pattern argument is still an unbound
    /// variable constrain nothing, and columns ≥ 64 carry no bits —
    /// mirroring the per-row null masks of the columnar store.
    fn pattern_masks(&self, args: &[PatArg]) -> (u64, u64) {
        let mut const_mask = 0u64;
        let mut null_mask = 0u64;
        for (col, arg) in args.iter().enumerate().take(64) {
            if let Some(v) = self.arg_value(*arg) {
                if v.is_const() {
                    const_mask |= 1 << col;
                } else {
                    null_mask |= 1 << col;
                }
            }
        }
        (const_mask, null_mask)
    }

    /// Candidate target rows for a fact under the current assignment:
    /// the cheapest bound column's posting list, further pruned by the
    /// null-pattern buckets when the relation is columnar. Every path
    /// yields rows in ascending order, so match emission order — and
    /// therefore everything downstream: trigger order, fresh-null
    /// numbering, checkpoint bytes — is identical across backends; the
    /// pruning only drops rows whose null pattern contradicts the
    /// atom's, which would have failed unification anyway.
    fn candidate_rows(&mut self, fact_idx: usize) -> Rows {
        let f = &self.facts[fact_idx];
        let (data, args) = (f.rel_data, f.args);
        if self.config.use_index {
            let mut best: Option<&[u32]> = None;
            for (col, arg) in args.iter().enumerate() {
                if let Some(v) = self.arg_value(*arg) {
                    let rows = data.rows_with(col, &v);
                    if best.is_none_or(|b| rows.len() < b.len()) {
                        best = Some(rows);
                    }
                }
            }
            if let Some(rows) = best {
                if let Some(masks) = data.null_masks() {
                    let (const_mask, null_mask) = self.pattern_masks(args);
                    if let Some((scanned, skipped)) = data.bucket_stats(const_mask, null_mask) {
                        self.buckets_scanned += scanned;
                        self.buckets_skipped += skipped;
                    }
                    if const_mask != 0 || null_mask != 0 {
                        let filtered: Vec<u32> = rows
                            .iter()
                            .copied()
                            .filter(|&r| {
                                let m = masks[r as usize];
                                m & const_mask == 0 && m & null_mask == null_mask
                            })
                            .collect();
                        return Rows::Some(filtered);
                    }
                }
                return Rows::Some(rows.to_vec());
            }
        }
        // No bound column (or indexes disabled): scan the relation. With
        // nothing bound the pattern masks are empty by construction, so
        // bucket pruning cannot help; the bucket counters still see the
        // scan so `chase.bucket.scanned` reflects all candidate work.
        if self.config.use_index {
            if let Some((scanned, skipped)) = data.bucket_stats(0, 0) {
                self.buckets_scanned += scanned;
                self.buckets_skipped += skipped;
            }
        }
        Rows::All(data.len())
    }

    /// Check one pattern argument against one target value, binding a
    /// fresh variable (recorded on the shared trail) as needed.
    #[inline]
    fn bind(&mut self, arg: PatArg, tv: Value) -> bool {
        match arg {
            PatArg::Fixed(v) => v == tv,
            PatArg::Var(x) => match self.vals[x as usize] {
                Some(v) => v == tv,
                None => {
                    self.vals[x as usize] = Some(tv);
                    self.trail.push(x);
                    true
                }
            },
        }
    }

    /// Try to map fact `fact_idx` onto target row `row`, binding
    /// variables as needed; new bindings are pushed on the shared trail.
    /// The row store hands out the tuple as one slice; the columnar
    /// store is probed cell-by-cell (no contiguous row exists there).
    fn unify(&mut self, fact_idx: usize, row: u32) -> bool {
        let f = &self.facts[fact_idx];
        let (data, args) = (f.rel_data, f.args);
        match data.row_slice(row) {
            Some(tuple) => args.iter().zip(tuple).all(|(&arg, &tv)| self.bind(arg, tv)),
            None => (0..args.len()).all(|col| self.bind(args[col], data.value_at(row, col))),
        }
    }
}

enum Rows {
    /// All rows `0..n` of the relation.
    All(usize),
    /// An explicit row list from a posting-list lookup.
    Some(Vec<u32>),
}

/// Compile the facts of `source` into a [`CompiledPattern`] whose
/// variable slots are the source's nulls, in first-occurrence order.
/// Returns the pattern plus the slot → null mapping for reading matches
/// back as [`Substitution`]s. Core minimization compiles its instance
/// once per fold round and re-matches it against shrinking targets.
pub fn instance_pattern(source: &Instance) -> (CompiledPattern, Vec<NullId>) {
    let mut var_ids: FxHashMap<NullId, u32> = FxHashMap::default();
    let mut var_nulls: Vec<NullId> = Vec::new();
    let mut atoms: Vec<PatternAtom> = Vec::new();

    for (rel, data) in source.relations() {
        for tuple in data.tuples() {
            let args = tuple
                .iter()
                .map(|&v| match v {
                    Value::Const(_) => PatArg::Fixed(v),
                    Value::Null(n) => {
                        let next = var_nulls.len() as u32;
                        let idx = *var_ids.entry(n).or_insert_with(|| {
                            var_nulls.push(n);
                            next
                        });
                        PatArg::Var(idx)
                    }
                })
                .collect();
            atoms.push(PatternAtom { rel, args });
        }
    }
    (CompiledPattern::new(atoms), var_nulls)
}

/// Enumerate homomorphisms from `source` to `target`, invoking `on_found`
/// for each; the callback returns `false` to stop early. `seed` pre-binds
/// source nulls (bindings to values *not necessarily in the target's
/// active domain* are permitted only if those nulls appear in no source
/// fact; otherwise unification simply fails).
///
/// Returns the search report; when `config` carries a budget, check
/// [`SearchReport::exhausted`] before trusting a non-match.
pub fn for_each_hom(
    source: &Instance,
    target: &Instance,
    seed: &Substitution,
    config: &HomConfig,
    mut on_found: impl FnMut(&Substitution) -> bool,
) -> SearchReport {
    let (pattern, var_nulls) = instance_pattern(source);
    let mut vals: Vec<Option<Value>> = vec![None; var_nulls.len()];
    if !seed.is_empty() {
        let var_ids: FxHashMap<NullId, u32> =
            var_nulls.iter().enumerate().map(|(i, &n)| (n, i as u32)).collect();
        for (n, v) in seed.iter() {
            if let Some(&idx) = var_ids.get(&n) {
                vals[idx as usize] = Some(v);
            }
        }
    }

    let span = rde_obs::span(
        "hom.search",
        &[("source_facts", source.len().into()), ("vars", var_nulls.len().into())],
    );
    let report = pattern.for_each_match(target, &vals, config, |assignment| {
        let sub: Substitution = var_nulls
            .iter()
            .zip(assignment)
            .map(|(&n, v)| (n, v.expect("all variables bound when all facts covered")))
            .collect();
        on_found(&sub)
    });
    span.close_with(&[
        ("nodes", report.stats.nodes.into()),
        ("backtracks", report.stats.backtracks.into()),
        ("found", report.stats.found.into()),
        ("complete", report.complete().into()),
    ]);
    report
}

/// Find one homomorphism `source → target`, if any (complete search).
pub fn find_hom(source: &Instance, target: &Instance) -> Option<Substitution> {
    find_hom_seeded(source, target, &Substitution::new())
}

/// Find one homomorphism extending `seed`, if any (complete search).
pub fn find_hom_seeded(
    source: &Instance,
    target: &Instance,
    seed: &Substitution,
) -> Option<Substitution> {
    let mut result = None;
    for_each_hom(source, target, seed, &HomConfig::default(), |sub| {
        result = Some(sub.clone());
        false
    });
    result
}

/// Decide `source → target` (Definition 3.1's relation).
pub fn exists_hom(source: &Instance, target: &Instance) -> bool {
    find_hom(source, target).is_some()
}

/// Decide `source → target` under `config`'s budgets, accumulating the
/// search work into `stats`. Returns [`Verdict::Unknown`] when a budget
/// ran out before a witness was found or the space was exhausted.
pub fn exists_hom_budgeted(
    source: &Instance,
    target: &Instance,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Verdict {
    match find_hom_budgeted(source, target, &Substitution::new(), config, stats) {
        Ok(Some(_)) => Verdict::Holds,
        Ok(None) => Verdict::Fails,
        Err(budget) => Verdict::Unknown { budget },
    }
}

/// Find one homomorphism extending `seed` under `config`'s budgets,
/// accumulating the search work into `stats`.
///
/// `Ok(Some(h))` — a witness; `Ok(None)` — a complete refutation;
/// `Err(budget)` — the budget ran out before either.
pub fn find_hom_budgeted(
    source: &Instance,
    target: &Instance,
    seed: &Substitution,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Result<Option<Substitution>, Exhausted> {
    let mut result = None;
    let report = for_each_hom(source, target, seed, config, |sub| {
        result = Some(sub.clone());
        false
    });
    stats.merge(report.stats);
    match (result, report.exhausted) {
        (Some(h), _) => Ok(Some(h)),
        (None, None) => Ok(None),
        (None, Some(budget)) => Err(budget),
    }
}

/// Count all homomorphisms from `source` to `target`.
///
/// The count is exponential in the worst case; intended for tests and
/// small instances.
pub fn count_homs(source: &Instance, target: &Instance) -> u64 {
    for_each_hom(source, target, &Substitution::new(), &HomConfig::default(), |_| true).stats.found
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_model::{Fact, RelId};

    fn c(i: u32) -> Value {
        Value::Const(rde_model::ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }
    fn inst(facts: &[(u32, &[Value])]) -> Instance {
        facts.iter().map(|(r, args)| Fact::new(RelId(*r), args.to_vec())).collect()
    }

    #[test]
    fn empty_source_maps_anywhere() {
        let empty = Instance::new();
        let target = inst(&[(0, &[c(0)])]);
        assert!(exists_hom(&empty, &target));
        assert!(exists_hom(&empty, &empty));
    }

    #[test]
    fn nonempty_source_needs_matching_relation() {
        let source = inst(&[(0, &[n(0)])]);
        let target = inst(&[(1, &[c(0)])]);
        assert!(!exists_hom(&source, &target));
    }

    #[test]
    fn constants_are_fixed() {
        let source = inst(&[(0, &[c(0)])]);
        let target = inst(&[(0, &[c(1)])]);
        assert!(!exists_hom(&source, &target));
        assert!(exists_hom(&source, &inst(&[(0, &[c(0)]), (0, &[c(1)])])));
    }

    #[test]
    fn nulls_map_to_constants_or_nulls() {
        let source = inst(&[(0, &[n(0), n(1)])]);
        let target = inst(&[(0, &[c(0), n(5)])]);
        let h = find_hom(&source, &target).unwrap();
        assert_eq!(h.apply(n(0)), c(0));
        assert_eq!(h.apply(n(1)), n(5));
    }

    #[test]
    fn shared_nulls_must_agree() {
        // P(x, x) cannot map into P(a, b).
        let source = inst(&[(0, &[n(0), n(0)])]);
        assert!(!exists_hom(&source, &inst(&[(0, &[c(0), c(1)])])));
        assert!(exists_hom(&source, &inst(&[(0, &[c(0), c(0)])])));
    }

    #[test]
    fn paths_fold_into_shorter_paths() {
        // Path of nulls x→y→z maps onto edge a→b by folding.
        let source = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(2)])]);
        let target = inst(&[(0, &[c(0), c(1)]), (0, &[c(1), c(0)])]);
        assert!(exists_hom(&source, &target));
        // ...but not into a single non-loop edge.
        let single = inst(&[(0, &[c(0), c(1)])]);
        assert!(!exists_hom(&source, &single));
        // A loop absorbs everything.
        let loop_ = inst(&[(0, &[c(0), c(0)])]);
        assert!(exists_hom(&source, &loop_));
    }

    #[test]
    fn ground_source_hom_iff_subset() {
        // For ground I₁: I₁ → I₂ iff I₁ ⊆ I₂ (paper, Section 1).
        let i1 = inst(&[(0, &[c(0), c(1)]), (1, &[c(2)])]);
        let i2 = inst(&[(0, &[c(0), c(1)]), (1, &[c(2)]), (1, &[c(3)])]);
        assert!(exists_hom(&i1, &i2));
        assert!(i1.is_subset_of(&i2));
        let i3 = inst(&[(0, &[c(0), c(1)])]);
        assert!(!exists_hom(&i1, &i3));
        assert!(!i1.is_subset_of(&i3));
    }

    #[test]
    fn cross_fact_consistency() {
        // P(x), Q(x) needs a value in both unary relations.
        let source = inst(&[(0, &[n(0)]), (1, &[n(0)])]);
        let t1 = inst(&[(0, &[c(0)]), (1, &[c(1)])]);
        assert!(!exists_hom(&source, &t1));
        let t2 = inst(&[(0, &[c(0)]), (1, &[c(0)])]);
        assert!(exists_hom(&source, &t2));
    }

    #[test]
    fn seeded_search_respects_seed() {
        let source = inst(&[(0, &[n(0)])]);
        let target = inst(&[(0, &[c(0)]), (0, &[c(1)])]);
        let mut seed = Substitution::new();
        seed.bind(NullId(0), c(1));
        let h = find_hom_seeded(&source, &target, &seed).unwrap();
        assert_eq!(h.apply(n(0)), c(1));
        seed.bind(NullId(0), c(7)); // not in target
        assert!(find_hom_seeded(&source, &target, &seed).is_none());
    }

    #[test]
    fn hom_composition_witnesses_transitivity() {
        let a = inst(&[(0, &[n(0), n(1)])]);
        let b = inst(&[(0, &[n(2), c(0)])]);
        let c_ = inst(&[(0, &[c(1), c(0)])]);
        let h1 = find_hom(&a, &b).unwrap();
        let h2 = find_hom(&b, &c_).unwrap();
        let composed = h1.then(&h2);
        assert_eq!(composed.apply_instance(&a), c_);
    }

    #[test]
    fn counting_homs() {
        // P(x) into {P(a), P(b)}: two homs.
        let source = inst(&[(0, &[n(0)])]);
        let target = inst(&[(0, &[c(0)]), (0, &[c(1)])]);
        assert_eq!(count_homs(&source, &target), 2);
        // P(x), P(y) into the same: four homs.
        let source2 = inst(&[(0, &[n(0)]), (0, &[n(1)])]);
        assert_eq!(count_homs(&source2, &target), 4);
        // Identity on the empty instance: exactly one (the empty hom).
        assert_eq!(count_homs(&Instance::new(), &Instance::new()), 1);
    }

    #[test]
    fn node_budget_exhaustion_is_a_status_not_a_panic() {
        // A mismatch that requires search: k² attempts for a miss.
        let source = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(0)]), (1, &[n(0)])]);
        let target =
            inst(&[(0, &[c(0), c(1)]), (0, &[c(1), c(2)]), (0, &[c(2), c(0)]), (1, &[c(9)])]);
        let cfg = HomConfig { node_budget: Some(0), ..HomConfig::default() };
        let report = for_each_hom(&source, &target, &Substitution::new(), &cfg, |_| true);
        assert_eq!(report.exhausted, Some(Exhausted::Nodes(0)));
        assert!(!report.complete());
        let mut stats = HomStats::default();
        let verdict = exists_hom_budgeted(&source, &target, &cfg, &mut stats);
        assert_eq!(verdict, Verdict::Unknown { budget: Exhausted::Nodes(0) });
        // The unbounded decision is definite.
        let mut stats = HomStats::default();
        let v = exists_hom_budgeted(&source, &target, &HomConfig::default(), &mut stats);
        assert_eq!(v, Verdict::Fails);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn node_budget_boundaries_permit_exactly_n_attempts() {
        // budget = N permits exactly N unification attempts: measure the
        // exact need of a complete search, then probe need and need - 1.
        let source = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (1, &[n(2)])]);
        let target = inst(&[(0, &[c(0), c(1)]), (0, &[c(1), c(2)]), (1, &[c(2)])]);
        let find_first = |cfg: &HomConfig| {
            let mut hit = false;
            let report = for_each_hom(&source, &target, &Substitution::new(), cfg, |_| {
                hit = true;
                false
            });
            (hit, report)
        };
        let (hit, unbounded) = find_first(&HomConfig::default());
        assert!(hit);
        let need = unbounded.stats.nodes;
        assert!(need >= 3, "three facts need at least three attempts");

        // budget = 0: cut before the very first attempt.
        let cfg0 = HomConfig { node_budget: Some(0), ..HomConfig::default() };
        let (hit, report) = find_first(&cfg0);
        assert!(!hit);
        assert_eq!(report.exhausted, Some(Exhausted::Nodes(0)));
        assert_eq!(report.stats.nodes, 1, "the aborted attempt is counted, not performed");

        // budget = 1: exactly one attempt happens, then the cut.
        let cfg1 = HomConfig { node_budget: Some(1), ..HomConfig::default() };
        let (hit, report) = find_first(&cfg1);
        assert!(!hit, "one attempt cannot cover three facts");
        assert_eq!(report.exhausted, Some(Exhausted::Nodes(1)));
        assert_eq!(report.stats.nodes, 2);

        // budget = exact need: the search finishes untruncated.
        let cfg_exact = HomConfig { node_budget: Some(need), ..HomConfig::default() };
        let (hit, report) = find_first(&cfg_exact);
        assert!(hit);
        assert!(report.complete());
        assert_eq!(report.stats.nodes, need);

        // budget = need - 1: cut on the final attempt.
        let cfg_short = HomConfig { node_budget: Some(need - 1), ..HomConfig::default() };
        let (hit, report) = find_first(&cfg_short);
        assert!(!hit);
        assert_eq!(report.exhausted, Some(Exhausted::Nodes(need - 1)));
    }

    #[test]
    fn time_budget_cuts_long_searches() {
        // K₅ on nulls into K₄: no hom, and refuting it takes far more
        // than one deadline stride of nodes.
        let mut source = Vec::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    source.push(Fact::new(RelId(0), vec![n(i), n(j)]));
                }
            }
        }
        let source: Instance = source.into_iter().collect();
        let mut target = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    target.push(Fact::new(RelId(0), vec![c(i), c(j)]));
                }
            }
        }
        let target: Instance = target.into_iter().collect();
        let cfg = HomConfig { time_budget: Some(Duration::ZERO), ..HomConfig::default() };
        let mut stats = HomStats::default();
        let verdict = exists_hom_budgeted(&source, &target, &cfg, &mut stats);
        assert!(matches!(verdict, Verdict::Unknown { budget: Exhausted::Time(_) }));
        assert!(stats.nodes >= TIME_CHECK_STRIDE, "cut at the first deadline poll");
    }

    #[test]
    fn naive_config_agrees_with_optimized() {
        // Same decision with all optimizations off.
        let source = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(2)]), (1, &[n(2)])]);
        let yes = inst(&[(0, &[c(0), c(1)]), (0, &[c(1), c(2)]), (1, &[c(2)])]);
        let no = inst(&[(0, &[c(0), c(1)]), (1, &[c(0)])]);
        let naive = HomConfig { use_index: false, dynamic_order: false, ..HomConfig::default() };
        for (target, expected) in [(&yes, true), (&no, false)] {
            let mut found = false;
            let report = for_each_hom(&source, target, &Substitution::new(), &naive, |_| {
                found = true;
                false
            });
            assert!(report.complete());
            assert_eq!(found, expected);
        }
    }

    #[test]
    fn stats_reflect_work() {
        let source = inst(&[(0, &[n(0)])]);
        let target = inst(&[(0, &[c(0)]), (0, &[c(1)])]);
        let report =
            for_each_hom(&source, &target, &Substitution::new(), &HomConfig::default(), |_| true);
        assert_eq!(report.stats.found, 2);
        assert!(report.stats.nodes >= 2);
        assert!(report.complete());
    }

    #[test]
    fn stats_are_exact_on_a_pinned_search() {
        // Regression guard for the shared-trail refactor: the counters
        // are defined by the search tree, not by allocation strategy.
        // P(x) over {P(a), P(b)}: two candidate rows, two matches, no
        // failed unifications.
        let source = inst(&[(0, &[n(0)])]);
        let target = inst(&[(0, &[c(0)]), (0, &[c(1)])]);
        let report =
            for_each_hom(&source, &target, &Substitution::new(), &HomConfig::default(), |_| true);
        assert_eq!(report.stats, HomStats { nodes: 2, backtracks: 0, found: 2 });
        // P(x,x) over {P(a,b)}: one attempt, one failed unification.
        let miss = for_each_hom(
            &inst(&[(0, &[n(0), n(0)])]),
            &inst(&[(0, &[c(0), c(1)])]),
            &Substitution::new(),
            &HomConfig::default(),
            |_| true,
        );
        assert_eq!(miss.stats, HomStats { nodes: 1, backtracks: 1, found: 0 });
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = HomStats { nodes: 1, backtracks: 2, found: 3 };
        a += HomStats { nodes: 10, backtracks: 20, found: 30 };
        assert_eq!(a, HomStats { nodes: 11, backtracks: 22, found: 33 });
    }
}
