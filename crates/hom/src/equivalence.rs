//! Homomorphic equivalence.

use rde_model::Instance;

use crate::search::{exists_hom, exists_hom_budgeted, find_hom, HomConfig, HomStats};
use crate::verdict::Verdict;
use rde_model::Substitution;

/// Are `a` and `b` homomorphically equivalent (`a → b` and `b → a`,
/// Definition 3.1)? This is the paper's notion of "the same instance":
/// chase-inverses recover the original source only up to this relation
/// (Definition 3.16), and capturing targets determine sources up to it.
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    exists_hom(a, b) && exists_hom(b, a)
}

/// Like [`hom_equivalent`] but returns the witnessing pair of
/// homomorphisms `(a → b, b → a)` when equivalent.
pub fn hom_equivalent_with(a: &Instance, b: &Instance) -> Option<(Substitution, Substitution)> {
    let fwd = find_hom(a, b)?;
    let back = find_hom(b, a)?;
    Some((fwd, back))
}

/// Decide homomorphic equivalence under `config`'s budgets (Kleene
/// conjunction of the two directions), accumulating search work into
/// `stats`. A definite failure in either direction beats an `Unknown`
/// in the other.
pub fn hom_equivalent_budgeted(
    a: &Instance,
    b: &Instance,
    config: &HomConfig,
    stats: &mut HomStats,
) -> Verdict {
    let fwd = exists_hom_budgeted(a, b, config, stats);
    if fwd.fails() {
        return Verdict::Fails;
    }
    fwd.and(exists_hom_budgeted(b, a, config, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rde_model::{ConstId, Fact, NullId, RelId, Value};

    fn c(i: u32) -> Value {
        Value::Const(ConstId(i))
    }
    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }
    fn inst(facts: &[(u32, &[Value])]) -> Instance {
        facts.iter().map(|(r, args)| Fact::new(RelId(*r), args.to_vec())).collect()
    }

    #[test]
    fn equivalence_is_reflexive() {
        let i = inst(&[(0, &[c(0), n(0)])]);
        assert!(hom_equivalent(&i, &i));
    }

    #[test]
    fn ground_instances_equivalent_iff_equal() {
        let a = inst(&[(0, &[c(0)])]);
        let b = inst(&[(0, &[c(0)]), (0, &[c(1)])]);
        assert!(!hom_equivalent(&a, &b));
        assert!(hom_equivalent(&a, &inst(&[(0, &[c(0)])])));
    }

    #[test]
    fn null_padding_is_equivalent() {
        // {P(a,b)} ≡ {P(a,b), P(a,X)}: the null fact folds onto the real one.
        let a = inst(&[(0, &[c(0), c(1)])]);
        let b = inst(&[(0, &[c(0), c(1)]), (0, &[c(0), n(0)])]);
        assert!(hom_equivalent(&a, &b));
        let (fwd, back) = hom_equivalent_with(&a, &b).unwrap();
        assert_eq!(fwd.apply_instance(&a), a); // a is ground: identity
        assert!(back.apply_instance(&b).is_subset_of(&a));
    }

    #[test]
    fn renamed_nulls_are_equivalent() {
        let a = inst(&[(0, &[n(0), n(1)])]);
        let b = inst(&[(0, &[n(7), n(8)])]);
        assert!(hom_equivalent(&a, &b));
    }

    #[test]
    fn asymmetric_directions_are_detected() {
        // {P(X,X)} → {P(a,a)} but not conversely.
        let a = inst(&[(0, &[n(0), n(0)])]);
        let b = inst(&[(0, &[c(0), c(0)])]);
        assert!(exists_hom(&a, &b));
        assert!(!exists_hom(&b, &a));
        assert!(!hom_equivalent(&a, &b));
        assert!(hom_equivalent_with(&a, &b).is_none());
    }

    #[test]
    fn budgeted_equivalence_degrades_to_unknown() {
        let a = inst(&[(0, &[n(0), n(1)]), (0, &[n(1), n(0)])]);
        let b = inst(&[(0, &[n(7), n(9)]), (0, &[n(9), n(7)])]);
        let mut stats = HomStats::default();
        let v = hom_equivalent_budgeted(&a, &b, &HomConfig::default(), &mut stats);
        assert!(v.holds());
        assert!(stats.nodes > 0, "both directions are accounted");
        let cfg = HomConfig { node_budget: Some(0), ..HomConfig::default() };
        let mut stats = HomStats::default();
        assert!(hom_equivalent_budgeted(&a, &b, &cfg, &mut stats).is_unknown());
        // A definite directional failure is reported even under a budget
        // too small to decide the other direction.
        let asym_a = inst(&[(0, &[n(0), n(0)])]);
        let asym_b = inst(&[(0, &[c(0), c(1)])]);
        let mut stats = HomStats::default();
        let v = hom_equivalent_budgeted(&asym_a, &asym_b, &HomConfig::default(), &mut stats);
        assert!(v.fails());
    }
}
