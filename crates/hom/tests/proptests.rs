//! Property-based tests for the homomorphism engine.

use proptest::prelude::*;
use rde_hom::{core_of, exists_hom, find_hom, hom_equivalent, is_core, is_isomorphic};
use rde_model::{Fact, Instance, Substitution, Value, Vocabulary};

fn abstract_facts(max: usize) -> impl Strategy<Value = Vec<Vec<(bool, u8)>>> {
    prop::collection::vec(prop::collection::vec((any::<bool>(), 0u8..4), 2), 0..=max)
}

fn materialize(vocab: &mut Vocabulary, facts: &[Vec<(bool, u8)>]) -> Instance {
    let rel = vocab.relation("E", 2).unwrap();
    facts
        .iter()
        .map(|args| {
            let vals: Vec<Value> = args
                .iter()
                .map(|&(is_null, i)| {
                    if is_null {
                        vocab.null_value(&format!("n{i}"))
                    } else {
                        vocab.const_value(&format!("c{i}"))
                    }
                })
                .collect();
            Fact::new(rel, vals)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// → is reflexive; witnesses actually map facts into the target.
    #[test]
    fn hom_is_reflexive_and_witnessed(facts in abstract_facts(8)) {
        let mut vocab = Vocabulary::new();
        let i = materialize(&mut vocab, &facts);
        let h = find_hom(&i, &i).expect("identity works");
        prop_assert!(h.apply_instance(&i).is_subset_of(&i));
    }

    /// Transitivity through explicit witnesses.
    #[test]
    fn hom_witnesses_compose(f1 in abstract_facts(5), f2 in abstract_facts(5), f3 in abstract_facts(5)) {
        let mut vocab = Vocabulary::new();
        let a = materialize(&mut vocab, &f1);
        let b = materialize(&mut vocab, &f2);
        let c = materialize(&mut vocab, &f3);
        if let (Some(h1), Some(h2)) = (find_hom(&a, &b), find_hom(&b, &c)) {
            let composed = h1.then(&h2);
            prop_assert!(composed.apply_instance(&a).is_subset_of(&c));
            prop_assert!(exists_hom(&a, &c));
        }
    }

    /// For ground sources, → coincides with ⊆ (paper, Section 1).
    #[test]
    fn ground_hom_is_subset(f1 in abstract_facts(6), f2 in abstract_facts(6)) {
        let mut vocab = Vocabulary::new();
        let mut ground = |facts: &[Vec<(bool, u8)>]| {
            let grounded: Vec<Vec<(bool, u8)>> =
                facts.iter().map(|args| args.iter().map(|&(_, i)| (false, i)).collect()).collect();
            materialize(&mut vocab, &grounded)
        };
        let a = ground(&f1);
        let b = ground(&f2);
        prop_assert_eq!(exists_hom(&a, &b), a.is_subset_of(&b));
    }

    /// Renaming nulls bijectively yields an isomorphic instance, which
    /// is in particular hom-equivalent.
    #[test]
    fn bijective_renaming_is_isomorphism(facts in abstract_facts(8)) {
        let mut vocab = Vocabulary::new();
        let i = materialize(&mut vocab, &facts);
        let mut rename = Substitution::new();
        for n in i.nulls() {
            rename.bind(n, Value::Null(vocab.fresh_null()));
        }
        let j = rename.apply_instance(&i);
        prop_assert!(is_isomorphic(&i, &j));
        prop_assert!(hom_equivalent(&i, &j));
    }

    /// Collapsing all nulls to one constant gives a hom target.
    #[test]
    fn collapse_is_a_hom_target(facts in abstract_facts(8)) {
        let mut vocab = Vocabulary::new();
        let i = materialize(&mut vocab, &facts);
        let sink = vocab.const_value("sink");
        let j = i.map_values(|v| if v.is_null() { sink } else { v });
        prop_assert!(exists_hom(&i, &j));
    }

    /// Core properties: sub-instance, equivalent, minimal, idempotent,
    /// and isomorphism-invariant across null renamings.
    #[test]
    fn core_properties(facts in abstract_facts(7)) {
        let mut vocab = Vocabulary::new();
        let i = materialize(&mut vocab, &facts);
        let r = core_of(&i);
        prop_assert!(r.core.is_subset_of(&i));
        prop_assert!(hom_equivalent(&i, &r.core));
        prop_assert!(is_core(&r.core));
        // Cores of isomorphic instances are isomorphic.
        let mut rename = Substitution::new();
        for n in i.nulls() {
            rename.bind(n, Value::Null(vocab.fresh_null()));
        }
        let j = rename.apply_instance(&i);
        let rj = core_of(&j);
        prop_assert!(is_isomorphic(&r.core, &rj.core));
    }

    /// The minimizer's substitution is a true retraction: its image is
    /// exactly the core, it is the identity on the core's own values,
    /// and hence applying it twice is the same as applying it once.
    #[test]
    fn core_retraction_is_a_true_retraction(facts in abstract_facts(7)) {
        let mut vocab = Vocabulary::new();
        let i = materialize(&mut vocab, &facts);
        let r = core_of(&i);
        prop_assert_eq!(r.retraction.apply_instance(&i), r.core.clone());
        for v in r.core.active_domain() {
            prop_assert_eq!(r.retraction.apply(v), v, "retraction must fix core value {v:?}");
        }
        prop_assert_eq!(r.retraction.apply_instance(&r.core), r.core.clone());
        // Idempotence as a substitution law, not just on this instance.
        let twice = r.retraction.then(&r.retraction);
        prop_assert_eq!(twice.apply_instance(&i), r.core);
    }

    /// Adding facts can only help the target side and hurt the source
    /// side (monotonicity of →).
    #[test]
    fn hom_is_monotone(f1 in abstract_facts(5), f2 in abstract_facts(5), extra in abstract_facts(3)) {
        let mut vocab = Vocabulary::new();
        let a = materialize(&mut vocab, &f1);
        let b = materialize(&mut vocab, &f2);
        let e = materialize(&mut vocab, &extra);
        if exists_hom(&a, &b) {
            prop_assert!(exists_hom(&a, &b.union(&e)), "bigger targets stay reachable");
        }
        if !exists_hom(&a, &b) {
            prop_assert!(!exists_hom(&a.union(&e), &b), "bigger sources stay unreachable");
        }
    }
}
