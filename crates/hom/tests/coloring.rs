//! Graph-coloring tests for the homomorphism engine.
//!
//! A graph `G` (vertices as nulls, edges as symmetric `E`-facts) is
//! `n`-colorable iff `G → Kₙ` (the complete graph on `n` constant
//! vertices, no loops). These are the classic hard instances for
//! homomorphism engines: correctness here exercises deep backtracking
//! with genuine conflicts, not just index lookups.

use rde_hom::{count_homs, exists_hom};
use rde_model::{Fact, Instance, Value, Vocabulary};

struct G {
    vocab: Vocabulary,
    rel: rde_model::RelId,
}

impl G {
    fn new() -> Self {
        let mut vocab = Vocabulary::new();
        let rel = vocab.relation("E", 2).unwrap();
        G { vocab, rel }
    }

    /// Vertex as a null (graph side).
    fn v(&mut self, i: usize) -> Value {
        self.vocab.null_value(&format!("v{i}"))
    }

    /// Vertex as a constant (template side).
    fn c(&mut self, i: usize) -> Value {
        self.vocab.const_value(&format!("k{i}"))
    }

    /// Undirected edge: both orientations.
    fn edge(&self, g: &mut Instance, a: Value, b: Value) {
        g.insert(Fact::new(self.rel, vec![a, b]));
        g.insert(Fact::new(self.rel, vec![b, a]));
    }

    /// Kₙ on constants (no self-loops).
    fn complete(&mut self, n: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let (a, b) = (self.c(i), self.c(j));
                    out.insert(Fact::new(self.rel, vec![a, b]));
                }
            }
        }
        out
    }

    /// Cycle on `n` null vertices.
    fn cycle(&mut self, n: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            let (a, b) = (self.v(i), self.v((i + 1) % n));
            self.edge(&mut out, a, b);
        }
        out
    }

    /// Complete graph on `n` null vertices.
    fn clique(&mut self, n: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (self.v(i), self.v(j));
                self.edge(&mut out, a, b);
            }
        }
        out
    }
}

#[test]
fn bipartite_graphs_are_2_colorable() {
    let mut g = G::new();
    let c6 = g.cycle(6);
    let k2 = g.complete(2);
    assert!(exists_hom(&c6, &k2), "even cycles are bipartite");
    // Exactly two proper 2-colorings of a connected bipartite graph.
    assert_eq!(count_homs(&c6, &k2), 2);
}

#[test]
fn odd_cycles_are_not_2_colorable_but_are_3_colorable() {
    let mut g = G::new();
    let c5 = g.cycle(5);
    let k2 = g.complete(2);
    let k3 = g.complete(3);
    assert!(!exists_hom(&c5, &k2), "odd cycle needs 3 colors");
    assert!(exists_hom(&c5, &k3));
    // C5 has 30 proper 3-colorings: (3-1)^5 + (3-1) = 30.
    assert_eq!(count_homs(&c5, &k3), 30);
}

#[test]
fn k4_needs_exactly_4_colors() {
    let mut g = G::new();
    let k4_nulls = g.clique(4);
    let k3 = g.complete(3);
    let k4 = g.complete(4);
    assert!(!exists_hom(&k4_nulls, &k3), "χ(K4) = 4");
    assert!(exists_hom(&k4_nulls, &k4));
    // Proper colorings of K4 with 4 colors: 4! = 24.
    assert_eq!(count_homs(&k4_nulls, &k4), 24);
}

#[test]
fn petersen_graph_is_3_colorable_but_not_2() {
    // The Petersen graph: outer C5 (0–4), inner pentagram (5–9),
    // spokes i—(i+5).
    let mut g = G::new();
    let mut p = Instance::new();
    for i in 0..5 {
        let (a, b) = (g.v(i), g.v((i + 1) % 5));
        g.edge(&mut p, a, b);
        let (a, b) = (g.v(5 + i), g.v(5 + (i + 2) % 5));
        g.edge(&mut p, a, b);
        let (a, b) = (g.v(i), g.v(i + 5));
        g.edge(&mut p, a, b);
    }
    assert_eq!(p.len(), 30, "15 undirected edges");
    let k2 = g.complete(2);
    let k3 = g.complete(3);
    assert!(!exists_hom(&p, &k2), "Petersen contains odd cycles");
    assert!(exists_hom(&p, &k3), "χ(Petersen) = 3");
    // Known: the Petersen graph has 120 proper 3-colorings.
    assert_eq!(count_homs(&p, &k3), 120);
}

#[test]
fn grid_graphs_are_bipartite() {
    // 4×4 grid on nulls.
    let mut g = G::new();
    let mut grid = Instance::new();
    for r in 0..4usize {
        for c in 0..4usize {
            if r + 1 < 4 {
                let (a, b) = (g.v(r * 4 + c), g.v((r + 1) * 4 + c));
                g.edge(&mut grid, a, b);
            }
            if c + 1 < 4 {
                let (a, b) = (g.v(r * 4 + c), g.v(r * 4 + c + 1));
                g.edge(&mut grid, a, b);
            }
        }
    }
    let k2 = g.complete(2);
    assert!(exists_hom(&grid, &k2));
    assert_eq!(count_homs(&grid, &k2), 2, "connected bipartite: two 2-colorings");
}

#[test]
fn wheel_graphs() {
    // Wheel W5: C5 plus a hub adjacent to all — χ(W5) = 4 (odd cycle + hub).
    let mut g = G::new();
    let mut w = g.cycle(5);
    for i in 0..5 {
        let (hub, rim) = (g.v(100), g.v(i));
        g.edge(&mut w, hub, rim);
    }
    let k3 = g.complete(3);
    let k4 = g.complete(4);
    assert!(!exists_hom(&w, &k3));
    assert!(exists_hom(&w, &k4));
}
