//! Benchmark: the quasi-inverse algorithm for full tgds (Theorem 5.1),
//! scaled by number of tgds and premise arity (equality types grow as
//! Bell numbers of the premise width).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_core::quasi_inverse::{maximum_extended_recovery_full, QuasiInverseOptions};
use rde_deps::parse_mapping;
use rde_model::Vocabulary;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_synthesis");
    group.sample_size(15);

    // Scale the number of union arms (more tgds, more blocks).
    for arms in [2usize, 4, 6] {
        let mut vocab = Vocabulary::new();
        let w = workloads::union_k(&mut vocab, arms);
        group.bench_with_input(BenchmarkId::new("union_arms", arms), &w.mapping, |b, m| {
            b.iter(|| {
                let mut v = vocab.clone();
                maximum_extended_recovery_full(m, &mut v, &QuasiInverseOptions::default()).unwrap()
            })
        });
    }

    // Scale premise arity (Bell-number growth of equality types).
    for arity in [2usize, 3, 4] {
        let mut vocab = Vocabulary::new();
        let vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
        let vlist = vars.join(", ");
        let m = parse_mapping(
            &mut vocab,
            &format!("source: P/{arity}, T/1\ntarget: Pp/{arity}\nP({vlist}) -> Pp({vlist})\nT(x0) -> Pp({})", vec!["x0"; arity].join(", ")),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("copy_arity", arity), &m, |b, m| {
            b.iter(|| {
                let mut v = vocab.clone();
                maximum_extended_recovery_full(m, &mut v, &QuasiInverseOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
