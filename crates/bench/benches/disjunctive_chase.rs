//! Benchmark: reverse data exchange with the disjunctive chase — the
//! leaf set grows as `arms^facts`, so this measures branching cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_chase::{chase_mapping, disjunctive_chase, ChaseOptions, DisjunctiveChaseOptions};
use rde_model::{Instance, Vocabulary};

fn target_instance(arms: usize, facts: usize) -> (Vocabulary, rde_deps::SchemaMapping, Instance) {
    let mut vocab = Vocabulary::new();
    let w = workloads::union_k(&mut vocab, arms);
    let src = workloads::source_instance(&mut vocab, &w.mapping, facts, facts + 2, 0, 0.0, 19);
    let u = chase_mapping(&src, &w.mapping, &mut vocab, &ChaseOptions::default()).unwrap();
    (vocab, w.reverse, u)
}

fn bench_disjunctive(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjunctive_chase");
    group.sample_size(15);
    for arms in [2usize, 3] {
        for facts in [4usize, 6, 8] {
            let (vocab, reverse, u) = target_instance(arms, facts);
            let leaf_count = {
                let mut v = vocab.clone();
                disjunctive_chase(
                    &u,
                    &reverse.dependencies,
                    &mut v,
                    &DisjunctiveChaseOptions::default(),
                )
                .unwrap()
                .leaves
                .len()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("arms{arms}_leaves{leaf_count}"), facts),
                &u,
                |b, u| {
                    b.iter(|| {
                        let mut v = vocab.clone();
                        disjunctive_chase(
                            u,
                            &reverse.dependencies,
                            &mut v,
                            &DisjunctiveChaseOptions::default(),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_disjunctive);
criterion_main!(benches);
