//! Benchmark: syntactic composition by unfolding vs pointwise semantic
//! composition — the "who wins" comparison for the schema-evolution
//! workflow (compose once syntactically, then reuse; vs re-deciding
//! membership per pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_core::compose::{in_composition, ComposeOptions};
use rde_core::unfold::{compose_mappings, UnfoldOptions};
use rde_core::Universe;
use rde_deps::parse_mapping;
use rde_model::Vocabulary;

/// A k-relation evolution: split step then recombine step.
fn evolution(
    vocab: &mut Vocabulary,
    k: usize,
) -> (rde_deps::SchemaMapping, rde_deps::SchemaMapping) {
    let mut src = String::from("source: ");
    let mut mid = String::new();
    let mut fwd = String::new();
    let mut bwd = String::new();
    for i in 0..k {
        if i > 0 {
            src.push_str(", ");
            mid.push_str(", ");
        }
        src.push_str(&format!("S{i}/2"));
        mid.push_str(&format!("M{i}/2"));
        fwd.push_str(&format!("S{i}(x, y) -> M{i}(x, y)\n"));
        bwd.push_str(&format!("M{i}(x, y) -> T(x, y)\n"));
    }
    let m12 = parse_mapping(vocab, &format!("{src}\ntarget: {mid}\n{fwd}")).unwrap();
    let m23 = parse_mapping(vocab, &format!("source: {mid}\ntarget: T/2\n{bwd}")).unwrap();
    (m12, m23)
}

fn bench_unfold(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_unfold");
    group.sample_size(20);

    // Synthesis cost by step width.
    for k in [2usize, 4, 8] {
        let mut vocab = Vocabulary::new();
        let (m12, m23) = evolution(&mut vocab, k);
        group.bench_with_input(BenchmarkId::new("unfold", k), &(m12, m23), |b, (m12, m23)| {
            b.iter(|| compose_mappings(m12, m23, &vocab, &UnfoldOptions::default()).unwrap())
        });
    }

    // One syntactic composition amortized over a pair family vs
    // semantic membership per pair.
    let mut vocab = Vocabulary::new();
    let (m12, m23) = evolution(&mut vocab, 2);
    let composed = compose_mappings(&m12, &m23, &vocab, &UnfoldOptions::default()).unwrap();
    let universe = Universe::new(&mut vocab, 2, 0, 1);
    let sources = universe.ground_instances(&vocab, &m12.source).unwrap().collect::<Vec<_>>();
    let targets = universe.ground_instances(&vocab, &m23.target).unwrap().collect::<Vec<_>>();
    group.bench_function("membership_syntactic_sweep", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in &sources {
                for kk in &targets {
                    if rde_core::semantics::satisfies(i, kk, &composed) {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.bench_function("membership_semantic_sweep", |b| {
        b.iter(|| {
            let mut v = vocab.clone();
            let opts = ComposeOptions::default();
            let mut hits = 0usize;
            for i in &sources {
                for kk in &targets {
                    if in_composition(&m12, &m23, i, kk, &mut v, &opts).unwrap() {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_unfold);
criterion_main!(benches);
