//! Benchmark: canonical-universal-solution construction (`chase_M(I)`)
//! across the paper's mapping families and instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rde_bench::workloads;
use rde_chase::{chase_mapping, ChaseOptions};
use rde_model::Vocabulary;

fn bench_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase");
    for size in [32usize, 128, 512] {
        for build in
            [workloads::copy, workloads::decomposition, workloads::two_step, workloads::projection]
        {
            let mut vocab = Vocabulary::new();
            let w = build(&mut vocab);
            let instance =
                workloads::source_instance(&mut vocab, &w.mapping, size, size / 2 + 2, 4, 0.2, 7);
            group.throughput(Throughput::Elements(instance.len() as u64));
            group.bench_with_input(BenchmarkId::new(w.name, size), &instance, |b, inst| {
                b.iter(|| {
                    let mut v = vocab.clone();
                    chase_mapping(inst, &w.mapping, &mut v, &ChaseOptions::default()).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase);
criterion_main!(benches);
