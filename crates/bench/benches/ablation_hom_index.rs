//! Ablation: homomorphism search with/without posting-list indexes and
//! fail-first dynamic ordering (DESIGN.md §7, ablation 1).
//!
//! Workloads that force genuine search:
//!
//! * **miss**: `K₅` on nulls into `K₄` — not 4-colorable, so the engine
//!   must exhaust a deep backtracking space to refute;
//! * **hit**: an odd cycle on nulls into `K₃` embedded in a sea of
//!   disconnected distractor edges — posting lists prune the candidate
//!   tuples per step, a naive scan pays for every distractor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_hom::{for_each_hom, HomConfig};
use rde_model::{Fact, Instance, Substitution, Value, Vocabulary};

fn base() -> HomConfig {
    HomConfig::default()
}

fn configs() -> Vec<(&'static str, HomConfig)> {
    vec![
        ("indexed_dynamic", HomConfig { use_index: true, dynamic_order: true, ..base() }),
        ("indexed_static", HomConfig { use_index: true, dynamic_order: false, ..base() }),
        ("naive_dynamic", HomConfig { use_index: false, dynamic_order: true, ..base() }),
        ("naive_static", HomConfig { use_index: false, dynamic_order: false, ..base() }),
    ]
}

struct G {
    vocab: Vocabulary,
    rel: rde_model::RelId,
}

impl G {
    fn new() -> Self {
        let mut vocab = Vocabulary::new();
        let rel = vocab.relation("E", 2).unwrap();
        G { vocab, rel }
    }

    fn edge(&self, g: &mut Instance, a: Value, b: Value) {
        g.insert(Fact::new(self.rel, vec![a, b]));
        g.insert(Fact::new(self.rel, vec![b, a]));
    }

    /// Kₙ on constants `k0..k{n-1}`, plus `distractors` disconnected
    /// ground edges that bloat the relation.
    fn complete_with_distractors(&mut self, n: usize, distractors: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let a = self.vocab.const_value(&format!("k{i}"));
                    let b = self.vocab.const_value(&format!("k{j}"));
                    out.insert(Fact::new(self.rel, vec![a, b]));
                }
            }
        }
        for d in 0..distractors {
            let a = self.vocab.const_value(&format!("d{}", 2 * d));
            let b = self.vocab.const_value(&format!("d{}", 2 * d + 1));
            self.edge(&mut out, a, b);
        }
        out
    }

    /// Clique on `n` null vertices.
    fn null_clique(&mut self, n: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            for j in i + 1..n {
                let a = self.vocab.null_value(&format!("v{i}"));
                let b = self.vocab.null_value(&format!("v{j}"));
                self.edge(&mut out, a, b);
            }
        }
        out
    }

    /// Odd cycle on `n` null vertices (n odd).
    fn null_cycle(&mut self, n: usize) -> Instance {
        let mut out = Instance::new();
        for i in 0..n {
            let a = self.vocab.null_value(&format!("c{i}"));
            let b = self.vocab.null_value(&format!("c{}", (i + 1) % n));
            self.edge(&mut out, a, b);
        }
        out
    }
}

fn decide(cfg: &HomConfig, src: &Instance, tgt: &Instance) -> bool {
    let mut found = false;
    let report = for_each_hom(src, tgt, &Substitution::new(), cfg, |_| {
        found = true;
        false
    });
    assert!(report.complete() || found, "unbounded search must finish");
    found
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hom_index");
    group.sample_size(20);

    // Miss: K5 (nulls) into K4 — refutation requires exhausting the
    // coloring space.
    let mut g = G::new();
    let k5 = g.null_clique(5);
    let k4 = g.complete_with_distractors(4, 0);
    assert!(!decide(&HomConfig::default(), &k5, &k4));
    for (name, cfg) in configs() {
        group.bench_with_input(BenchmarkId::new(format!("miss_{name}"), "K5toK4"), &(), |b, ()| {
            b.iter(|| decide(&cfg, &k5, &k4))
        });
    }

    // Hit: C9 (nulls) into K3 drowned in distractor edges — index
    // pruning vs full scans per extension step.
    for distractors in [0usize, 200] {
        let mut g = G::new();
        let c9 = g.null_cycle(9);
        let target = g.complete_with_distractors(3, distractors);
        assert!(decide(&HomConfig::default(), &c9, &target));
        for (name, cfg) in configs() {
            group.bench_with_input(
                BenchmarkId::new(format!("hit_{name}"), format!("C9toK3_d{distractors}")),
                &(),
                |b, ()| b.iter(|| decide(&cfg, &c9, &target)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
