//! Benchmark: reverse certain answers — the Theorem 6.5 disjunctive
//! chase procedure vs the definition-level bounded brute force
//! (enumerating the candidate pairs of `e(M) ∘ e(M′) = →_M`).
//!
//! The procedure should win by orders of magnitude and scale to
//! instances where enumeration is hopeless; the brute force is included
//! at a toy size to exhibit the gap, exactly as the paper's "goodness"
//! argument predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_chase::DisjunctiveChaseOptions;
use rde_core::Universe;
use rde_model::{Instance, Vocabulary};
use rde_query::{certain_answers_over, reverse_certain_answers, ConjunctiveQuery};

fn bench_certain(c: &mut Criterion) {
    let mut group = c.benchmark_group("certain_answers");
    group.sample_size(15);

    // Theorem 6.5 procedure at growing sizes.
    for facts in [4usize, 8, 12] {
        let mut vocab = Vocabulary::new();
        let w = workloads::union(&mut vocab);
        let i = workloads::source_instance(&mut vocab, &w.mapping, facts, facts + 2, 1, 0.1, 23);
        let q = ConjunctiveQuery::parse(&mut vocab, "ans(x) :- A(x)").unwrap();
        group.bench_with_input(BenchmarkId::new("thm65_procedure", facts), &i, |b, i| {
            b.iter(|| {
                let mut v = vocab.clone();
                reverse_certain_answers(
                    &q,
                    i,
                    &w.mapping,
                    &w.reverse,
                    &mut v,
                    &DisjunctiveChaseOptions::default(),
                )
                .unwrap()
            })
        });
    }

    // Definition-level brute force at a toy size: enumerate every
    // I₂ in a bounded universe with I →_M I₂ and intersect q over them.
    let mut vocab = Vocabulary::new();
    let w = workloads::union(&mut vocab);
    let i = workloads::source_instance(&mut vocab, &w.mapping, 2, 2, 0, 0.0, 23);
    let q = ConjunctiveQuery::parse(&mut vocab, "ans(x) :- A(x)").unwrap();
    let universe = Universe::new(&mut vocab, 2, 1, 2);
    let family = universe.collect_instances(&vocab, &w.mapping.source).unwrap();
    group.bench_with_input(BenchmarkId::new("bruteforce_bounded", 2), &i, |b, i| {
        b.iter(|| {
            let mut v = vocab.clone();
            let mut worlds: Vec<Instance> = Vec::new();
            for i2 in &family {
                if rde_core::arrow::arrow_m(&w.mapping, i, i2, &mut v).unwrap() {
                    worlds.push(i2.clone());
                }
            }
            certain_answers_over(&q, worlds.iter())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_certain);
criterion_main!(benches);
