//! Benchmark: homomorphism decision `I₁ → I₂` — hit and miss cases at
//! varying instance sizes and null densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_hom::exists_hom;
use rde_model::{Instance, Vocabulary};

/// A guaranteed-hit pair: `small` is a null-renamed sub-instance of
/// `big`.
fn hit_pair(vocab: &mut Vocabulary, size: usize, null_prob: f64) -> (Instance, Instance) {
    let w = workloads::copy(vocab);
    let big = workloads::source_instance(vocab, &w.mapping, size, size / 2 + 2, 6, null_prob, 11);
    // Rename every null: homomorphic but not identical.
    let mut renames = rde_model::Substitution::new();
    for n in big.nulls() {
        renames.bind(n, rde_model::Value::Null(vocab.fresh_null()));
    }
    let small: Instance = big.facts().take(size / 2).collect();
    (renames.apply_instance(&small), big)
}

/// A guaranteed-miss pair: the source carries a constant absent from
/// the target, found only after search.
fn miss_pair(vocab: &mut Vocabulary, size: usize, null_prob: f64) -> (Instance, Instance) {
    let w = workloads::copy(vocab);
    let big = workloads::source_instance(vocab, &w.mapping, size, size / 2 + 2, 6, null_prob, 13);
    let p = vocab.find_relation("P").unwrap();
    let poison = vocab.const_value("___poison");
    let null = vocab.null_value("___miss");
    let mut source: Instance = big.facts().take(size / 4).collect();
    source.insert(rde_model::Fact::new(p, vec![null, poison]));
    (source, big)
}

fn bench_hom(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom");
    for size in [32usize, 128, 512] {
        for (label, null_prob) in [("ground", 0.0), ("nulls", 0.4)] {
            let mut vocab = Vocabulary::new();
            let (src, tgt) = hit_pair(&mut vocab, size, null_prob);
            assert!(exists_hom(&src, &tgt));
            group.bench_with_input(
                BenchmarkId::new(format!("hit_{label}"), size),
                &(src, tgt),
                |b, (s, t)| b.iter(|| exists_hom(s, t)),
            );
            let mut vocab = Vocabulary::new();
            let (src, tgt) = miss_pair(&mut vocab, size, null_prob);
            assert!(!exists_hom(&src, &tgt));
            group.bench_with_input(
                BenchmarkId::new(format!("miss_{label}"), size),
                &(src, tgt),
                |b, (s, t)| b.iter(|| exists_hom(s, t)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hom);
criterion_main!(benches);
