//! Benchmark: chase strategy scaling — naive full re-enumeration vs
//! semi-naive delta rounds vs parallel collection, swept over instance
//! size and dependency count on the recursive (multi-round) workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rde_bench::workloads;
use rde_chase::{chase, ChaseOptions, ChaseStrategy};
use rde_model::Vocabulary;

fn bench_chase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_scaling");
    for nodes in [16usize, 32, 64] {
        for extra_deps in [0usize, 4] {
            let mut vocab = Vocabulary::new();
            let deps = workloads::recursive_deps(&mut vocab, extra_deps);
            let instance = workloads::random_graph(&mut vocab, nodes, nodes, 11);
            group.throughput(Throughput::Elements(instance.len() as u64));
            let configs = [
                ("naive", ChaseStrategy::Naive, 1usize),
                ("semi_naive", ChaseStrategy::SemiNaive, 1),
                ("parallel", ChaseStrategy::SemiNaive, 0),
            ];
            for (name, strategy, threads) in configs {
                let id = BenchmarkId::new(name, format!("n{nodes}_d{}", deps.len()));
                group.bench_with_input(id, &instance, |b, inst| {
                    let options = ChaseOptions { strategy, threads, ..ChaseOptions::default() };
                    b.iter(|| {
                        let mut v = vocab.clone();
                        chase(inst, &deps, &mut v, &options).unwrap()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase_scaling);
criterion_main!(benches);
