//! Benchmark: core (minimum retract) computation on chase results,
//! whose invented nulls create foldable redundancy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_chase::{chase_mapping, ChaseOptions};
use rde_hom::core_of;
use rde_model::{Instance, Vocabulary};

/// Chase a random source with the two-step mapping, then union a ground
/// completion so a fraction of the invented nulls becomes redundant.
fn redundant_instance(size: usize, redundancy: f64) -> Instance {
    let mut vocab = Vocabulary::new();
    let w = workloads::two_step(&mut vocab);
    let src = workloads::source_instance(&mut vocab, &w.mapping, size, size / 2 + 2, 0, 0.0, 17);
    let chased = chase_mapping(&src, &w.mapping, &mut vocab, &ChaseOptions::default()).unwrap();
    let q = vocab.find_relation("Q").unwrap();
    let hub = vocab.const_value("hub");
    let mut out = chased;
    // Ground 2-paths through a shared hub make null paths foldable.
    let n_ground = ((size as f64) * redundancy) as usize;
    for f in src.facts().take(n_ground) {
        out.insert(rde_model::Fact::new(q, vec![f.args()[0], hub]));
        out.insert(rde_model::Fact::new(q, vec![hub, f.args()[1]]));
    }
    out
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_minimize");
    group.sample_size(20);
    for size in [16usize, 48] {
        for (label, redundancy) in [("low_redundancy", 0.25), ("high_redundancy", 1.0)] {
            let instance = redundant_instance(size, redundancy);
            group.bench_with_input(BenchmarkId::new(label, size), &instance, |b, inst| {
                b.iter(|| core_of(inst))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
