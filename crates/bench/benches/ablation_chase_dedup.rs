//! Ablation: chase firing discipline (oblivious vs satisfaction-checking)
//! and disjunctive-chase subsumption pruning (DESIGN.md §7, ablations
//! 2–3). Reports the size trade-off through the benchmark ids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rde_bench::workloads;
use rde_chase::{
    chase_mapping, disjunctive_chase, ChaseMode, ChaseOptions, DisjunctiveChaseOptions,
};
use rde_model::Vocabulary;

fn bench_chase_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chase_mode");
    for size in [64usize, 256] {
        let mut vocab = Vocabulary::new();
        let w = workloads::two_step(&mut vocab);
        // Skewed instances (few distinct endpoints) make many triggers
        // already satisfied: satisfaction checking pays off in facts.
        let instance = workloads::source_instance(&mut vocab, &w.mapping, size, 6, 2, 0.2, 31);
        for (name, mode) in [("oblivious", ChaseMode::Oblivious), ("standard", ChaseMode::Standard)]
        {
            let opts = ChaseOptions { mode, ..ChaseOptions::default() };
            group.bench_with_input(BenchmarkId::new(name, size), &instance, |b, inst| {
                b.iter(|| {
                    let mut v = vocab.clone();
                    chase_mapping(inst, &w.mapping, &mut v, &opts).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_subsumption_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_disjunctive_pruning");
    group.sample_size(10);
    for facts in [4usize, 6] {
        let mut vocab = Vocabulary::new();
        let w = workloads::union_k(&mut vocab, 2);
        let src = workloads::source_instance(&mut vocab, &w.mapping, facts, facts + 1, 0, 0.0, 37);
        let u = chase_mapping(&src, &w.mapping, &mut vocab, &ChaseOptions::default()).unwrap();
        for (name, prune) in [("raw_leaves", false), ("pruned_leaves", true)] {
            let opts = DisjunctiveChaseOptions { prune_subsumed: prune, ..Default::default() };
            group.bench_with_input(BenchmarkId::new(name, facts), &u, |b, u| {
                b.iter(|| {
                    let mut v = vocab.clone();
                    disjunctive_chase(u, &w.reverse.dependencies, &mut v, &opts).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase_modes, bench_subsumption_pruning);
criterion_main!(benches);
