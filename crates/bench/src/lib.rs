//! # rde-bench
//!
//! Shared workload generators for the Criterion benchmarks and the
//! `paper_experiments` binary. The paper has no empirical section; the
//! workloads here are the canonical mapping families its theory is
//! stated over (copy, projection, union, decomposition, two-step
//! composition) scaled by instance size, plus random instance
//! generators over their source schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workloads {
    //! Mapping families and instance generators.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rde_deps::{parse_mapping, SchemaMapping};
    use rde_model::generate::{random_instance, RandomInstanceConfig};
    use rde_model::{Instance, Vocabulary};

    /// A named forward/reverse mapping pair over a shared vocabulary.
    pub struct Workload {
        /// Display name (used as the Criterion benchmark id).
        pub name: &'static str,
        /// The forward mapping `M`.
        pub mapping: SchemaMapping,
        /// A reverse mapping (extended inverse or maximum extended
        /// recovery, per the paper's analysis of the family).
        pub reverse: SchemaMapping,
    }

    /// `P(x,y) → P′(x,y)` with its copy-back (lossless).
    pub fn copy(vocab: &mut Vocabulary) -> Workload {
        let mapping = parse_mapping(vocab, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
        let reverse = parse_mapping(vocab, "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)").unwrap();
        Workload { name: "copy", mapping, reverse }
    }

    /// Example 1.1's decomposition with its tgd recovery.
    pub fn decomposition(vocab: &mut Vocabulary) -> Workload {
        let mapping =
            parse_mapping(vocab, "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)")
                .unwrap();
        let reverse = parse_mapping(
            vocab,
            "source: Q/2, R/2\ntarget: P/3\nQ(x,y) -> exists z . P(x,y,z)\nR(y,z) -> exists x . P(x,y,z)",
        )
        .unwrap();
        Workload { name: "decomposition", mapping, reverse }
    }

    /// Example 3.18's two-step path mapping with its chase-inverse.
    pub fn two_step(vocab: &mut Vocabulary) -> Workload {
        let mapping =
            parse_mapping(vocab, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)")
                .unwrap();
        let reverse =
            parse_mapping(vocab, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
        Workload { name: "two_step", mapping, reverse }
    }

    /// The union mapping (Example 3.14) with its disjunctive recovery.
    pub fn union(vocab: &mut Vocabulary) -> Workload {
        let mapping =
            parse_mapping(vocab, "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)")
                .unwrap();
        let reverse =
            parse_mapping(vocab, "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x) | B(x)").unwrap();
        Workload { name: "union", mapping, reverse }
    }

    /// A `k`-armed union `A1 … Ak → R` with its `k`-way disjunctive
    /// recovery — the disjunctive-chase stress family.
    pub fn union_k(vocab: &mut Vocabulary, k: usize) -> Workload {
        let mut src = String::from("source: ");
        let mut fwd = String::new();
        let mut disjuncts = Vec::new();
        for i in 0..k {
            if i > 0 {
                src.push_str(", ");
            }
            src.push_str(&format!("U{i}/1"));
            fwd.push_str(&format!("U{i}(x) -> R(x)\n"));
            disjuncts.push(format!("U{i}(x)"));
        }
        let mapping = parse_mapping(vocab, &format!("{src}\ntarget: R/1\n{fwd}")).unwrap();
        let rev_text =
            format!("source: R/1\ntarget: {}\nR(x) -> {}", &src[8..], disjuncts.join(" | "));
        let reverse = parse_mapping(vocab, &rev_text).unwrap();
        Workload { name: "union_k", mapping, reverse }
    }

    /// The projection `P(x,y) → Q(x)` with its existential recovery.
    pub fn projection(vocab: &mut Vocabulary) -> Workload {
        let mapping = parse_mapping(vocab, "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)").unwrap();
        let reverse =
            parse_mapping(vocab, "source: Q/1\ntarget: P/2\nQ(x) -> exists y . P(x, y)").unwrap();
        Workload { name: "projection", mapping, reverse }
    }

    /// A same-schema recursive dependency set: copy `E` into `T`, close
    /// `T` with the *linear* recursion `T(x,y) ∧ E(y,z) → T(x,z)`, and
    /// add `extra` side-output rules `T → Aᵢ`. Linear (rather than
    /// doubling) recursion chases for as many rounds as the longest
    /// `E`-path, the regime the semi-naive delta rounds target; `extra`
    /// scales the dependency count for the parallel collection sweep.
    pub fn recursive_deps(vocab: &mut Vocabulary, extra: usize) -> Vec<rde_deps::Dependency> {
        let mut deps = vec![
            rde_deps::parse_dependency(vocab, "E(x, y) -> T(x, y)").unwrap(),
            rde_deps::parse_dependency(vocab, "T(x, y) & E(y, z) -> T(x, z)").unwrap(),
        ];
        for i in 0..extra {
            deps.push(
                rde_deps::parse_dependency(vocab, &format!("T(x, y) -> A{i}(x, y)")).unwrap(),
            );
        }
        deps
    }

    /// [`recursive_deps`] plus a triangle-listing rule whose third
    /// premise atom arrives fully bound. That atom's candidate set is a
    /// whole posting list, most of which fails unification — the regime
    /// the columnar backend's null-pattern buckets prune: rows whose
    /// null/constant pattern contradicts the bound values are skipped
    /// without a unification attempt.
    pub fn triangle_deps(vocab: &mut Vocabulary, extra: usize) -> Vec<rde_deps::Dependency> {
        let mut deps = recursive_deps(vocab, extra);
        deps.push(
            rde_deps::parse_dependency(vocab, "T(x, y) & E(y, z) & T(x, z) -> W(x, y, z)").unwrap(),
        );
        deps
    }

    /// A deterministic edge relation `E` over `nodes` vertices: a
    /// Hamiltonian cycle backbone (diameter `nodes − 1`, so
    /// [`recursive_deps`] chases for that many rounds) plus
    /// `edges − nodes` random chords.
    pub fn random_graph(vocab: &mut Vocabulary, nodes: usize, edges: usize, seed: u64) -> Instance {
        use rand::Rng;
        let e = vocab.relation("E", 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let name = |i: u64| format!("v{i}");
        let cycle = (0..nodes as u64).map(|i| (i, (i + 1) % nodes as u64));
        let chords: Vec<(u64, u64)> = (0..edges.saturating_sub(nodes))
            .map(|_| (rng.gen_range(0..nodes as u64), rng.gen_range(0..nodes as u64)))
            .collect();
        cycle
            .chain(chords)
            .map(|(a, b)| {
                let va = vocab.const_value(&name(a));
                let vb = vocab.const_value(&name(b));
                rde_model::Fact::new(e, vec![va, vb])
            })
            .collect()
    }

    /// [`random_graph`] with labeled-null chords: the same constant
    /// cycle backbone plus `chords` chord edges that each connect a
    /// random cycle vertex to a fresh labeled null (alternating which
    /// endpoint is the null). Nulls are the paper's setting — reverse
    /// mappings chase instances that carry them — and the closure `T`
    /// then mixes null and constant column patterns, the layout the
    /// columnar backend buckets by.
    pub fn random_graph_nulls(
        vocab: &mut Vocabulary,
        nodes: usize,
        chords: usize,
        seed: u64,
    ) -> Instance {
        use rand::Rng;
        let e = vocab.relation("E", 2).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cycle: Vec<(rde_model::Value, rde_model::Value)> = (0..nodes as u64)
            .map(|i| {
                let a = vocab.const_value(&format!("v{i}"));
                let b = vocab.const_value(&format!("v{}", (i + 1) % nodes as u64));
                (a, b)
            })
            .collect();
        let chords: Vec<(rde_model::Value, rde_model::Value)> = (0..chords)
            .map(|i| {
                let c = vocab.const_value(&format!("v{}", rng.gen_range(0..nodes as u64)));
                let n = vocab.null_value(&format!("u{i}"));
                if i % 2 == 0 {
                    (c, n)
                } else {
                    (n, c)
                }
            })
            .collect();
        cycle.into_iter().chain(chords).map(|(a, b)| rde_model::Fact::new(e, vec![a, b])).collect()
    }

    /// A deterministic random source instance over the workload's
    /// source schema: `facts` insertion attempts over `consts`
    /// constants and `nulls` named nulls.
    pub fn source_instance(
        vocab: &mut Vocabulary,
        mapping: &SchemaMapping,
        facts: usize,
        consts: usize,
        nulls: usize,
        null_probability: f64,
        seed: u64,
    ) -> Instance {
        let cfg = RandomInstanceConfig::with_pools(vocab, facts, consts, nulls, null_probability);
        let mut rng = SmallRng::seed_from_u64(seed);
        random_instance(&mut rng, vocab, &mapping.source, &cfg).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads;
    use rde_model::Vocabulary;

    #[test]
    fn workloads_build_and_generate() {
        // Each workload gets its own vocabulary: `copy` and
        // `decomposition` declare `P` with different arities.
        type Builder = fn(&mut Vocabulary) -> workloads::Workload;
        let builders: [Builder; 5] = [
            workloads::copy,
            workloads::decomposition,
            workloads::two_step,
            workloads::union,
            workloads::projection,
        ];
        for build in builders {
            let mut v = Vocabulary::new();
            let w = build(&mut v);
            let i = workloads::source_instance(&mut v, &w.mapping, 20, 5, 3, 0.3, 42);
            assert!(!i.is_empty(), "{} produced an empty instance", w.name);
            w.mapping.validate(&v).unwrap();
            w.reverse.validate(&v).unwrap();
        }
    }

    #[test]
    fn null_graph_and_triangle_deps_build() {
        let mut v = Vocabulary::new();
        let deps = workloads::triangle_deps(&mut v, 1);
        assert_eq!(deps.len(), 4, "closure pair + one side output + triangle rule");
        let g = workloads::random_graph_nulls(&mut v, 8, 4, 7);
        assert_eq!(g.len(), 12, "cycle edges plus chords");
        let null_edges = g.facts().filter(|f| f.args().iter().any(|a| a.is_null())).count();
        assert_eq!(null_edges, 4, "every chord carries exactly one labeled null");
    }

    #[test]
    fn union_k_scales() {
        let mut v = Vocabulary::new();
        let w = workloads::union_k(&mut v, 4);
        assert_eq!(w.mapping.dependencies.len(), 4);
        assert_eq!(w.reverse.dependencies[0].disjuncts.len(), 4);
        w.mapping.validate(&v).unwrap();
        w.reverse.validate(&v).unwrap();
    }
}
