//! Reproduction harness for every checkable claim of *Reverse Data
//! Exchange: Coping with Nulls* (PODS 2009).
//!
//! The paper is pure theory — it has no tables or figures — so this
//! binary reproduces each numbered example, proposition and theorem as
//! an executable experiment and prints a PASS/FAIL row per claim.
//! `EXPERIMENTS.md` records the expected-vs-observed outcomes.
//!
//! Usage: `cargo run -p rde-bench --bin paper_experiments [e1 e2 …]`

use rde_chase::{chase_mapping, disjunctive_chase, ChaseOptions, DisjunctiveChaseOptions};
use rde_core::compose::ComposeOptions;
use rde_core::invertibility::BoundedVerdict;
use rde_core::quasi_inverse::{maximum_extended_recovery_full, QuasiInverseOptions};
use rde_core::recovery::MaxRecoveryVerdict;
use rde_core::Universe;
use rde_deps::{parse_mapping, Conjunct, Dependency, SchemaMapping};
use rde_hom::hom_equivalent;
use rde_model::parse::parse_instance;
use rde_model::{display, Instance, Vocabulary};
use rde_query::{evaluate_null_free, reverse_certain_answers, ConjunctiveQuery};

struct Outcome {
    id: &'static str,
    claim: &'static str,
    observed: String,
    pass: bool,
}

type Experiment = (&'static str, fn() -> Outcome);

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let experiments: Vec<Experiment> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
    ];
    let mut failures = 0;
    println!("{:-<100}", "");
    println!("{:<5} {:<42} {:<44} verdict", "exp", "claim", "observed");
    println!("{:-<100}", "");
    for (id, f) in experiments {
        if !filter.is_empty() && !filter.iter().any(|x| x == id) {
            continue;
        }
        let o = f();
        println!(
            "{:<5} {:<42} {:<44} {}",
            o.id,
            o.claim,
            o.observed,
            if o.pass { "PASS" } else { "FAIL" }
        );
        if !o.pass {
            failures += 1;
        }
    }
    println!("{:-<100}", "");
    if failures > 0 {
        eprintln!("{failures} experiment(s) FAILED");
        std::process::exit(1);
    }
}

fn decomposition(v: &mut Vocabulary) -> SchemaMapping {
    parse_mapping(v, "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)").unwrap()
}

fn decomposition_reverse(v: &mut Vocabulary) -> SchemaMapping {
    parse_mapping(
        v,
        "source: Q/2, R/2\ntarget: P/3\nQ(x,y) -> exists z . P(x,y,z)\nR(y,z) -> exists x . P(x,y,z)",
    )
    .unwrap()
}

fn two_step(v: &mut Vocabulary) -> SchemaMapping {
    parse_mapping(v, "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()
}

fn union(v: &mut Vocabulary) -> SchemaMapping {
    parse_mapping(v, "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)").unwrap()
}

/// E1 — Example 1.1: the canonical reverse exchange is non-ground.
fn e1() -> Outcome {
    let mut v = Vocabulary::new();
    let m = decomposition(&mut v);
    let rev = decomposition_reverse(&mut v);
    let i = parse_instance(&mut v, "P(a,b,c)").unwrap();
    let u = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
    let expected_u = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
    let vi = chase_mapping(&u, &rev, &mut v, &ChaseOptions::default()).unwrap();
    let paper_v = parse_instance(&mut v, "P(a,b,?zz)\nP(?xx,b,c)").unwrap();
    let pass = u == expected_u && !vi.is_ground() && hom_equivalent(&vi, &paper_v);
    Outcome {
        id: "E1",
        claim: "Ex 1.1: V = {P(a,b,Z), P(X,b,c)} non-ground",
        observed: format!("U ok; V = {}", display::instance_inline(&v, &vi)),
        pass,
    }
}

/// E2 — Example 3.3 / Prop 3.4: extended vs plain solutions.
fn e2() -> Outcome {
    let mut v = Vocabulary::new();
    let m = decomposition(&mut v);
    let vi = parse_instance(&mut v, "P(a,b,?z)\nP(?x,b,c)").unwrap();
    let u = parse_instance(&mut v, "Q(a,b)\nR(b,c)").unwrap();
    let not_sol = !rde_core::semantics::is_solution(&vi, &u, &m);
    let is_esol = rde_core::extended::is_extended_solution(&vi, &u, &m, &mut v).unwrap();
    // Prop 3.4: ground sources have eSol = Sol on a bounded target universe.
    let i = parse_instance(&mut v, "P(a,b,c)").unwrap();
    let universe = Universe::new(&mut v, 3, 1, 2);
    let mut prop34 = true;
    for j in universe.instances(&v, &m.target).unwrap() {
        if rde_core::semantics::is_solution(&i, &j, &m)
            != rde_core::extended::is_extended_solution(&i, &j, &m, &mut v).unwrap()
        {
            prop34 = false;
            break;
        }
    }
    Outcome {
        id: "E2",
        claim: "Ex 3.3/Prop 3.4: eSol vs Sol",
        observed: format!("U: sol={}, eSol={}; ground eSol=Sol: {}", !not_sol, is_esol, prop34),
        pass: not_sol && is_esol && prop34,
    }
}

/// E3 — Prop 3.11: chase_M(I) is an extended universal solution.
fn e3() -> Outcome {
    let mut v = Vocabulary::new();
    let m = two_step(&mut v);
    let universe = Universe::new(&mut v, 2, 2, 2);
    let family = universe.collect_instances(&v, &m.source).unwrap();
    let mut pass = true;
    for i in &family {
        let u = chase_mapping(i, &m, &mut v, &ChaseOptions::default()).unwrap();
        if !rde_core::extended::is_extended_universal_solution(i, &u, &m, &mut v).unwrap() {
            pass = false;
            break;
        }
    }
    Outcome {
        id: "E3",
        claim: "Prop 3.11: chase is ext. universal solution",
        observed: format!("verified on {} sources", family.len()),
        pass,
    }
}

/// E4 — Example 3.14 / Thm 3.13: the union mapping fails the
/// homomorphism property.
fn e4() -> Outcome {
    let mut v = Vocabulary::new();
    let m = union(&mut v);
    let universe = Universe::new(&mut v, 1, 0, 1);
    let verdict =
        rde_core::invertibility::check_homomorphism_property(&m, &universe, &mut v).unwrap();
    match verdict {
        BoundedVerdict::Counterexample { i1, i2 } => Outcome {
            id: "E4",
            claim: "Ex 3.14: union mapping not ext-invertible",
            observed: format!(
                "cex: {} vs {}",
                display::instance_inline(&v, &i1),
                display::instance_inline(&v, &i2)
            ),
            pass: true,
        },
        other => Outcome {
            id: "E4",
            claim: "Ex 3.14: union mapping not ext-invertible",
            observed: format!("no counterexample found ({other:?})"),
            pass: false,
        },
    }
}

/// E5 — Thm 3.15(2): invertible but not extended-invertible.
fn e5() -> Outcome {
    let mut v = Vocabulary::new();
    let m = parse_mapping(
        &mut v,
        "source: P/1, Q/1\ntarget: R/2\nP(x) -> exists y . R(x, y)\nQ(y) -> exists x . R(x, y)",
    )
    .unwrap();
    let minv = parse_mapping(
        &mut v,
        "source: R/2\ntarget: P/1, Q/1\nR(x, y) & Constant(x) -> P(x)\nR(x, y) & Constant(y) -> Q(y)",
    )
    .unwrap();
    let universe = Universe::new(&mut v, 2, 1, 1);
    let inverse_ok =
        rde_core::ground::check_inverse(&m, &minv, &universe, &mut v, &ComposeOptions::default())
            .unwrap()
            .holds();
    let ext = rde_core::invertibility::check_extended_invertibility(&m, &universe, &mut v).unwrap();
    let needs_nulls = match &ext {
        BoundedVerdict::Counterexample { i1, i2 } => !i1.is_ground() || !i2.is_ground(),
        BoundedVerdict::HoldsWithinBound | BoundedVerdict::Unknown { .. } => false,
    };
    Outcome {
        id: "E5",
        claim: "Thm 3.15(2): invertible, not ext-invertible",
        observed: format!("inverse ok: {inverse_ok}; null cex found: {needs_nulls}"),
        pass: inverse_ok && needs_nulls,
    }
}

/// E6 — Thm 3.15(3) / Ex 3.18 / Ex 3.19: extended inverse ≠ inverse.
fn e6() -> Outcome {
    let mut v = Vocabulary::new();
    let m = two_step(&mut v);
    let m1 = parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
    let m2 = parse_mapping(
        &mut v,
        "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)",
    )
    .unwrap();
    let universe = Universe::new(&mut v, 2, 1, 2);
    let family = universe.collect_instances(&v, &m.source).unwrap();
    let m1_chase_inverse =
        rde_core::chase_inverse::find_chase_inverse_counterexample(&m, &m1, family.iter(), &mut v)
            .unwrap()
            .is_none();
    let null_i = parse_instance(&mut v, "P(?w, ?z)").unwrap();
    let m2_fails = !rde_core::chase_inverse::roundtrip_recovers(&m, &m2, &null_i, &mut v).unwrap();
    let small = Universe::new(&mut v, 2, 0, 1);
    let m2_is_inverse =
        rde_core::ground::check_inverse(&m, &m2, &small, &mut v, &ComposeOptions::default())
            .unwrap()
            .holds();
    Outcome {
        id: "E6",
        claim: "Ex 3.18/3.19: chase-inverse vs inverse",
        observed: format!(
            "M' chase-inv: {m1_chase_inverse} ({} srcs); M'' fails@nulls: {m2_fails}, inverse: {m2_is_inverse}",
            family.len()
        ),
        pass: m1_chase_inverse && m2_fails && m2_is_inverse,
    }
}

/// E7 — Prop 4.2: no witness solution for I = {P(0,1), P(1,0)} once
/// sources may be non-ground — the paper's four-case analysis.
fn e7() -> Outcome {
    let mut v = Vocabulary::new();
    let m = two_step(&mut v);
    let i = parse_instance(&mut v, "P(0, 1)\nP(1, 0)").unwrap();
    // Candidate family of sources used to refute witnesses. Crucially
    // it may contain NON-GROUND instances — including instances that
    // mention a candidate J's own nulls. That is exactly what breaks
    // witnesses once sources with nulls are allowed (case 2 of the
    // paper's analysis is refuted by I′ = {P(X, Y)}).
    let base = [
        "P(0, 0)",
        "P(1, 1)",
        "P(0, 1)",
        "P(1, 0)",
        "P(0, 1)\nP(1, 0)",
        "P(0, ?nx)\nP(?nx, 1)\nP(1, ?ny)\nP(?ny, 0)",
    ];

    // The paper's case analysis on J ⊇ {Q(0,X), Q(X,1), Q(1,Y), Q(Y,0)}:
    // (1) X = Y (null); (2) X ≠ Y, one of them not 0/1; (3) X=0, Y=1;
    // (4) X=1, Y=0 (cases 3 and 4 yield the same fact set).
    let cases = [
        "Q(0,?s)\nQ(?s,1)\nQ(1,?s)\nQ(?s,0)",
        "Q(0,?s)\nQ(?s,1)\nQ(1,?t)\nQ(?t,0)",
        "Q(0,0)\nQ(0,1)\nQ(1,1)\nQ(1,0)",
        "Q(0,1)\nQ(1,1)\nQ(1,0)\nQ(0,0)",
    ];
    let mut refuted = 0;
    for c in cases {
        let j = parse_instance(&mut v, c).unwrap();
        let mut family: Vec<Instance> =
            base.iter().map(|t| parse_instance(&mut v, t).unwrap()).collect();
        // Probe sources over J's own active domain (single P-facts).
        let p = v.find_relation("P").unwrap();
        for &a in &j.active_domain() {
            for &b in &j.active_domain() {
                family.push([rde_model::Fact::new(p, vec![a, b])].into_iter().collect());
            }
        }
        // A witness solution must be a solution AND a witness; every
        // shape fails within the candidate family.
        if !rde_core::ground::is_witness_solution(&m, &j, &i, &family, &mut v).unwrap() {
            refuted += 1;
        }
    }
    Outcome {
        id: "E7",
        claim: "Prop 4.2: no witness solution with nulls",
        observed: format!("{refuted}/4 candidate shapes refuted"),
        pass: refuted == 4,
    }
}

/// E8 — Thm 4.10 / Lemma 4.12 / Thm 4.13: e(M) ∘ e(M′) = →_M for a
/// maximum extended recovery.
fn e8() -> Outcome {
    let mut v = Vocabulary::new();
    let m = decomposition(&mut v);
    let rev = decomposition_reverse(&mut v);
    let universe = Universe::new(&mut v, 2, 1, 1);
    let verdict = rde_core::recovery::check_maximum_extended_recovery(
        &m,
        &rev,
        &universe,
        &mut v,
        &ComposeOptions::default(),
    )
    .unwrap();
    let n = universe.size(&v, &m.source).unwrap();
    Outcome {
        id: "E8",
        claim: "Thm 4.13: e(M)∘e(M') = →_M (bounded)",
        observed: format!(
            "checked {n}² pairs: {}",
            if verdict.holds() { "equal" } else { "differ" }
        ),
        pass: verdict.holds(),
    }
}

/// E9 — Cor 4.14/4.15: information-loss censuses.
fn e9() -> Outcome {
    let mut rows = Vec::new();
    let mut pass = true;
    for (name, text, expect_lossless) in [
        ("copy", "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)", true),
        ("union", "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)", false),
        ("projection", "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)", false),
    ] {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, text).unwrap();
        let universe = Universe::new(&mut v, 2, 1, 1);
        let report = rde_core::loss::information_loss(&m, &universe, &mut v, 0).unwrap();
        let hp = rde_core::invertibility::check_homomorphism_property(&m, &universe, &mut v)
            .unwrap()
            .holds();
        if report.is_lossless_within_bound() != expect_lossless
            || report.is_lossless_within_bound() != hp
        {
            pass = false;
        }
        rows.push(format!("{name}:{}", report.lost_pairs));
    }
    Outcome {
        id: "E9",
        claim: "Cor 4.15: loss = 0 iff ext-invertible",
        observed: format!("lost pairs {}", rows.join(" ")),
        pass,
    }
}

/// E10 — Thm 5.1 / Thm 5.2: the quasi-inverse algorithm output and the
/// necessity of disjunction and inequalities.
fn e10() -> Outcome {
    let mut v = Vocabulary::new();
    let m =
        parse_mapping(&mut v, "source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)")
            .unwrap();
    let rec = maximum_extended_recovery_full(&m, &mut v, &QuasiInverseOptions::default()).unwrap();
    let universe = Universe::new(&mut v, 2, 1, 1);
    let opts = ComposeOptions::default();
    let good =
        rde_core::recovery::check_maximum_extended_recovery(&m, &rec, &universe, &mut v, &opts)
            .unwrap()
            .holds();

    // Necessity of inequalities: strip them and the check must fail.
    let stripped: Vec<Dependency> = rec
        .dependencies
        .iter()
        .map(|d| {
            let mut premise = d.premise.clone();
            premise.inequalities.clear();
            Dependency::new(
                (0..d.var_count())
                    .map(|i| d.var_name(rde_deps::VarId(i as u32)).to_owned())
                    .collect(),
                premise,
                d.disjuncts.clone(),
            )
        })
        .collect();
    let no_ineq = SchemaMapping::new(rec.source.clone(), rec.target.clone(), stripped);
    let ineq_needed = !rde_core::recovery::check_maximum_extended_recovery(
        &m, &no_ineq, &universe, &mut v, &opts,
    )
    .unwrap()
    .holds();

    // Necessity of disjunction: keep only the first disjunct per rule.
    let truncated: Vec<Dependency> = rec
        .dependencies
        .iter()
        .map(|d| {
            let first: Vec<Conjunct> = d.disjuncts.iter().take(1).cloned().collect();
            Dependency::new(
                (0..d.var_count())
                    .map(|i| d.var_name(rde_deps::VarId(i as u32)).to_owned())
                    .collect(),
                d.premise.clone(),
                first,
            )
        })
        .collect();
    let no_disj = SchemaMapping::new(rec.source.clone(), rec.target.clone(), truncated);
    let disj_needed = !rde_core::recovery::check_maximum_extended_recovery(
        &m, &no_disj, &universe, &mut v, &opts,
    )
    .unwrap()
    .holds();

    Outcome {
        id: "E10",
        claim: "Thm 5.1/5.2: synthesis + language necessity",
        observed: format!(
            "{} rules ok:{good}; need != : {ineq_needed}; need |: {disj_needed}",
            rec.dependencies.len()
        ),
        pass: good && ineq_needed && disj_needed,
    }
}

/// E11 — Thm 6.2 / Def 6.1: maximum extended recoveries specified by
/// (inequality-free) disjunctive tgds are universal-faithful; a lossy
/// reverse is not; and — a fidelity point the experiment records —
/// Definition 6.1's hypothesis "disjunctive tgds" (no inequalities)
/// matters: Theorem 5.2's recovery NEEDS inequalities and is a maximum
/// extended recovery yet fails the raw leaf-set conditions, because
/// inequality triggers are not preserved under null collapses.
fn e11() -> Outcome {
    let mut pass = true;
    let mut notes = Vec::new();
    // Inequality-free recoveries (Thm 6.2's hypothesis): faithful.
    for (text, rec_text) in [
        (
            "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)",
            "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x) | B(x)",
        ),
        (
            "source: A/1, B/1, C/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)\nC(x) -> R(x)",
            "source: R/1\ntarget: A/1, B/1, C/1\nR(x) -> A(x) | B(x) | C(x)",
        ),
    ] {
        let mut v = Vocabulary::new();
        let m = parse_mapping(&mut v, text).unwrap();
        let rec = parse_mapping(&mut v, rec_text).unwrap();
        let universe = Universe::new(&mut v, 1, 1, 2);
        let failure =
            rde_core::faithful::check_universal_faithful(&m, &rec, &universe, &mut v).unwrap();
        if failure.is_some() {
            pass = false;
            notes.push("unexpected faithfulness failure".to_string());
        }
    }
    // Negative control: the A-only reverse of the union mapping.
    let mut v = Vocabulary::new();
    let m = union(&mut v);
    let bad = parse_mapping(&mut v, "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x)").unwrap();
    let universe = Universe::new(&mut v, 1, 0, 1);
    let bad_fails = rde_core::faithful::check_universal_faithful(&m, &bad, &universe, &mut v)
        .unwrap()
        .is_some();
    if !bad_fails {
        pass = false;
    }
    // Boundary of Def 6.1: Thm 5.2's inequality recovery is a maximum
    // extended recovery (E10) but fails the raw leaf conditions.
    let mut v = Vocabulary::new();
    let m =
        parse_mapping(&mut v, "source: P/2, T/1\ntarget: Pp/2\nP(x,y) -> Pp(x,y)\nT(x) -> Pp(x,x)")
            .unwrap();
    let rec = maximum_extended_recovery_full(&m, &mut v, &QuasiInverseOptions::default()).unwrap();
    let universe = Universe::new(&mut v, 1, 1, 2);
    let ineq_boundary = rde_core::faithful::check_universal_faithful(&m, &rec, &universe, &mut v)
        .unwrap()
        .is_some();
    Outcome {
        id: "E11",
        claim: "Thm 6.2: max recoveries are universal-faithful",
        observed: format!(
            "disj-tgd recs faithful; lossy fails: {bad_fails}; != boundary: {ineq_boundary} {}",
            notes.join(";")
        ),
        pass: pass && ineq_boundary,
    }
}

/// E12 — Thm 6.4 / 6.5: reverse certain answers.
fn e12() -> Outcome {
    let mut v = Vocabulary::new();
    let m = two_step(&mut v);
    let minv =
        parse_mapping(&mut v, "source: Q/2\ntarget: P/2\nQ(x,z) & Q(z,y) -> P(x,y)").unwrap();
    let i = parse_instance(&mut v, "P(a,b)\nP(b,c)\nP(a,?w)").unwrap();
    let q = ConjunctiveQuery::parse(&mut v, "ans(x, y) :- P(x, y)").unwrap();
    let direct = evaluate_null_free(&q, &i);
    let reversed =
        reverse_certain_answers(&q, &i, &m, &minv, &mut v, &DisjunctiveChaseOptions::default())
            .unwrap();
    let thm64 = direct == reversed;

    // Thm 6.5 with a genuinely disjunctive recovery: equality with the
    // per-world intersection (computed independently).
    let mut v = Vocabulary::new();
    let m = union(&mut v);
    let rec = parse_mapping(&mut v, "source: R/1\ntarget: A/1, B/1\nR(x) -> A(x) | B(x)").unwrap();
    let i = parse_instance(&mut v, "A(p)\nB(q)").unwrap();
    let q = ConjunctiveQuery::parse(&mut v, "ans(x) :- A(x)").unwrap();
    let via_theorem =
        reverse_certain_answers(&q, &i, &m, &rec, &mut v, &DisjunctiveChaseOptions::default())
            .unwrap();
    let u = chase_mapping(&i, &m, &mut v, &ChaseOptions::default()).unwrap();
    let leaves =
        disjunctive_chase(&u, &rec.dependencies, &mut v, &DisjunctiveChaseOptions::default())
            .unwrap()
            .leaves;
    let worlds: Vec<Instance> = leaves.iter().map(|l| l.restrict_to(&m.source)).collect();
    let manual = rde_query::certain_answers_over(&q, worlds.iter());
    let thm65 = via_theorem == manual && via_theorem.is_empty();

    Outcome {
        id: "E12",
        claim: "Thm 6.4/6.5: reverse certain answers",
        observed: format!("ext-inv: q(I)↓ match {thm64}; disjunctive: {thm65}"),
        pass: thm64 && thm65,
    }
}

/// E13 — Example 6.7 / Thm 6.8: comparing schema mappings.
fn e13() -> Outcome {
    let mut v = Vocabulary::new();
    let m1 = parse_mapping(&mut v, "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)").unwrap();
    let m2 = parse_mapping(
        &mut v,
        "source: P/2\ntarget: Pp/2\nP(x,y) -> exists z . Pp(x,z)\nP(x,y) -> exists u . Pp(u,y)",
    )
    .unwrap();
    let universe = Universe::new(&mut v, 2, 1, 2);
    let cmp = rde_core::compare::compare_lossiness(&m1, &m2, &universe, &mut v).unwrap();
    let strictly = cmp == rde_core::compare::Comparison::StrictlyLessLossy;
    // Thm 6.8's procedural criterion with the shared recovery.
    let rec = parse_mapping(&mut v, "source: Pp/2\ntarget: P/2\nPp(x,y) -> P(x,y)").unwrap();
    let family = universe.collect_instances(&v, &m1.source).unwrap();
    let fwd_ok = rde_core::compare::check_less_lossy_via_recoveries(
        &m1,
        &rec,
        &m2,
        &rec,
        family.iter(),
        &mut v,
    )
    .unwrap()
    .is_none();
    let bwd_fails = rde_core::compare::check_less_lossy_via_recoveries(
        &m2,
        &rec,
        &m1,
        &rec,
        family.iter(),
        &mut v,
    )
    .unwrap()
    .is_some();
    Outcome {
        id: "E13",
        claim: "Ex 6.7/Thm 6.8: M1 strictly less lossy",
        observed: format!("census: strict={strictly}; Thm6.8: fwd={fwd_ok}, bwd fails={bwd_fails}"),
        pass: strictly && fwd_ok && bwd_fails,
    }
}

/// E14 — §1's motivation: composition + inverse analyze schema
/// evolution. Compose two full-tgd evolution steps syntactically
/// (unfolding), cross-check the composition semantically on a bounded
/// universe, then synthesize and verify a maximum extended recovery of
/// the composed mapping.
fn e14() -> Outcome {
    let mut v = Vocabulary::new();
    let m12 = parse_mapping(
        &mut v,
        "source: Emp/2\ntarget: Staff/1, InDept/2\nEmp(n, d) -> Staff(n) & InDept(n, d)",
    )
    .unwrap();
    let m23 = parse_mapping(
        &mut v,
        "source: Staff/1, InDept/2\ntarget: Person/1, Unit/1\nStaff(n) -> Person(n)\nInDept(n, d) -> Unit(d)",
    )
    .unwrap();
    let composed = rde_core::unfold::compose_mappings(
        &m12,
        &m23,
        &v,
        &rde_core::unfold::UnfoldOptions::default(),
    )
    .unwrap();
    // Semantic cross-check of the unfolding on all bounded pairs.
    let universe = Universe::new(&mut v, 2, 1, 1);
    let sources = universe.collect_instances(&v, &m12.source).unwrap();
    let targets = universe.collect_instances(&v, &m23.target).unwrap();
    let opts = ComposeOptions::default();
    let mut agree = true;
    'outer: for i in &sources {
        for k in &targets {
            let semantic =
                rde_core::compose::in_composition(&m12, &m23, i, k, &mut v, &opts).unwrap();
            let syntactic = rde_core::semantics::satisfies(i, k, &composed);
            if semantic != syntactic {
                agree = false;
                break 'outer;
            }
        }
    }
    // The composed mapping is full: synthesize + verify its recovery.
    let rec =
        maximum_extended_recovery_full(&composed, &mut v, &QuasiInverseOptions::default()).unwrap();
    let verdict = rde_core::recovery::check_maximum_extended_recovery(
        &composed, &rec, &universe, &mut v, &opts,
    )
    .unwrap();
    Outcome {
        id: "E14",
        claim: "§1: composition + inverse (evolution)",
        observed: format!(
            "unfolded {} deps; semantics agree: {agree}; recovery: {}",
            composed.dependencies.len(),
            verdict.holds()
        ),
        pass: agree && verdict.holds(),
    }
}

// Silence the unused-import lint for MaxRecoveryVerdict used in type
// position through the helper calls above.
#[allow(dead_code)]
fn _verdict_is_public(v: MaxRecoveryVerdict) -> bool {
    v.holds()
}
