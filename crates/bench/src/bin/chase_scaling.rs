//! Chase strategy scaling experiment: measures naive vs semi-naive vs
//! parallel collection on the recursive workload and writes
//! `BENCH_chase.json` (repo root, or the path given as the first
//! argument) as the recorded baseline.

use std::time::Instant;

use rde_bench::workloads;
use rde_chase::{chase, ChaseOptions, ChaseResult, ChaseStrategy};
use rde_model::Vocabulary;

/// Mean wall-clock seconds per run (few repetitions; the chase runs
/// are long enough that warm-up noise is small).
fn time_chase(
    vocab: &Vocabulary,
    instance: &rde_model::Instance,
    deps: &[rde_deps::Dependency],
    options: &ChaseOptions,
    reps: usize,
) -> (f64, ChaseResult) {
    let mut result = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut v = vocab.clone();
        result = Some(chase(instance, deps, &mut v, options).unwrap());
    }
    (start.elapsed().as_secs_f64() / reps as f64, result.unwrap())
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_chase.json".to_string());
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>5} {:>7} {:>12} {:>12} {:>12} {:>9}",
        "nodes", "deps", "facts", "naive_ms", "semi_ms", "par_ms", "speedup"
    );
    for nodes in [16usize, 32, 64, 128] {
        for extra_deps in [0usize, 4] {
            let mut vocab = Vocabulary::new();
            let deps = workloads::recursive_deps(&mut vocab, extra_deps);
            let instance = workloads::random_graph(&mut vocab, nodes, nodes, 11);
            let reps = if nodes >= 64 { 2 } else { 5 };
            let naive = ChaseOptions { strategy: ChaseStrategy::Naive, ..ChaseOptions::default() };
            let semi =
                ChaseOptions { strategy: ChaseStrategy::SemiNaive, ..ChaseOptions::default() };
            let par = ChaseOptions {
                strategy: ChaseStrategy::SemiNaive,
                threads: 0,
                ..ChaseOptions::default()
            };
            let (t_naive, r_naive) = time_chase(&vocab, &instance, &deps, &naive, reps);
            let (t_semi, r_semi) = time_chase(&vocab, &instance, &deps, &semi, reps);
            let (t_par, r_par) = time_chase(&vocab, &instance, &deps, &par, reps);
            assert_eq!(r_naive.instance, r_semi.instance, "strategies must agree exactly");
            assert_eq!(r_semi.instance, r_par.instance, "thread count must not matter");
            let speedup = t_naive / t_semi;
            println!(
                "{:>6} {:>5} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x",
                nodes,
                deps.len(),
                r_naive.instance.len(),
                t_naive * 1e3,
                t_semi * 1e3,
                t_par * 1e3,
                speedup
            );
            rows.push(format!(
                concat!(
                    "    {{\"nodes\": {}, \"deps\": {}, \"rounds\": {}, \"fired\": {}, ",
                    "\"result_facts\": {}, \"naive_ms\": {:.3}, \"semi_naive_ms\": {:.3}, ",
                    "\"parallel_ms\": {:.3}, \"speedup_semi_vs_naive\": {:.2}}}"
                ),
                nodes,
                deps.len(),
                r_naive.rounds,
                r_naive.fired,
                r_naive.instance.len(),
                t_naive * 1e3,
                t_semi * 1e3,
                t_par * 1e3,
                speedup
            ));
        }
    }
    // Embed the process-wide metrics registry: chase round/trigger
    // counters and delta/latency histograms across every run above.
    let metrics = rde_obs::snapshot().to_json();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"chase_scaling\",\n",
            "  \"workload\": \"cycle graph; copy E into T, linear closure T(x,y) & E(y,z) -> T(x,z), plus side-output rules\",\n",
            "  \"modes\": [\"naive\", \"semi_naive\", \"semi_naive+parallel(threads=auto)\"],\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n}}\n"
        ),
        rows.join(",\n"),
        metrics
    );
    std::fs::write(&out_path, json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
