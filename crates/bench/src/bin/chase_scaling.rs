//! Chase strategy scaling experiment: measures naive vs semi-naive vs
//! parallel collection vs the restricted (Standard-mode) variant, and
//! the row vs columnar instance backend on the same seeds, on the
//! recursive null-chord workload. Writes
//! `BENCH_chase.json` (repo root, or the path given as the first
//! argument) as the recorded baseline.
//!
//! Pass `--quick` to shrink the sweep for CI smoke runs.

use std::time::Instant;

use rde_bench::workloads;
use rde_chase::{chase, ChaseOptions, ChaseResult, ChaseStrategy, ChaseVariant};
use rde_model::{BackendKind, Fact, Instance, Vocabulary};

/// Mean wall-clock seconds per run (few repetitions; the chase runs
/// are long enough that warm-up noise is small).
fn time_chase(
    vocab: &Vocabulary,
    instance: &Instance,
    deps: &[rde_deps::Dependency],
    options: &ChaseOptions,
    reps: usize,
) -> (f64, ChaseResult) {
    let mut result = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut v = vocab.clone();
        result = Some(chase(instance, deps, &mut v, options).unwrap());
    }
    (start.elapsed().as_secs_f64() / reps as f64, result.unwrap())
}

/// Cumulative `chase.round.us` histogram sum, for differencing around
/// a timed run to attribute round time to one backend.
fn round_us() -> u64 {
    rde_obs::snapshot().histogram("chase.round.us").map_or(0, |h| h.sum)
}

/// The bit-level content of a result instance: every fact in iteration
/// order, so the row/columnar assertion covers insertion order and
/// null identity, not just set equality.
fn fact_seq(i: &Instance) -> Vec<Fact> {
    i.facts().collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_chase.json".to_string());
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>5} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>11}",
        "nodes",
        "deps",
        "facts",
        "naive_ms",
        "row_ms",
        "col_ms",
        "par_ms",
        "restr_ms",
        "row_nodes",
        "col_nodes"
    );
    let sizes: &[usize] = if quick { &[16] } else { &[16, 32, 64, 128] };
    for &nodes in sizes {
        for extra_deps in [0usize, 4] {
            let mut vocab = Vocabulary::new();
            let deps = workloads::triangle_deps(&mut vocab, extra_deps);
            let instance = workloads::random_graph_nulls(&mut vocab, nodes, nodes / 2, 11);
            // Same seed, both layouts: the backend columns below rerun
            // the identical semi-naive chase on each store.
            let inst_row = instance.to_backend(BackendKind::Row);
            let inst_col = instance.to_backend(BackendKind::Columnar);
            let reps = if nodes >= 64 { 2 } else { 5 };
            let naive = ChaseOptions { strategy: ChaseStrategy::Naive, ..ChaseOptions::default() };
            let semi =
                ChaseOptions { strategy: ChaseStrategy::SemiNaive, ..ChaseOptions::default() };
            let par = ChaseOptions {
                strategy: ChaseStrategy::SemiNaive,
                threads: 0,
                ..ChaseOptions::default()
            };
            let restricted = ChaseOptions::for_variant(ChaseVariant::Restricted);
            let (t_naive, r_naive) = time_chase(&vocab, &inst_row, &deps, &naive, reps);
            let us0 = round_us();
            let (t_row, r_row) = time_chase(&vocab, &inst_row, &deps, &semi, reps);
            let us1 = round_us();
            let (t_col, r_col) = time_chase(&vocab, &inst_col, &deps, &semi, reps);
            let us2 = round_us();
            let (t_par, r_par) = time_chase(&vocab, &inst_row, &deps, &par, reps);
            let (t_res, r_res) = time_chase(&vocab, &inst_row, &deps, &restricted, reps);
            assert_eq!(r_naive.instance, r_row.instance, "strategies must agree exactly");
            assert!(
                r_res.instance.len() <= r_row.instance.len(),
                "the restricted chase never mints facts the oblivious one skipped"
            );
            assert_eq!(r_row.instance, r_par.instance, "thread count must not matter");
            assert_eq!(
                fact_seq(&r_row.instance),
                fact_seq(&r_col.instance),
                "backends must agree bit-for-bit"
            );
            let speedup = t_naive / t_row;
            let row_round_us = (us1 - us0) / reps as u64;
            let col_round_us = (us2 - us1) / reps as u64;
            println!(
                "{:>6} {:>5} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11} {:>11}",
                nodes,
                deps.len(),
                r_row.instance.len(),
                t_naive * 1e3,
                t_row * 1e3,
                t_col * 1e3,
                t_par * 1e3,
                t_res * 1e3,
                r_row.hom.nodes,
                r_col.hom.nodes
            );
            rows.push(format!(
                concat!(
                    "    {{\"nodes\": {}, \"deps\": {}, \"rounds\": {}, \"fired\": {}, ",
                    "\"result_facts\": {}, \"naive_ms\": {:.3}, \"semi_naive_ms\": {:.3}, ",
                    "\"parallel_ms\": {:.3}, \"restricted_ms\": {:.3}, ",
                    "\"restricted_fired\": {}, \"restricted_facts\": {}, ",
                    "\"speedup_semi_vs_naive\": {:.2}, ",
                    "\"row_ms\": {:.3}, \"columnar_ms\": {:.3}, ",
                    "\"row_round_us\": {}, \"columnar_round_us\": {}, ",
                    "\"row_hom_nodes\": {}, \"columnar_hom_nodes\": {}}}"
                ),
                nodes,
                deps.len(),
                r_naive.rounds,
                r_naive.fired,
                r_naive.instance.len(),
                t_naive * 1e3,
                t_row * 1e3,
                t_par * 1e3,
                t_res * 1e3,
                r_res.fired,
                r_res.instance.len(),
                speedup,
                t_row * 1e3,
                t_col * 1e3,
                row_round_us,
                col_round_us,
                r_row.hom.nodes,
                r_col.hom.nodes
            ));
        }
    }
    // Embed the process-wide metrics registry: chase round/trigger and
    // bucket-pruning counters and delta/latency histograms across every
    // run above.
    let metrics = rde_obs::snapshot().to_json();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"chase_scaling\",\n",
            "  \"workload\": \"cycle graph + labeled-null chords; copy E into T, linear closure ",
            "T(x,y) & E(y,z) -> T(x,z), triangle rule with a fully bound premise atom, ",
            "plus side-output rules\",\n",
            "  \"modes\": [\"naive\", \"semi_naive\", ",
            "\"semi_naive+parallel(threads=auto)\", \"restricted\"],\n",
            "  \"backends\": [\"row\", \"columnar\"],\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n}}\n"
        ),
        rows.join(",\n"),
        metrics
    );
    std::fs::write(&out_path, json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
