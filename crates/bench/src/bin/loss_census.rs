//! Quantitative information-loss census (Section 4 of the paper).
//!
//! The paper's headline application of maximum extended recoveries is
//! measuring "the amount of information loss embodied in a schema
//! mapping" as the relation `→_M \ →` (Definition 4.5, Corollary 4.14).
//! This binary regenerates that measurement as a table: for each
//! canonical mapping family and bounded universe, the number of
//! instance pairs `M` can no longer distinguish, absolutely and as a
//! fraction of all pairs. The ordering of the rows (copy < tagged-union
//! < decomposition < union < projection, roughly) is the quantitative
//! shadow of the "less lossy" order of Section 6.3.
//!
//! Usage: `cargo run -p rde-bench --bin loss_census [--threads N]`

use rde_core::loss::information_loss_parallel;
use rde_core::Universe;
use rde_deps::parse_mapping;
use rde_model::Vocabulary;

struct FamilySpec {
    name: &'static str,
    text: &'static str,
}

const FAMILIES: &[FamilySpec] = &[
    FamilySpec { name: "copy", text: "source: P/2\ntarget: Pp/2\nP(x,y) -> Pp(x,y)" },
    FamilySpec {
        name: "tagged-union",
        text:
            "source: A/1, B/1\ntarget: R/1, TA/1, TB/1\nA(x) -> R(x) & TA(x)\nB(x) -> R(x) & TB(x)",
    },
    FamilySpec {
        name: "two-step",
        text: "source: P/2\ntarget: Q/2\nP(x,y) -> exists z . Q(x,z) & Q(z,y)",
    },
    FamilySpec {
        name: "componentwise",
        text:
            "source: P/2\ntarget: Pp/2\nP(x,y) -> exists z . Pp(x,z)\nP(x,y) -> exists u . Pp(u,y)",
    },
    FamilySpec { name: "union", text: "source: A/1, B/1\ntarget: R/1\nA(x) -> R(x)\nB(x) -> R(x)" },
    FamilySpec { name: "projection", text: "source: P/2\ntarget: Q/1\nP(x,y) -> Q(x)" },
];

fn main() {
    let threads = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
    };
    println!("information loss census: →_M \\ →  (Definition 4.5 / Corollary 4.14)");
    println!("{:-<86}", "");
    println!(
        "{:<14} {:<18} {:>9} {:>10} {:>9} {:>9} {:>10}",
        "mapping", "universe", "instances", "→_M pairs", "→ pairs", "lost", "loss %"
    );
    println!("{:-<86}", "");
    for (consts, nulls, facts) in [(2usize, 1usize, 1usize), (2, 1, 2), (3, 1, 2)] {
        for family in FAMILIES {
            let mut vocab = Vocabulary::new();
            let mapping = parse_mapping(&mut vocab, family.text).expect("valid family mapping");
            let universe = Universe::new(&mut vocab, consts, nulls, facts);
            let report =
                match information_loss_parallel(&mapping, &universe, &mut vocab, 0, threads) {
                    Ok(r) => r,
                    Err(e) => {
                        println!(
                            "{:<14} {:<18} (skipped: {e})",
                            family.name,
                            format!("{consts}c/{nulls}n/≤{facts}f")
                        );
                        continue;
                    }
                };
            println!(
                "{:<14} {:<18} {:>9} {:>10} {:>9} {:>9} {:>9.2}%",
                family.name,
                format!("{consts}c/{nulls}n/≤{facts}f"),
                report.universe_size,
                report.arrow_m_pairs,
                report.hom_pairs,
                report.lost_pairs,
                100.0 * report.loss_fraction(),
            );
        }
        println!("{:-<86}", "");
    }
    println!(
        "lost = pairs (I1, I2) with chase(I1) → chase(I2) but I1 ↛ I2; 0 ⟺ extended-invertible"
    );
    println!("(exact within each bounded universe; counterexamples are unconditionally valid)");
}
