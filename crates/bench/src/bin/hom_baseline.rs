//! Homomorphism-layer baseline: measures the incremental core
//! minimizer against the quadratic rebuild-per-candidate reference, and
//! pairwise arrow queries with and without the fingerprint-classed,
//! core-memoized [`ArrowMCache`]. Writes `BENCH_hom.json` (repo root,
//! or the path given as the first argument) as the recorded baseline.
//!
//! Pass `--quick` (after the optional path) to shrink the sweep for CI
//! smoke runs.

use std::time::Instant;

use rde_bench::workloads;
use rde_chase::{chase_mapping, ChaseOptions};
use rde_core::arrow::ArrowMCache;
use rde_core::Universe;
use rde_hom::{core_of, core_of_quadratic, exists_hom, hom_equivalent};
use rde_model::parse::parse_instance;
use rde_model::{Instance, Vocabulary};

/// Mean wall-clock seconds of `f` over `reps` runs.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let start = Instant::now();
    for _ in 0..reps {
        out = Some(f());
    }
    (start.elapsed().as_secs_f64() / reps as f64, out.unwrap())
}

/// A bloated instance whose core is a tiny ground kernel: a `k`-fact
/// ground chain plus `pad` null-carrying facts that all fold into it.
fn bloated(vocab: &mut Vocabulary, k: usize, pad: usize) -> Instance {
    let mut text = String::new();
    for i in 0..k {
        text.push_str(&format!("P(c{i}, c{})\n", i + 1));
    }
    for i in 0..pad {
        // Each padded fact maps onto some ground edge by sending its
        // null to that edge's endpoint.
        text.push_str(&format!("P(c{}, ?n{i})\n", i % k));
    }
    parse_instance(vocab, &text).unwrap()
}

fn core_rows(quick: bool, rows: &mut Vec<String>) {
    let sizes: &[(usize, usize)] =
        if quick { &[(4, 12)] } else { &[(4, 32), (8, 64), (8, 128), (8, 256)] };
    println!(
        "{:>7} {:>5} {:>14} {:>14} {:>9}",
        "facts", "core", "quadratic_ms", "incremental_ms", "speedup"
    );
    for &(k, pad) in sizes {
        let mut v = Vocabulary::new();
        let inst = bloated(&mut v, k, pad);
        let reps = if quick { 2 } else { 10 };
        let (t_quad, r_quad) = time(reps, || core_of_quadratic(&inst));
        let (t_inc, r_inc) = time(reps, || core_of(&inst));
        assert_eq!(r_quad.core.len(), r_inc.core.len(), "minimizers must agree on core size");
        assert!(hom_equivalent(&inst, &r_inc.core), "core must stay hom-equivalent");
        let speedup = t_quad / t_inc;
        println!(
            "{:>7} {:>5} {:>14.3} {:>14.3} {:>8.2}x",
            inst.len(),
            r_inc.core.len(),
            t_quad * 1e3,
            t_inc * 1e3,
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"experiment\": \"core_minimize\", \"facts\": {}, \"core_facts\": {}, ",
                "\"quadratic_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {:.2}}}"
            ),
            inst.len(),
            r_inc.core.len(),
            t_quad * 1e3,
            t_inc * 1e3,
            speedup
        ));
    }
}

fn arrow_rows(quick: bool, rows: &mut Vec<String>) {
    let universes: &[(usize, usize, usize)] =
        if quick { &[(2, 1, 1)] } else { &[(2, 1, 1), (2, 1, 2)] };
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>9}",
        "instances", "classes", "uncached_ms", "cached_ms", "speedup"
    );
    for &(consts, nulls, facts) in universes {
        let mut v = Vocabulary::new();
        let w = workloads::two_step(&mut v);
        let u = Universe::new(&mut v, consts, nulls, facts);
        let family = u.collect_instances(&v, &w.mapping.source).unwrap();
        // The checkers (invertibility, lossiness comparison, loss
        // census) each sweep the pair grid; model that repetition.
        let sweeps = 3u64;
        // Uncached baseline: chase once per instance (that much any
        // implementation shares), then decide every pair directly.
        let (t_plain, hits_plain) = time(1, || {
            let chased: Vec<Instance> = family
                .iter()
                .map(|i| {
                    chase_mapping(i, &w.mapping, &mut v.clone(), &ChaseOptions::default()).unwrap()
                })
                .collect();
            let mut hits = 0u64;
            for _ in 0..sweeps {
                for a in &chased {
                    for b in &chased {
                        if exists_hom(a, b) {
                            hits += 1;
                        }
                    }
                }
            }
            hits
        });
        // Cached: class the family by chased-core fingerprint and memo
        // per class pair. Construction cost included; repeat sweeps are
        // pure memo hits.
        let (t_cached, (hits_cached, classes)) = time(1, || {
            let mut vc = v.clone();
            let cache = ArrowMCache::new(&w.mapping, &family, &mut vc).unwrap();
            let mut hits = 0u64;
            for _ in 0..sweeps {
                for a in 0..family.len() {
                    for b in 0..family.len() {
                        if cache.arrow(a, b) {
                            hits += 1;
                        }
                    }
                }
            }
            (hits, cache.stats().classes)
        });
        assert_eq!(hits_plain, hits_cached, "cache must not change any verdict");
        let speedup = t_plain / t_cached;
        println!(
            "{:>9} {:>7} {:>12.3} {:>12.3} {:>8.2}x",
            family.len(),
            classes,
            t_plain * 1e3,
            t_cached * 1e3,
            speedup
        );
        rows.push(format!(
            concat!(
                "    {{\"experiment\": \"arrow_sweep\", \"instances\": {}, \"classes\": {}, ",
                "\"arrow_pairs\": {}, \"uncached_ms\": {:.3}, \"cached_ms\": {:.3}, ",
                "\"speedup\": {:.2}}}"
            ),
            family.len(),
            classes,
            hits_cached,
            t_plain * 1e3,
            t_cached * 1e3,
            speedup
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_hom.json".to_string());
    let mut rows = Vec::new();
    core_rows(quick, &mut rows);
    arrow_rows(quick, &mut rows);
    // Embed the process-wide metrics registry: hom/arrow counters and
    // histograms accumulated across every run above.
    let metrics = rde_obs::snapshot().to_json();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"hom_baseline\",\n",
            "  \"experiments\": [\"core_minimize (quadratic reference vs incremental)\", ",
            "\"arrow_sweep (direct pairwise vs fingerprint-classed core-memoized cache)\"],\n",
            "  \"workloads\": [\"ground chain + foldable null padding\", ",
            "\"two_step mapping over a bounded source universe\"],\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n}}\n"
        ),
        rows.join(",\n"),
        metrics
    );
    std::fs::write(&out_path, json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
