//! Serve-layer baseline: an in-process `rde serve` daemon under
//! concurrent client load, on both instance backends. Measures request
//! latency (client-observed p50/p99), verifies that every concurrent
//! answer is bit-identical to a reference request, and drives enough
//! distinct-constant `ARROW` churn to exercise the cache's eviction
//! policy — asserting occupancy stays within the configured bound.
//! Writes `BENCH_serve.json` (repo root, or the path given as the
//! first argument).
//!
//! Pass `--quick` (after the optional path) to shrink the fleet for CI
//! smoke runs.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use rde_core::arrow::CachePolicy;
use rde_model::BackendKind;
use rde_serve::{spawn, Client, Reply, Request, ServeOptions, UniverseDims};

/// Write the benchmark's catalog: the decomposition mapping (chase
/// work), and the union mapping with its disjunctive reverse
/// (invertibility + arrow + certain work).
fn catalog(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create catalog dir");
    std::fs::write(
        dir.join("split.map"),
        "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n",
    )
    .expect("write split.map");
    std::fs::write(
        dir.join("merge.map"),
        "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n",
    )
    .expect("write merge.map");
    std::fs::write(dir.join("merge.rev"), "source: T/1\ntarget: A/1, B/1\nT(x) -> A(x) | B(x)\n")
        .expect("write merge.rev");
    dir
}

fn ok_lines(reply: Reply) -> Vec<String> {
    match reply {
        Reply::Ok(lines) => lines,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// One `cache NAME k=v…` STATS line, parsed into a field lookup.
fn cache_field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name}= in {line}"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {name}= in {line}"))
}

/// Drive one backend: `threads` persistent connections issuing `reps`
/// rounds of mixed CHASE / INVERTIBLE / ARROW requests apiece, all
/// released together. Returns the JSON result row.
fn run_backend(backend: BackendKind, threads: usize, reps: usize) -> String {
    let backend_name = match backend {
        BackendKind::Row => "row",
        BackendKind::Columnar => "columnar",
    };
    let dir = catalog(backend_name);
    // A small class bound so the ARROW churn below must evict; a
    // generous in-flight ceiling so nothing sheds (shed==0 is asserted:
    // the daemon must *sustain* the fleet, not survive it).
    let class_bound = 16;
    let options = ServeOptions {
        catalog: dir.clone(),
        backend,
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        policy: CachePolicy::bounded(1 << 12, class_bound),
        max_inflight: 4 * threads,
        ..ServeOptions::default()
    };
    let (addr, shutdown, handle) = spawn(options).expect("spawn daemon");

    // Reference answers, computed once over a quiet server.
    let mut reference = Client::connect(addr).expect("connect reference client");
    let chase_body = "P(a, b, c)\nP(a, b, d)\n";
    let expected_chase =
        ok_lines(reference.request(&Request::on("CHASE", "split").body_text(chase_body)).unwrap());
    let expected_inv = ok_lines(reference.request(&Request::on("INVERTIBLE", "merge")).unwrap());
    assert_eq!(expected_inv[0], "FAILS", "the union mapping is not invertible");

    let barrier = Arc::new(Barrier::new(threads));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let latencies = Arc::clone(&latencies);
            let expected_chase = expected_chase.clone();
            let expected_inv = expected_inv.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect worker");
                let mut mine = Vec::with_capacity(3 * reps);
                barrier.wait();
                for round in 0..reps {
                    let mut timed = |request: &Request| {
                        let started = Instant::now();
                        let reply = client.request(request).expect("request");
                        mine.push(started.elapsed().as_micros() as u64);
                        reply
                    };
                    let got = ok_lines(timed(&Request::on("CHASE", "split").body_text(chase_body)));
                    assert_eq!(got, expected_chase, "thread {t} round {round}: CHASE drifted");
                    let got = ok_lines(timed(&Request::on("INVERTIBLE", "merge")));
                    assert_eq!(got, expected_inv, "thread {t} round {round}: INVERTIBLE drifted");
                    // Fresh constants every round: hostile churn that
                    // must stay inside the class bound.
                    let body = format!("A(k{t}x{round})\n--\nA(k{t}x{round})\nB(m{t}x{round})\n");
                    let got = ok_lines(timed(&Request::on("ARROW", "merge").body_text(&body)));
                    assert_eq!(got, vec!["YES"], "thread {t} round {round}: ARROW drifted");
                }
                latencies.lock().unwrap().extend(mine);
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker");
    }

    let stats = ok_lines(reference.request(&Request::bare("STATS")).unwrap());
    let merge_line = stats
        .iter()
        .find(|l| l.starts_with("cache merge "))
        .expect("per-mapping cache stats in STATS")
        .clone();
    let interned = cache_field(&merge_line, "interned");
    let class_evictions = cache_field(&merge_line, "class_evictions");
    let memo_hits = cache_field(&merge_line, "hits");
    let intern_hits = cache_field(&merge_line, "intern_hits");
    let memo_evictions = cache_field(&merge_line, "memo_evictions");
    assert!(interned <= class_bound as u64, "churn must stay within the class bound: {merge_line}");
    assert!(class_evictions > 0, "churn past the bound must evict: {merge_line}");

    drop(reference);
    shutdown.cancel();
    handle.join().expect("join daemon").expect("daemon exit");
    std::fs::remove_dir_all(&dir).ok();

    let snap = rde_obs::snapshot();
    let counter =
        |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    assert_eq!(counter("serve.shed"), 0, "an unsaturated daemon must not shed");

    let mut sorted = latencies.lock().unwrap().clone();
    sorted.sort_unstable();
    let quantile = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
    let (p50, p99) = (quantile(0.50), quantile(0.99));
    println!(
        "{backend_name:>9} {threads:>8} {:>9} {p50:>8} {p99:>8} {interned:>9} {class_evictions:>10}",
        sorted.len()
    );
    format!(
        concat!(
            "    {{\"backend\": \"{}\", \"threads\": {}, \"requests\": {}, ",
            "\"p50_us\": {}, \"p99_us\": {}, \"shed\": 0, ",
            "\"cache\": {{\"interned\": {}, \"class_bound\": {}, \"class_evictions\": {}, ",
            "\"memo_hits\": {}, \"intern_hits\": {}, \"memo_evictions\": {}}}}}"
        ),
        backend_name,
        threads,
        sorted.len(),
        p50,
        p99,
        interned,
        class_bound,
        class_evictions,
        memo_hits,
        intern_hits,
        memo_evictions
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // The acceptance floor is 64 concurrent in-flight requests; quick
    // mode keeps the shape but shrinks the fleet for smoke runs.
    let (threads, reps) = if quick { (8, 4) } else { (64, 8) };
    println!(
        "{:>9} {:>8} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "backend", "threads", "requests", "p50_us", "p99_us", "interned", "evictions"
    );
    let rows: Vec<String> = [BackendKind::Row, BackendKind::Columnar]
        .into_iter()
        .map(|backend| run_backend(backend, threads, reps))
        .collect();
    let metrics = rde_obs::snapshot().to_json();
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"serve\",\n",
            "  \"experiments\": [\"concurrent mixed-op fleet (CHASE/INVERTIBLE/ARROW), ",
            "answers checked bit-identical to a reference request\", ",
            "\"distinct-constant ARROW churn against a bounded cache\"],\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n}}\n"
        ),
        rows.join(",\n"),
        metrics
    );
    std::fs::write(&out_path, json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
