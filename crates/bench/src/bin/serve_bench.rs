//! Serve-layer baseline: an in-process `rde serve` daemon under
//! concurrent client load, on both instance backends. Measures request
//! latency (client-observed p50/p99), verifies that every concurrent
//! answer is bit-identical to a reference request, and drives enough
//! distinct-constant `ARROW` churn to exercise the cache's eviction
//! policy — asserting occupancy stays within the configured bound.
//! Writes `BENCH_serve.json` (repo root, or the path given as the
//! first argument).
//!
//! The timed fleet runs twice per backend — plain, then with the
//! access log on (rotating journal sink; slow-trace capture discards
//! every request's tree) — so the baseline records both latency pairs
//! and the access log's overhead is directly visible. A further
//! untimed fleet runs under `trace_slow_ms = 0` and proves every
//! request's span tree can be rebuilt from the interleaved journal by
//! request id alone. The emitted baseline embeds the full labeled
//! metrics snapshot.
//!
//! Pass `--quick` (after the optional path) to shrink the fleet for CI
//! smoke runs.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use rde_core::arrow::CachePolicy;
use rde_model::BackendKind;
use rde_obs::{journal, Record, Sink};
use rde_serve::{spawn, Client, Reply, Request, ServeOptions, TenantQuota, UniverseDims};

/// The `split` mapping with its tgd variables renamed: textually
/// different (new content fingerprint, so a reload really rebuilds the
/// entry) but answer-equivalent — the reload fleet's bit-identity
/// assertion depends on exactly this.
const SPLIT_RENAMED: &str = "source: P/3\ntarget: Q/2, R/2\nP(u,v,w) -> Q(u,v) & R(v,w)\n";

/// Write the benchmark's catalog: the decomposition mapping (chase
/// work), and the union mapping with its disjunctive reverse
/// (invertibility + arrow + certain work).
fn catalog(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rde-serve-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create catalog dir");
    std::fs::write(
        dir.join("split.map"),
        "source: P/3\ntarget: Q/2, R/2\nP(x,y,z) -> Q(x,y) & R(y,z)\n",
    )
    .expect("write split.map");
    std::fs::write(
        dir.join("merge.map"),
        "source: A/1, B/1\ntarget: T/1\nA(x) -> T(x)\nB(x) -> T(x)\n",
    )
    .expect("write merge.map");
    std::fs::write(dir.join("merge.rev"), "source: T/1\ntarget: A/1, B/1\nT(x) -> A(x) | B(x)\n")
        .expect("write merge.rev");
    dir
}

fn ok_lines(reply: Reply) -> Vec<String> {
    match reply {
        Reply::Ok(lines) => lines,
        other => panic!("expected OK, got {other:?}"),
    }
}

/// One `cache NAME k=v…` STATS line, parsed into a field lookup.
fn cache_field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name}= in {line}"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {name}= in {line}"))
}

/// The timed fleet runs in access-log mode (`trace_slow_ms` = never):
/// request-thread span trees are captured and discarded, so the file
/// carries one request-stamped `serve.access` line per request with
/// the full field set — and never a replayed `serve.request` tree.
fn verify_access_log(path: &std::path::Path, expected: usize) {
    let text = std::fs::read_to_string(path).expect("read access log");
    let mut reqs = BTreeSet::new();
    let mut access = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let record = Record::parse_json_line(line)
            .unwrap_or_else(|e| panic!("{}:{}: {e}", path.display(), lineno + 1));
        assert!(
            !(record.kind == "span_open" && record.name == "serve.request"),
            "request trees must be captured and discarded in access-log mode"
        );
        if record.kind == "event" && record.name == "serve.access" {
            access += 1;
            assert_ne!(record.req(), 0, "access lines are request-stamped: {line}");
            assert!(reqs.insert(record.req()), "duplicate access line: {line}");
            for key in ["op", "mapping", "backend", "outcome", "us"] {
                assert!(record.field(key).is_some(), "access line missing {key}: {line}");
            }
        }
    }
    assert_eq!(access, expected, "one access-log line per fleet request");
}

/// Reconstruct every request's span tree from the fleet's interleaved
/// journal, by request id alone. `expected` is the number of requests
/// the fleet issued while the sink was attached. Fails if any group is
/// structurally contaminated by another request: unbalanced spans, a
/// close whose open lives in a different group, or a missing/duplicate
/// `serve.request` root.
fn verify_reconstruction(path: &std::path::Path, expected: usize) {
    let rotated = {
        let mut s = path.as_os_str().to_owned();
        s.push(".1");
        std::path::PathBuf::from(s)
    };
    assert!(!rotated.exists(), "the 64MB rotation bound must cover the whole fleet run");
    let text = std::fs::read_to_string(path).expect("read bench journal");
    let mut groups: BTreeMap<u64, Vec<Record>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let record = Record::parse_json_line(line)
            .unwrap_or_else(|e| panic!("{}:{}: {e}", path.display(), lineno + 1));
        groups.entry(record.req()).or_default().push(record);
    }
    // Request-stamped groups only: id 0 is ambient (sink bookkeeping).
    groups.remove(&0);
    assert_eq!(groups.len(), expected, "one journal group per fleet request");
    for (req, records) in &groups {
        let opens: Vec<u64> =
            records.iter().filter(|r| r.kind == "span_open").map(|r| r.span).collect();
        let closes: Vec<u64> =
            records.iter().filter(|r| r.kind == "span_close").map(|r| r.span).collect();
        assert_eq!(opens.len(), closes.len(), "request {req}: unbalanced span tree");
        for span in &closes {
            assert!(
                opens.contains(span),
                "request {req}: span {span} closed here but opened under another request"
            );
        }
        let roots =
            records.iter().filter(|r| r.kind == "span_open" && r.name == "serve.request").count();
        assert_eq!(roots, 1, "request {req}: exactly one serve.request root");
        let access: Vec<_> =
            records.iter().filter(|r| r.kind == "event" && r.name == "serve.access").collect();
        assert_eq!(access.len(), 1, "request {req}: exactly one access-log line");
        let ok = matches!(
            access[0].field("outcome"),
            Some(journal::OwnedField::Str(s)) if s == "ok"
        );
        assert!(ok, "request {req}: fleet requests all succeed: {:?}", access[0]);
    }
}

/// Drive one backend: `threads` persistent connections issuing `reps`
/// rounds of mixed CHASE / INVERTIBLE / ARROW requests apiece, all
/// released together. Returns the JSON result row.
fn run_backend(backend: BackendKind, threads: usize, reps: usize) -> String {
    let backend_name = match backend {
        BackendKind::Row => "row",
        BackendKind::Columnar => "columnar",
    };
    let dir = catalog(backend_name);
    // A small class bound so the ARROW churn below must evict; a
    // generous in-flight ceiling so nothing sheds (shed==0 is asserted:
    // the daemon must *sustain* the fleet, not survive it).
    let class_bound = 16;
    let options = ServeOptions {
        catalog: dir.clone(),
        backend,
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        policy: CachePolicy::bounded(1 << 12, class_bound),
        max_inflight: 4 * threads,
        // Access-log mode: request-thread span trees are captured and
        // discarded (nothing is ever "slow enough"), so the attached
        // journal carries one `serve.access` line per request instead
        // of the full interleaved trace. This is the configuration the
        // baseline's latencies are measured under.
        trace_slow_ms: Some(u64::MAX),
        ..ServeOptions::default()
    };
    let (addr, shutdown, handle) = spawn(options).expect("spawn daemon");

    // Reference answers, computed once over a quiet server.
    let mut reference = Client::connect(addr).expect("connect reference client");
    let chase_body = "P(a, b, c)\nP(a, b, d)\n";
    let expected_chase =
        ok_lines(reference.request(&Request::on("CHASE", "split").body_text(chase_body)).unwrap());
    let expected_inv = ok_lines(reference.request(&Request::on("INVERTIBLE", "merge")).unwrap());
    assert_eq!(expected_inv[0], "FAILS", "the union mapping is not invertible");

    // One timed fleet pass, parameterized by a churn tag so each pass
    // drives fresh ARROW constants. Returns client-observed (p50, p99).
    let fleet = |tag: &str| -> (u64, u64) {
        let barrier = Arc::new(Barrier::new(threads));
        let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let latencies = Arc::clone(&latencies);
                let expected_chase = expected_chase.clone();
                let expected_inv = expected_inv.clone();
                let tag = tag.to_owned();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect worker");
                    let mut mine = Vec::with_capacity(3 * reps);
                    barrier.wait();
                    for round in 0..reps {
                        let mut timed = |request: &Request| {
                            let started = Instant::now();
                            let reply = client.request(request).expect("request");
                            mine.push(started.elapsed().as_micros() as u64);
                            reply
                        };
                        let got =
                            ok_lines(timed(&Request::on("CHASE", "split").body_text(chase_body)));
                        assert_eq!(got, expected_chase, "thread {t} round {round}: CHASE drifted");
                        let got = ok_lines(timed(&Request::on("INVERTIBLE", "merge")));
                        assert_eq!(
                            got, expected_inv,
                            "thread {t} round {round}: INVERTIBLE drifted"
                        );
                        // Fresh constants every round: hostile churn
                        // that must stay inside the class bound.
                        let body = format!(
                            "A({tag}{t}x{round})\n--\nA({tag}{t}x{round})\nB({tag}m{t}x{round})\n"
                        );
                        let got = ok_lines(timed(&Request::on("ARROW", "merge").body_text(&body)));
                        assert_eq!(got, vec!["YES"], "thread {t} round {round}: ARROW drifted");
                    }
                    latencies.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("worker");
        }
        let mut sorted = latencies.lock().unwrap().clone();
        sorted.sort_unstable();
        let quantile = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        (quantile(0.50), quantile(0.99))
    };

    // Pass 1: no journal attached — the plain serving baseline.
    let (p50, p99) = fleet("k");
    // Pass 2: the access log — the journal pointed at a rotating file
    // sink. The daemon captures and discards request-thread span trees
    // (nothing is ever "slow enough"), so the file carries one
    // `serve.access` line per request, not the full interleaved trace.
    // A no-op (empty file, empty summary) without `trace`.
    let journal_path = dir.join("access.jsonl");
    journal::attach(Sink::rotating(&journal_path, 64 << 20, 1), 1 << 20)
        .expect("attach bench journal");
    let (p50_log, p99_log) = fleet("g");
    let summary = journal::detach();
    if cfg!(feature = "trace") {
        let summary = summary.expect("bench journal was attached");
        assert_eq!(summary.dropped, 0, "journal capacity must cover the fleet");
        assert_eq!(summary.io_errors, 0, "journal writes must not fail");
        verify_access_log(&journal_path, threads * reps * 3);
    }
    std::fs::remove_file(&journal_path).ok();

    let stats = ok_lines(reference.request(&Request::bare("STATS")).unwrap());
    assert!(
        stats.iter().any(|l| l.starts_with("uptime-ms ")),
        "STATS must lead with the daemon uptime: {stats:?}"
    );
    for op in ["CHASE", "INVERTIBLE", "ARROW"] {
        assert!(
            stats.iter().any(|l| l.starts_with(&format!("op {op} count="))
                && l.contains("p50<=")
                && l.contains("p99<=")),
            "STATS must aggregate per-op latency for {op}: {stats:?}"
        );
    }
    let merge_line = stats
        .iter()
        .find(|l| l.starts_with("cache merge "))
        .expect("per-mapping cache stats in STATS")
        .clone();
    let interned = cache_field(&merge_line, "interned");
    let class_evictions = cache_field(&merge_line, "class_evictions");
    let memo_hits = cache_field(&merge_line, "hits");
    let intern_hits = cache_field(&merge_line, "intern_hits");
    let memo_evictions = cache_field(&merge_line, "memo_evictions");
    assert!(interned <= class_bound as u64, "churn must stay within the class bound: {merge_line}");
    assert!(class_evictions > 0, "churn past the bound must evict: {merge_line}");

    // The reload fleet: the same timed mixed-op load, but with the
    // catalog swapped out from under it the whole time (alternating
    // `split` between two answer-equivalent texts, so every swap
    // really rebuilds that entry while `merge` carries its warm cache
    // over). The workers' bit-identity assertions run as before — a
    // generation swap must never change an answer — and the latency
    // pair lands in the baseline next to the steady-state one.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reloader = {
        let stop = Arc::clone(&stop);
        let dir = dir.clone();
        std::thread::spawn(move || {
            let mut admin = Client::connect(addr).expect("connect reloader");
            let original = std::fs::read_to_string(dir.join("split.map")).expect("read split.map");
            let mut reloads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let text =
                    if reloads.is_multiple_of(2) { SPLIT_RENAMED } else { original.as_str() };
                std::fs::write(dir.join("split.map"), text).expect("rewrite split.map");
                let lines = ok_lines(admin.request(&Request::bare("RELOAD")).expect("RELOAD"));
                assert!(lines[0].starts_with("generation "), "{lines:?}");
                reloads += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            reloads
        })
    };
    let (p50_reload, p99_reload) = fleet("q");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reloads = reloader.join().expect("reloader");
    assert!(reloads > 0, "the reload fleet must actually reload");

    drop(reference);
    shutdown.cancel();
    handle.join().expect("join daemon").expect("daemon exit");

    // The reconstruction pass: one more fleet round against a daemon
    // in `trace_slow_ms = 0` mode, where every request's captured span
    // tree is replayed into the journal. Each tree is then rebuilt
    // from the interleaved file by request id alone — the per-request
    // debugging workflow `rde profile --request-id` automates.
    if cfg!(feature = "trace") {
        let options = ServeOptions {
            catalog: dir.clone(),
            backend,
            dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
            policy: CachePolicy::bounded(1 << 12, class_bound),
            max_inflight: 4 * threads,
            trace_slow_ms: Some(0),
            ..ServeOptions::default()
        };
        let (addr, shutdown, handle) = spawn(options).expect("spawn trace daemon");
        let trace_path = dir.join("trace.jsonl");
        journal::attach(Sink::rotating(&trace_path, 64 << 20, 1), 1 << 20)
            .expect("attach trace journal");
        let barrier = Arc::new(Barrier::new(threads));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let expected_chase = expected_chase.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect trace worker");
                    barrier.wait();
                    let got = ok_lines(
                        client
                            .request(&Request::on("CHASE", "split").body_text(chase_body))
                            .expect("CHASE"),
                    );
                    assert_eq!(got, expected_chase, "trace thread {t}: CHASE drifted");
                    ok_lines(client.request(&Request::on("INVERTIBLE", "merge")).expect("INV"));
                    let body = format!("A(r{t})\n--\nA(r{t})\nB(s{t})\n");
                    ok_lines(
                        client
                            .request(&Request::on("ARROW", "merge").body_text(&body))
                            .expect("ARROW"),
                    );
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("trace worker");
        }
        journal::detach();
        verify_reconstruction(&trace_path, threads * 3);
        shutdown.cancel();
        handle.join().expect("join trace daemon").expect("trace daemon exit");
    }

    std::fs::remove_dir_all(&dir).ok();

    let snap = rde_obs::snapshot();
    let counter =
        |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    assert_eq!(counter("serve.shed"), 0, "an unsaturated daemon must not shed");

    let requests = threads * reps * 3;
    println!(
        "{backend_name:>9} {threads:>8} {requests:>9} {p50:>8} {p99:>8} \
         {p50_log:>8} {p99_log:>8} {p50_reload:>8} {p99_reload:>8} \
         {interned:>9} {class_evictions:>10}"
    );
    format!(
        concat!(
            "    {{\"backend\": \"{}\", \"threads\": {}, \"requests\": {}, ",
            "\"p50_us\": {}, \"p99_us\": {}, ",
            "\"access_log\": {{\"p50_us\": {}, \"p99_us\": {}}}, ",
            "\"reload_under_load\": {{\"p50_us\": {}, \"p99_us\": {}, \"reloads\": {}}}, ",
            "\"shed\": 0, ",
            "\"cache\": {{\"interned\": {}, \"class_bound\": {}, \"class_evictions\": {}, ",
            "\"memo_hits\": {}, \"intern_hits\": {}, \"memo_evictions\": {}}}}}"
        ),
        backend_name,
        threads,
        requests,
        p50,
        p99,
        p50_log,
        p99_log,
        p50_reload,
        p99_reload,
        reloads,
        interned,
        class_bound,
        class_evictions,
        memo_hits,
        intern_hits,
        memo_evictions
    )
}

/// The tenant-isolation experiment: a quiet tenant's CHASE latency is
/// measured solo, then again while a flooding tenant (pinned to a
/// small token bucket) hammers the daemon. The quotas must hold the
/// quiet tenant's p99 within 2x of its solo run (with a small absolute
/// floor absorbing scheduler noise on microsecond-scale latencies),
/// while every over-quota request is shed with a retry-after-ms hint.
fn run_quota_experiment(reps: usize) -> String {
    let dir = catalog("quota");
    let quiet_threads = 4usize;
    let flood_threads = 4usize;
    let options = ServeOptions {
        catalog: dir.clone(),
        dims: UniverseDims { consts: 1, nulls: 1, facts: 1 },
        policy: CachePolicy::bounded(1 << 12, 16),
        max_inflight: 4 * (quiet_threads + flood_threads),
        // The flooder's bucket: a burst, then ~50 admitted per second —
        // everything past that is an immediate (cheap) SHED.
        tenant_quotas: vec![TenantQuota::parse("flood=50:8").expect("quota spec")],
        ..ServeOptions::default()
    };
    let (addr, shutdown, handle) = spawn(options).expect("spawn quota daemon");

    let chase_body = "P(a, b, c)\nP(a, b, d)\n";
    let mut reference = Client::connect(addr).expect("connect reference client");
    let expected_chase =
        ok_lines(reference.request(&Request::on("CHASE", "split").body_text(chase_body)).unwrap());

    // One quiet-tenant fleet; returns its client-observed p99 (µs).
    let quiet_fleet = |rounds: usize| -> u64 {
        let barrier = Arc::new(Barrier::new(quiet_threads));
        let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));
        let workers: Vec<_> = (0..quiet_threads)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let latencies = Arc::clone(&latencies);
                let expected = expected_chase.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect quiet worker");
                    let request = Request::on("CHASE", "split")
                        .body_text(chase_body)
                        .header("tenant", "quiet");
                    let mut mine = Vec::with_capacity(rounds);
                    barrier.wait();
                    for round in 0..rounds {
                        let started = Instant::now();
                        let got = ok_lines(client.request(&request).expect("quiet request"));
                        mine.push(started.elapsed().as_micros() as u64);
                        assert_eq!(got, expected, "quiet thread {t} round {round}: CHASE drifted");
                    }
                    latencies.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("quiet worker");
        }
        let mut sorted = latencies.lock().unwrap().clone();
        sorted.sort_unstable();
        sorted[((sorted.len() - 1) as f64 * 0.99) as usize]
    };

    let rounds = (reps * 8).max(32);
    let p99_solo = quiet_fleet(rounds);

    // Same fleet again, now with flooders hammering their bucket.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooders: Vec<_> = (0..flood_threads)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect flooder");
                let request = Request::bare("PING").header("tenant", "flood");
                let (mut sheds, mut oks) = (0u64, 0u64);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match client.request(&request).expect("flood request") {
                        Reply::Ok(_) => oks += 1,
                        Reply::Shed { reason, retry_after_ms } => {
                            assert!(reason.contains("over quota"), "{reason}");
                            assert!(retry_after_ms.is_some(), "quota sheds carry retry hints");
                            sheds += 1;
                        }
                        other => panic!("flooder got {other:?}"),
                    }
                }
                (sheds, oks)
            })
        })
        .collect();
    let p99_flood = quiet_fleet(rounds);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (mut flood_sheds, mut flood_oks) = (0u64, 0u64);
    for flooder in flooders {
        let (sheds, oks) = flooder.join().expect("flooder");
        flood_sheds += sheds;
        flood_oks += oks;
    }
    assert!(flood_sheds > 0, "the flood must actually exceed its quota");
    assert!(flood_oks > 0, "the bucket's burst must admit something");

    shutdown.cancel();
    handle.join().expect("join quota daemon").expect("quota daemon exit");
    std::fs::remove_dir_all(&dir).ok();

    // The isolation acceptance bound. The floor keeps a CI box's
    // scheduling jitter from failing a comparison between two
    // sub-millisecond numbers.
    let bound = (2 * p99_solo).max(5_000);
    assert!(
        p99_flood <= bound,
        "quota isolation failed: quiet p99 {p99_flood}µs vs solo {p99_solo}µs (bound {bound}µs)"
    );

    println!(
        "{:>9} {quiet_threads:>8} {:>9} {p99_solo:>8} {p99_flood:>8} (flood: {flood_sheds} shed, \
         {flood_oks} ok)",
        "quota",
        quiet_threads * rounds,
    );
    format!(
        concat!(
            "    {{\"experiment\": \"tenant_quota\", \"quiet_threads\": {}, ",
            "\"flood_threads\": {}, \"quiet_p99_solo_us\": {}, \"quiet_p99_flood_us\": {}, ",
            "\"flood_sheds\": {}, \"flood_admitted\": {}}}"
        ),
        quiet_threads, flood_threads, p99_solo, p99_flood, flood_sheds, flood_oks
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // The acceptance floor is 64 concurrent in-flight requests; quick
    // mode keeps the shape but shrinks the fleet for smoke runs.
    let (threads, reps) = if quick { (8, 4) } else { (64, 8) };
    println!(
        "{:>9} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "backend",
        "threads",
        "requests",
        "p50_us",
        "p99_us",
        "p50_log",
        "p99_log",
        "p50_rel",
        "p99_rel",
        "interned",
        "evictions"
    );
    let mut rows: Vec<String> = [BackendKind::Row, BackendKind::Columnar]
        .into_iter()
        .map(|backend| run_backend(backend, threads, reps))
        .collect();
    // Last: it sheds on purpose, and the per-backend runs assert a
    // cumulative shed count of zero up to their own finish line.
    rows.push(run_quota_experiment(reps));
    let metrics = rde_obs::snapshot().to_json();
    assert!(
        metrics.contains("\"labeled_counters\"") && metrics.contains("serve.requests{"),
        "the labeled per-op × per-mapping series must be embedded in the baseline"
    );
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"serve\",\n",
            "  \"experiments\": [\"concurrent mixed-op fleet (CHASE/INVERTIBLE/ARROW), ",
            "answers checked bit-identical to a reference request\", ",
            "\"distinct-constant ARROW churn against a bounded cache\", ",
            "\"access-log overhead (same fleet, rotating journal sink attached)\", ",
            "\"catalog reload under load (generation swaps mid-fleet, ",
            "answers still bit-identical)\", ",
            "\"tenant-quota isolation (quiet tenant p99 within 2x of solo ",
            "while a flooding tenant is shed with retry hints)\", ",
            "\"per-request span-tree reconstruction from an interleaved journal\"],\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n}}\n"
        ),
        rows.join(",\n"),
        metrics
    );
    std::fs::write(&out_path, json).expect("write benchmark baseline");
    println!("wrote {out_path}");
}
